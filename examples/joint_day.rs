//! A compressed diurnal day through the SDN controller loop.
//!
//! ```text
//! cargo run --release --example joint_day
//! ```
//!
//! Replays the Fig. 14 diurnal traces through the Fig. 7 controller with
//! hourly optimization epochs: at each epoch the joint optimizer re-picks
//! the active topology (aggregation level) from the predicted background
//! demand and the current search load, and EPRONS-Server runs the ISNs.
//! Prints the timeline and the day-average savings (the Fig. 15 story).

use eprons_repro::core::controller::{day_average, DayConfig};
use eprons_repro::core::optimizer::aggregation_candidates;
use eprons_repro::core::{simulate_day, ClusterConfig, DayStrategy};

fn main() {
    let cfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: 60, // hourly epochs keep the example quick
        sim_seconds: 6.0,
        peak_utilization: 0.5,
        seed: 77,
        warm_start: true,
        ..DayConfig::default()
    };

    println!("simulating one diurnal day (hourly epochs)\n");
    let nopm = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
    let eprons = simulate_day(
        &cfg,
        &DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        },
        &day,
    );

    println!(
        "{:>6} {:>8} {:>6} {:>10} {:>10} {:>9} {:>9}",
        "hour", "search%", "bg%", "no-pm-W", "eprons-W", "switches", "saving%"
    );
    for (b, e) in nopm.iter().zip(&eprons) {
        let saving = (b.breakdown.total_w() - e.breakdown.total_w()) / b.breakdown.total_w();
        println!(
            "{:>6.0} {:>8.0} {:>6.0} {:>10.0} {:>10.0} {:>9} {:>9.1}",
            e.minute / 60.0,
            e.search_load * 100.0,
            e.background_util * 100.0,
            b.breakdown.total_w(),
            e.breakdown.total_w(),
            e.active_switches,
            saving * 100.0
        );
    }

    let s = day_average(&eprons).saving_vs(&day_average(&nopm));
    println!(
        "\nday-average savings: servers {:.1}%, network {:.1}%, total {:.1}%",
        s.server * 100.0,
        s.network * 100.0,
        s.total * 100.0
    );
    println!("note how the controller turns switches on toward the daily peak and");
    println!("off at night — the jointly-optimized slack transfer of the paper");
}
