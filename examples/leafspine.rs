//! Topology independence: consolidation on a leaf–spine fabric.
//!
//! ```text
//! cargo run --release --example leafspine
//! ```
//!
//! The paper notes its optimization model "is independent of the network
//! topology" (§IV-B). This example runs the same greedy consolidator the
//! fat-tree experiments use on a 2-tier Clos (leaf–spine) fabric and shows
//! spines powering up as the scale factor K grows.

use eprons_repro::net::flow::FlowSet;
use eprons_repro::net::{
    ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, NetworkPowerModel,
};
use eprons_repro::topo::{LeafSpine, MultipathTopology};

fn main() {
    let ls = LeafSpine::new(4, 4, 8, 1000.0); // 32 hosts, 4 leaves, 4 spines
    println!(
        "leaf-spine fabric: {} hosts, {} leaves, {} spines\n",
        ls.host_list().len(),
        ls.leaves().len(),
        ls.spines().len()
    );

    // One elephant plus a sheaf of query flows crossing leaves.
    let mut flows = FlowSet::new();
    flows.add(
        ls.host(0, 0),
        ls.host(1, 0),
        850.0,
        FlowClass::LatencyTolerant,
    );
    for i in 0..6 {
        flows.add(
            ls.host(i % 4, 1 + i % 3),
            ls.host((i + 1) % 4, 4 + i % 3),
            25.0,
            FlowClass::LatencySensitive,
        );
    }

    let power = NetworkPowerModel::default();
    println!(
        "{:>4} {:>16} {:>12} {:>18}",
        "K", "active-switches", "net-power-W", "spines-on"
    );
    for k in [1.0, 2.0, 4.0, 6.0] {
        let cfg = ConsolidationConfig::with_k(k);
        match GreedyConsolidator.consolidate(&ls, &flows, &cfg) {
            Ok(a) => {
                a.validate(&ls, &flows, &cfg).expect("capacity respected");
                let spines_on = ls
                    .spines()
                    .iter()
                    .filter(|&&s| a.state().node_on(s))
                    .count();
                println!(
                    "{:>4.0} {:>16} {:>12.0} {:>18}",
                    k,
                    a.active_switch_count(&ls),
                    a.network_power_w(&ls, &power),
                    spines_on
                );
            }
            Err(e) => println!("{k:>4.0} INFEASIBLE: {e}"),
        }
    }
    println!("\nsame consolidator, different fabric: K still trades power for headroom");
}
