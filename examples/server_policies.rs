//! Compare the five server DVFS policies on one core and one trace.
//!
//! ```text
//! cargo run --release --example server_policies [utilization]
//! ```
//!
//! Drives a single ISN core with a Poisson sub-query trace at the given
//! utilization (default 30 %) and a 25 ms budget, then prints energy,
//! average power, latency tail, and the SLA miss rate for each policy —
//! the single-server view behind the paper's Fig. 12.

use eprons_repro::server::policy::DvfsPolicy;
use eprons_repro::server::{
    coresim::poisson_trace, simulate_core, AvgVpPolicy, CoreSimConfig, MaxFreqPolicy, MaxVpPolicy,
    ServiceModel, TimeTraderPolicy, VpEngine,
};
use eprons_repro::sim::SimRng;

fn main() {
    let util: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);

    let mut rng = SimRng::seed_from_u64(7);
    let service = ServiceModel::synthetic_xapian(&mut rng, 30_000, 160);
    let mean_t = service.mean_service_time(2.7);
    let cfg = CoreSimConfig::default();

    let budget = 25.0e-3;
    let mut trace_rng = SimRng::seed_from_u64(8);
    let arrivals = poisson_trace(&mut trace_rng, util / mean_t, 120.0, budget);

    println!(
        "single core, {} requests over 120 s ({:.0}% utilization), 25 ms budget\n",
        arrivals.len(),
        util * 100.0
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "policy", "energy-J", "avg-W", "p95-ms", "p99-ms", "miss-%"
    );

    let mut policies: Vec<Box<dyn DvfsPolicy>> = vec![
        Box::new(MaxFreqPolicy),
        Box::new(MaxVpPolicy::rubik()),
        Box::new(TimeTraderPolicy::new(budget, cfg.ladder.len())),
        Box::new(MaxVpPolicy::rubik_plus()),
        Box::new(AvgVpPolicy::eprons()),
    ];
    for policy in policies.iter_mut() {
        let mut engine = VpEngine::new(service.clone());
        let r = simulate_core(policy.as_mut(), &mut engine, &arrivals, &cfg, 9);
        println!(
            "{:<22} {:>9.1} {:>9.2} {:>9.2} {:>9.2} {:>8.2}",
            policy.name(),
            r.energy_j,
            r.avg_core_power_w(),
            r.latency_percentile(0.95).unwrap() * 1e3,
            r.latency_percentile(0.99).unwrap() * 1e3,
            r.miss_rate().unwrap() * 100.0
        );
    }
    println!("\nexpected ordering: energy falls from no-power-management to eprons-server,");
    println!("while every VP-based policy keeps the miss rate near the 5% budget");
}
