//! Consolidation playground: watch the scale factor K trade network power
//! for latency headroom on a custom flow set.
//!
//! ```text
//! cargo run --release --example consolidation_playground [K]
//! ```
//!
//! Builds the paper's Fig. 2 scenario plus a second elephant, consolidates
//! with the greedy heuristic and the exact path-MILP at the chosen K, and
//! prints the active topology, per-flow routes, and the resulting
//! worst-link utilization (the quantity that drives the latency knee).

use eprons_repro::net::flow::FlowSet;
use eprons_repro::net::{
    ConsolidationConfig, Consolidator, FlowClass, FlowId, GreedyConsolidator, NetworkPowerModel,
    PathMilpConsolidator,
};
use eprons_repro::topo::FatTree;

fn main() {
    let k: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    let ft = FatTree::new(4, 1000.0);
    let mut flows = FlowSet::new();
    // Two latency-tolerant elephants…
    flows.add(
        ft.host(0, 0, 0),
        ft.host(1, 0, 0),
        900.0,
        FlowClass::LatencyTolerant,
    );
    flows.add(
        ft.host(2, 0, 0),
        ft.host(3, 0, 0),
        600.0,
        FlowClass::LatencyTolerant,
    );
    // …and four latency-sensitive query flows.
    flows.add(
        ft.host(0, 0, 1),
        ft.host(1, 0, 1),
        20.0,
        FlowClass::LatencySensitive,
    );
    flows.add(
        ft.host(0, 1, 0),
        ft.host(1, 1, 0),
        20.0,
        FlowClass::LatencySensitive,
    );
    flows.add(
        ft.host(2, 0, 1),
        ft.host(3, 0, 1),
        20.0,
        FlowClass::LatencySensitive,
    );
    flows.add(
        ft.host(2, 1, 0),
        ft.host(0, 1, 1),
        20.0,
        FlowClass::LatencySensitive,
    );

    let cfg = ConsolidationConfig::with_k(k);
    let power = NetworkPowerModel::default();
    println!("consolidating {} flows at K = {k}\n", flows.len());

    for (name, result) in [
        (
            "greedy heuristic",
            GreedyConsolidator.consolidate(&ft, &flows, &cfg),
        ),
        (
            "exact path-MILP ",
            PathMilpConsolidator::default().consolidate(&ft, &flows, &cfg),
        ),
    ] {
        match result {
            Ok(a) => {
                a.validate(&ft, &flows, &cfg)
                    .expect("assignments must respect scaled capacities");
                println!(
                    "{name}: {} switches on, {:.0} W network, worst link {:.0}% utilized",
                    a.active_switch_count(&ft),
                    a.network_power_w(&ft, &power),
                    a.max_utilization(&ft) * 100.0
                );
                for f in flows.flows() {
                    let p = a.path(FlowId(f.id.0));
                    let route: Vec<&str> = p
                        .nodes
                        .iter()
                        .map(|&n| ft.topology().node(n).name.as_str())
                        .collect();
                    println!(
                        "  flow {:>2} ({:>4.0} Mbps {:?}): {}",
                        f.id.0,
                        f.demand_mbps,
                        f.class,
                        route.join(" -> ")
                    );
                }
                println!();
            }
            Err(e) => println!("{name}: INFEASIBLE at K={k}: {e}\n"),
        }
    }
    println!("try larger K (e.g. 3, 5) to watch query flows peel away from the elephants");
}
