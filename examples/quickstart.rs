//! Quickstart: one EPRONS cluster run vs. the no-power-management baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's platform (16-server partition–aggregate search on a
//! 4-ary fat-tree), runs EPRONS (EPRONS-Server + greedy latency-aware
//! consolidation at K=2) and the unmanaged baseline on the same workload,
//! and prints the power split, tail latencies, and savings.

use eprons_repro::core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};

fn main() {
    let cfg = ClusterConfig::default();
    let base = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::GreedyK(2.0),
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 10.0,
        warmup_s: 0.0,
        seed: 1,
    };

    println!("EPRONS quickstart — 16 servers, 4-ary fat-tree, 30 ms SLA (25 server + 5 network)\n");

    let eprons = run_cluster(&cfg, &base).expect("consolidation is feasible at these loads");
    let nopm = run_cluster(
        &cfg,
        &ClusterRun {
            scheme: ServerScheme::NoPowerManagement,
            consolidation: ConsolidationSpec::AllOn,
            ..base
        },
    )
    .expect("all-on routing always succeeds");

    let report = |name: &str, r: &eprons_repro::core::ClusterRunResult| {
        println!("{name}:");
        println!("  servers          {:7.1} W", r.breakdown.server_w);
        println!(
            "  network          {:7.1} W ({} switches on)",
            r.breakdown.network_w, r.active_switches
        );
        println!("  total            {:7.1} W", r.breakdown.total_w());
        println!(
            "  e2e p95 / miss   {:5.2} ms / {:.1}%  (SLA {:.0} ms @ 95th)",
            r.e2e_latency.p95_s * 1e3,
            r.e2e_miss_rate * 100.0,
            cfg.sla.total_s() * 1e3
        );
        println!(
            "  query net p95    {:5.2} ms   ({} queries)",
            r.net_latency.p95_s * 1e3,
            r.query_count
        );
        println!();
    };
    report("no power management", &nopm);
    report("EPRONS (server + network)", &eprons);

    let s = eprons.breakdown.saving_vs(&nopm.breakdown);
    println!(
        "savings: servers {:.1}%, network {:.1}%, total {:.1}%",
        s.server * 100.0,
        s.network * 100.0,
        s.total * 100.0
    );
    println!(
        "SLA kept: {} (miss {:.1}% vs budget {:.0}%)",
        eprons.is_feasible(&cfg),
        eprons.e2e_miss_rate * 100.0,
        cfg.sla.miss_budget() * 100.0
    );
}
