//! End-to-end telemetry test: a short diurnal run through the full stack
//! must journal the control loop's decisions at every layer, the per-epoch
//! snapshots must agree with the returned power breakdowns, and the journal
//! must round-trip through its JSON-lines encoding.
//!
//! Everything lives in one `#[test]` because the telemetry registry and
//! journal are process-wide globals.

use eprons_repro::core::controller::{simulate_day, DayConfig, DayStrategy};
use eprons_repro::core::optimizer::aggregation_candidates;
use eprons_repro::core::ClusterConfig;
use eprons_repro::obs;

#[test]
fn day_run_journals_the_control_loop() {
    obs::set_enabled(true);
    obs::reset();

    let cfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: 240, // 6 epochs, for test speed
        sim_seconds: 2.0,
        peak_utilization: 0.5,
        seed: 99,
        warm_start: true,
        ..DayConfig::default()
    };
    let recs = simulate_day(
        &cfg,
        &DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        },
        &day,
    );
    let epochs = recs.len();
    assert_eq!(epochs, 6);

    let journal = obs::journal();
    assert_eq!(journal.dropped(), 0, "nothing may fall off the journal");

    // The Fig. 7 control loop: one DayStart, one EpochStart + EpochSnapshot
    // per epoch, at least one OptimizerChoice per epoch (here exactly one),
    // and a LinkStateChange per epoch boundary.
    assert_eq!(journal.count_kind("DayStart"), 1);
    assert_eq!(journal.count_kind("EpochStart"), epochs);
    assert_eq!(journal.count_kind("EpochSnapshot"), epochs);
    assert!(
        journal.count_kind("OptimizerChoice") >= epochs,
        "expected >= 1 OptimizerChoice per epoch, got {}",
        journal.count_kind("OptimizerChoice")
    );
    assert_eq!(journal.count_kind("LinkStateChange"), epochs - 1);
    // Each epoch accounted for all 4 aggregation candidates: every
    // candidate is either evaluated (OptimizerCandidate), rejected
    // (CandidateFailed), or bound-pruned without simulation
    // (CandidatePruned) under the warm-started sweep — never silently
    // dropped.
    let evaluated = journal.count_kind("OptimizerCandidate");
    assert_eq!(
        evaluated + journal.count_kind("CandidateFailed") + journal.count_kind("CandidatePruned"),
        epochs * aggregation_candidates().len()
    );
    // The winner is always actually measured, so at least one candidate
    // per epoch runs the full evaluation.
    assert!(
        evaluated >= epochs,
        "expected >= 1 evaluation per epoch, got {evaluated}"
    );
    // And the lower layers reported in: the cluster tagged each evaluated
    // candidate's run, consolidation passes ran, and every ISN's DVFS run
    // aggregated its frequency transitions.
    assert!(journal.count_kind("RunTag") >= evaluated);
    assert!(journal.count_kind("ConsolidationPass") > 0);
    assert!(journal.count_kind("FreqTransition") > 0);

    // Journaled epoch snapshots must agree with the returned records.
    let entries = journal.snapshot();
    let mut snapshots = 0usize;
    for entry in &entries {
        if let obs::Event::EpochSnapshot(s) = &entry.event {
            snapshots += 1;
            let rec = &recs[s.epoch as usize];
            let journaled = s.total_w();
            let measured = rec.breakdown.total_w();
            assert!(
                (journaled - measured).abs() < 1e-9,
                "epoch {}: journal says {journaled} W, record says {measured} W",
                s.epoch
            );
            assert!((s.server_w - rec.breakdown.server_w).abs() < 1e-9);
            assert!((s.network_w - rec.breakdown.network_w).abs() < 1e-9);
            assert_eq!(s.active_switches, rec.active_switches as u64);
            assert_eq!(s.feasible, rec.feasible);
            assert_eq!(s.strategy, "eprons");
        }
    }
    assert_eq!(snapshots, epochs);

    // The whole journal must round-trip through JSON-lines losslessly.
    let text = journal.to_jsonl();
    assert_eq!(text.lines().count(), entries.len());
    let parsed = obs::parse_jsonl(&text).expect("journal must re-parse");
    assert_eq!(parsed.len(), entries.len());
    for (a, b) in entries.iter().zip(&parsed) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.event, b.event);
    }

    // Causal spans: every SpanStart pairs with exactly one SpanEnd, the
    // day has a single root span, and each epoch got its own child span
    // parented to it (the documented day → epoch hierarchy).
    let mut starts = std::collections::HashMap::new();
    let mut ends = 0usize;
    for entry in &entries {
        match &entry.event {
            obs::Event::SpanStart {
                id, parent, name, ..
            } => {
                let prev = starts.insert(*id, (parent, name.as_str()));
                assert!(prev.is_none(), "span id {id} started twice");
            }
            obs::Event::SpanEnd { id, name, .. } => {
                ends += 1;
                let (_, started_as) = starts
                    .get(id)
                    .unwrap_or_else(|| panic!("SpanEnd {id} without a SpanStart"));
                assert_eq!(*started_as, name, "span {id} changed name at end");
            }
            _ => {}
        }
    }
    assert_eq!(starts.len(), ends, "every span must start and end once");
    let named = |want: &str| starts.values().filter(|(_, n)| *n == want).count();
    assert_eq!(named("day"), 1, "exactly one root day span");
    assert_eq!(named("epoch"), epochs, "one epoch span per epoch");
    let day_id = *starts
        .iter()
        .find(|(_, (_, n))| *n == "day")
        .map(|(id, _)| id)
        .expect("day span present");
    assert!(
        starts
            .values()
            .filter(|(_, n)| *n == "epoch")
            .all(|(p, _)| **p == day_id),
        "epoch spans must be children of the day span"
    );

    // Metrics side: the run timer and counters must have fired.
    let metrics = obs::registry().snapshot();
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("core.cluster.runs") >= epochs as u64);
    assert!(counter("server.vp.decisions") > 0);
    assert!(
        metrics
            .histograms
            .iter()
            .any(|(n, h)| n == "core.cluster.run_s" && h.count > 0),
        "the scoped run timer must observe durations"
    );

    obs::reset();
    obs::set_enabled(false);
}
