//! Sanity check that disabled telemetry stays out of the hot paths: with
//! the global flag off, a consolidation pass may not record anything, and
//! its wall time must be indistinguishable from the enabled-path cost
//! minus the actual event work (the gate is one relaxed atomic load).

use std::time::Instant;

use eprons_repro::net::flow::{FlowClass, FlowSet};
use eprons_repro::net::{ConsolidationConfig, Consolidator, GreedyConsolidator};
use eprons_repro::obs;
use eprons_repro::topo::FatTree;

fn fig2_flows(ft: &FatTree) -> FlowSet {
    let mut fs = FlowSet::new();
    fs.add(
        ft.host(0, 0, 0),
        ft.host(1, 0, 0),
        900.0,
        FlowClass::LatencyTolerant,
    );
    fs.add(
        ft.host(0, 0, 1),
        ft.host(1, 0, 1),
        20.0,
        FlowClass::LatencySensitive,
    );
    fs.add(
        ft.host(0, 1, 0),
        ft.host(1, 1, 0),
        20.0,
        FlowClass::LatencySensitive,
    );
    fs
}

fn time_consolidations(n: usize) -> f64 {
    let ft = FatTree::new(4, 1000.0);
    let fs = fig2_flows(&ft);
    let cfg = ConsolidationConfig::with_k(2.0);
    let start = Instant::now();
    for _ in 0..n {
        let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        std::hint::black_box(a);
    }
    start.elapsed().as_secs_f64() / n as f64
}

#[test]
fn disabled_telemetry_records_nothing_and_stays_cheap() {
    obs::set_enabled(false);
    obs::reset();
    time_consolidations(50); // warm up
    let off = time_consolidations(500);
    assert!(
        obs::journal().is_empty(),
        "disabled telemetry must not journal"
    );
    assert!(obs::registry().snapshot().counters.is_empty());

    obs::set_enabled(true);
    let on = time_consolidations(500);
    obs::set_enabled(false);
    assert!(obs::journal().count_kind("ConsolidationPass") >= 500);
    obs::reset();

    // Loose smoke bound (not a benchmark): even the fully *enabled* path —
    // timer + counter + journal append — must stay within 2x of disabled,
    // so the disabled gate (one relaxed load) is far below the 2% budget.
    assert!(
        on < off * 2.0 + 20.0e-6,
        "enabled {on:.2e}s vs disabled {off:.2e}s per consolidation"
    );
}
