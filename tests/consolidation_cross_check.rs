//! Cross-checks the three consolidator implementations against each other
//! on shared instances (exact arc model ≡ exact path model ≥ greedy).

use eprons_repro::net::flow::FlowSet;
use eprons_repro::net::{
    ArcMilpConsolidator, ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator,
    NetworkPowerModel, PathMilpConsolidator,
};
use eprons_repro::sim::SimRng;
use eprons_repro::topo::FatTree;

fn power_of(
    c: &dyn Consolidator,
    ft: &FatTree,
    fs: &FlowSet,
    cfg: &ConsolidationConfig,
) -> Option<f64> {
    c.consolidate(ft, fs, cfg).ok().map(|a| {
        a.validate(ft, fs, cfg).expect("assignment must validate");
        a.network_power_w(ft, &NetworkPowerModel::default())
    })
}

#[test]
fn exact_models_agree_on_small_instances() {
    // k=2 fat-tree: the arc model (paper eqs. 2-9) and the path model must
    // find the same optimum.
    let ft = FatTree::new(2, 1000.0);
    let cfg = ConsolidationConfig::with_k(1.0);
    let mut fs = FlowSet::new();
    fs.add(
        ft.hosts()[0],
        ft.hosts()[1],
        300.0,
        FlowClass::LatencySensitive,
    );
    fs.add(
        ft.hosts()[1],
        ft.hosts()[0],
        200.0,
        FlowClass::LatencyTolerant,
    );
    let arc = power_of(&ArcMilpConsolidator::default(), &ft, &fs, &cfg).unwrap();
    let path = power_of(&PathMilpConsolidator::default(), &ft, &fs, &cfg).unwrap();
    assert!((arc - path).abs() < 1e-6, "arc {arc} vs path {path}");
}

#[test]
fn exact_never_worse_than_greedy_on_random_instances() {
    let ft = FatTree::new(4, 1000.0);
    let hosts = ft.hosts().to_vec();
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut fs = FlowSet::new();
        for _ in 0..6 {
            let a = rng.index(hosts.len());
            let mut b = rng.index(hosts.len());
            while b == a {
                b = rng.index(hosts.len());
            }
            let demand = rng.uniform_range(10.0, 400.0);
            let class = if rng.bernoulli(0.5) {
                FlowClass::LatencySensitive
            } else {
                FlowClass::LatencyTolerant
            };
            fs.add(hosts[a], hosts[b], demand, class);
        }
        let cfg = ConsolidationConfig::with_k(1.5);
        let exact = power_of(&PathMilpConsolidator::default(), &ft, &fs, &cfg);
        let greedy = power_of(&GreedyConsolidator, &ft, &fs, &cfg);
        match (exact, greedy) {
            (Some(e), Some(g)) => {
                assert!(
                    e <= g + 1e-6,
                    "seed {seed}: exact {e} worse than greedy {g}"
                )
            }
            (Some(_), None) => {} // greedy may fail where exact succeeds
            (None, Some(_)) => {
                panic!("seed {seed}: exact infeasible but greedy succeeded")
            }
            (None, None) => {}
        }
    }
}

#[test]
fn paper_fig2_exact_numbers() {
    // The Fig. 2 instance end-to-end through the facade crate.
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    fs.add(
        ft.host(0, 0, 0),
        ft.host(1, 0, 0),
        900.0,
        FlowClass::LatencyTolerant,
    );
    fs.add(
        ft.host(0, 0, 1),
        ft.host(1, 0, 1),
        20.0,
        FlowClass::LatencySensitive,
    );
    fs.add(
        ft.host(0, 1, 0),
        ft.host(1, 1, 0),
        20.0,
        FlowClass::LatencySensitive,
    );
    let switches: Vec<usize> = [1.0, 2.0, 3.0]
        .iter()
        .map(|&k| {
            PathMilpConsolidator::default()
                .consolidate(&ft, &fs, &ConsolidationConfig::with_k(k))
                .unwrap()
                .active_switch_count(&ft)
        })
        .collect();
    assert_eq!(switches[0], 7, "K=1 packs everything onto one subtree");
    assert!(switches[1] > switches[0], "K=2 must open a new path");
    assert!(switches[2] >= switches[1], "K=3 cannot shrink the set");
}
