//! Scaling beyond the paper's platform: the whole pipeline also runs on
//! larger fat-trees (the paper's k=4 / 16-server MiniNet limit was an
//! emulation-resource constraint, §V-A: "the MiniNet network could be
//! extended to a cluster of servers").

use eprons_repro::core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_repro::net::flow::FlowSet;
use eprons_repro::net::{ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator};
use eprons_repro::sim::SimRng;
use eprons_repro::topo::{AggregationLevel, FatTree};

#[test]
fn k6_cluster_runs_end_to_end() {
    let cfg = ClusterConfig {
        fat_tree_k: 6, // 54 servers, 45 switches
        ..ClusterConfig::default()
    };
    let run = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::Level(AggregationLevel::Agg1),
        server_utilization: 0.15,
        background_util: 0.1,
        duration_s: 2.0,
        warmup_s: 0.0,
        seed: 7,
    };
    let r = run_cluster(&cfg, &run).unwrap();
    assert_eq!(cfg.num_servers(), 54);
    assert!(r.query_count > 20);
    // Agg1 on k=6: 18 edges + 18 aggs + 3 cores (1 per group) = 39.
    assert_eq!(r.active_switches, 39);
    // Static power alone: 54 × 20 W.
    assert!(r.breakdown.server_w > 54.0 * 20.0);
    assert!(r.e2e_latency.p95_s > 0.0);
}

#[test]
fn greedy_consolidation_scales_to_hundreds_of_flows_on_k8() {
    let ft = FatTree::new(8, 1000.0); // 128 hosts, 80 switches
    let hosts = ft.hosts().to_vec();
    let mut rng = SimRng::seed_from_u64(8);
    let mut fs = FlowSet::new();
    for _ in 0..400 {
        let a = rng.index(hosts.len());
        let mut b = rng.index(hosts.len());
        while b == a {
            b = rng.index(hosts.len());
        }
        fs.add(
            hosts[a],
            hosts[b],
            rng.uniform_range(5.0, 40.0),
            FlowClass::LatencySensitive,
        );
    }
    let cfg = ConsolidationConfig::with_k(2.0);
    let start = std::time::Instant::now();
    let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    let elapsed = start.elapsed();
    a.validate(&ft, &fs, &cfg).unwrap();
    assert!(a.active_switch_count(&ft) <= 80);
    // The deployable heuristic stays interactive (paper §IV-B's point).
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "greedy took {elapsed:?} for 400 flows on k=8"
    );
}
