//! The cross-layer slack transfer, tested through the whole stack:
//! the network budget a request did not spend becomes server compute
//! budget (paper §IV), and only for the slack-aware schemes.

use eprons_repro::core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_repro::server::request::budget_with_network_slack;
use eprons_repro::topo::AggregationLevel;

#[test]
fn slack_arithmetic_matches_the_paper() {
    // 25 ms server + 2.5 ms request-direction budget.
    assert!((budget_with_network_slack(25.0e-3, 2.5e-3, 0.5e-3) - 27.0e-3).abs() < 1e-12);
    assert!((budget_with_network_slack(25.0e-3, 2.5e-3, 2.5e-3) - 25.0e-3).abs() < 1e-12);
    // A slow network never *shrinks* the server budget ("we only use the
    // request slack", conservatively).
    assert!((budget_with_network_slack(25.0e-3, 2.5e-3, 9.0e-3) - 25.0e-3).abs() < 1e-12);
}

#[test]
fn bigger_network_budget_means_lower_server_power() {
    // Growing the network budget (with the same total minus network kept
    // at the server) hands EPRONS more per-request slack.
    let run = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::Level(AggregationLevel::Agg0),
        server_utilization: 0.3,
        background_util: 0.1,
        duration_s: 8.0,
        warmup_s: 0.0,
        seed: 9,
    };
    let mut cfg = ClusterConfig::default();
    // Same 25 ms server budget; network budget 0 vs 10 ms.
    cfg.sla.network_budget_s = 0.0;
    let no_slack = run_cluster(&cfg, &run).unwrap();
    cfg.sla.network_budget_s = 10.0e-3;
    let big_slack = run_cluster(&cfg, &run).unwrap();
    assert!(
        big_slack.cpu_power_w < no_slack.cpu_power_w,
        "slack must save power: {} vs {}",
        big_slack.cpu_power_w,
        no_slack.cpu_power_w
    );
}

#[test]
fn slack_free_schemes_ignore_the_network_budget() {
    // Rubik's deadlines never include network slack, so growing the
    // network budget must not change its server power.
    let run = ClusterRun {
        scheme: ServerScheme::Rubik,
        consolidation: ConsolidationSpec::Level(AggregationLevel::Agg0),
        server_utilization: 0.3,
        background_util: 0.1,
        duration_s: 8.0,
        warmup_s: 0.0,
        seed: 10,
    };
    let mut cfg = ClusterConfig::default();
    cfg.sla.network_budget_s = 0.0;
    let a = run_cluster(&cfg, &run).unwrap();
    cfg.sla.network_budget_s = 10.0e-3;
    let b = run_cluster(&cfg, &run).unwrap();
    assert!(
        (a.cpu_power_w - b.cpu_power_w).abs() < 1e-9,
        "Rubik saw the network budget: {} vs {}",
        a.cpu_power_w,
        b.cpu_power_w
    );
}

#[test]
fn consolidation_reduces_slack_and_raises_server_power() {
    // The paper's cross-purpose effect: a more aggressive aggregation
    // leaves less network slack, so the *server* layer pays more — the
    // very interaction joint optimization exploits.
    let cfg = ClusterConfig::default();
    let mk = |level| ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::Level(level),
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 8.0,
        warmup_s: 0.0,
        seed: 11,
    };
    let roomy = run_cluster(&cfg, &mk(AggregationLevel::Agg0)).unwrap();
    let tight = run_cluster(&cfg, &mk(AggregationLevel::Agg3)).unwrap();
    assert!(
        tight.cpu_power_w >= roomy.cpu_power_w - 0.5,
        "aggressive aggregation should not lower server power: {} vs {}",
        tight.cpu_power_w,
        roomy.cpu_power_w
    );
    // …but the network side saves more than the servers lose at this load
    // and constraint (that's why aggregation 3 wins Fig. 13a).
    assert!(tight.breakdown.total_w() < roomy.breakdown.total_w());
}
