//! End-to-end integration: the full EPRONS pipeline (workload → network →
//! servers → accounting) reproduces the paper's qualitative results.

use eprons_repro::core::optimizer::{aggregation_candidates, optimize_total_power};
use eprons_repro::core::{run_cluster, ClusterConfig, ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_repro::topo::AggregationLevel;

fn base() -> ClusterRun {
    ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::Level(AggregationLevel::Agg0),
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 8.0,
        warmup_s: 0.0,
        seed: 424242,
    }
}

#[test]
fn scheme_power_ordering_matches_fig12() {
    let cfg = ClusterConfig::default();
    let mut results = Vec::new();
    for scheme in [
        ServerScheme::NoPowerManagement,
        ServerScheme::Rubik,
        ServerScheme::RubikPlus,
        ServerScheme::EpronsServer,
    ] {
        let r = run_cluster(&cfg, &ClusterRun { scheme, ..base() }).unwrap();
        results.push((scheme, r));
    }
    let power = |s: ServerScheme| results.iter().find(|(x, _)| *x == s).unwrap().1.cpu_power_w;
    // The paper's Fig. 12(a) ordering.
    assert!(power(ServerScheme::EpronsServer) < power(ServerScheme::RubikPlus) + 1e-9);
    assert!(power(ServerScheme::RubikPlus) < power(ServerScheme::Rubik) + 1e-9);
    assert!(power(ServerScheme::Rubik) < power(ServerScheme::NoPowerManagement));
    // All managed schemes keep the SLA.
    for (s, r) in &results {
        assert!(
            r.is_feasible(&cfg),
            "{s:?} violated the SLA: miss {:.3}",
            r.e2e_miss_rate
        );
    }
}

#[test]
fn aggregation_trades_network_power_for_tail_latency() {
    let cfg = ClusterConfig::default();
    let mut last_power = f64::INFINITY;
    let mut last_latency = 0.0;
    for level in AggregationLevel::ALL {
        let r = run_cluster(
            &cfg,
            &ClusterRun {
                consolidation: ConsolidationSpec::Level(level),
                ..base()
            },
        )
        .unwrap();
        assert!(
            r.breakdown.network_w < last_power,
            "{level:?} must shed network power"
        );
        assert!(
            r.net_latency.p95_s >= last_latency * 0.9,
            "{level:?} should not dramatically reduce the tail"
        );
        last_power = r.breakdown.network_w;
        last_latency = r.net_latency.p95_s;
    }
}

#[test]
fn joint_optimizer_turns_switches_on_when_the_sla_tightens() {
    // The paper's headline: at tight constraints, the minimum-total-power
    // choice uses MORE switches than at loose constraints.
    let mut cfg = ClusterConfig::default();
    let template = base();
    cfg.sla = cfg.sla.with_total(40.0e-3);
    let loose = optimize_total_power(&cfg, &template, &aggregation_candidates()).unwrap();
    cfg.sla = cfg.sla.with_total(22.0e-3);
    let tight = optimize_total_power(&cfg, &template, &aggregation_candidates()).unwrap();
    assert!(
        tight.result.active_switches >= loose.result.active_switches,
        "tight SLA chose {} switches, loose chose {}",
        tight.result.active_switches,
        loose.result.active_switches
    );
}

#[test]
fn network_slack_transfer_lowers_server_power() {
    // Rubik+ (slack-aware) vs Rubik (slack-free) on the *same* network: the
    // slack transfer is the only difference, and it can only help.
    let cfg = ClusterConfig::default();
    let rubik = run_cluster(
        &cfg,
        &ClusterRun {
            scheme: ServerScheme::Rubik,
            ..base()
        },
    )
    .unwrap();
    let plus = run_cluster(
        &cfg,
        &ClusterRun {
            scheme: ServerScheme::RubikPlus,
            ..base()
        },
    )
    .unwrap();
    assert!(plus.cpu_power_w <= rubik.cpu_power_w + 0.5);
    // Both see the same network.
    assert_eq!(plus.active_switches, rubik.active_switches);
    assert_eq!(plus.breakdown.network_w, rubik.breakdown.network_w);
}

#[test]
fn greedy_consolidation_beats_fixed_presets_on_network_power() {
    // The optimizing consolidator should never use more switches than the
    // all-on baseline and, at K=1, should reach (close to) the minimal
    // subnet for this traffic.
    let cfg = ClusterConfig::default();
    let r = run_cluster(
        &cfg,
        &ClusterRun {
            consolidation: ConsolidationSpec::GreedyK(1.0),
            ..base()
        },
    )
    .unwrap();
    assert!(r.active_switches < 20);
    assert!(r.breakdown.network_w < 768.0);
}

#[test]
fn utilization_sweep_raises_power_monotonically() {
    let cfg = ClusterConfig::default();
    let mut prev = 0.0;
    for util in [0.1, 0.3, 0.5] {
        let r = run_cluster(
            &cfg,
            &ClusterRun {
                server_utilization: util,
                ..base()
            },
        )
        .unwrap();
        assert!(
            r.cpu_power_w > prev,
            "CPU power must grow with load ({util}: {} vs {prev})",
            r.cpu_power_w
        );
        prev = r.cpu_power_w;
    }
}

#[test]
fn results_are_reproducible_across_calls() {
    let cfg = ClusterConfig::default();
    let a = run_cluster(&cfg, &base()).unwrap();
    let b = run_cluster(&cfg, &base()).unwrap();
    assert_eq!(a.cpu_power_w, b.cpu_power_w);
    assert_eq!(a.e2e_miss_rate, b.e2e_miss_rate);
    assert_eq!(a.net_latency.p99_s, b.net_latency.p99_s);
    assert_eq!(a.active_switches, b.active_switches);
}
