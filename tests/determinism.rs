//! Reproducibility: everything in the public API is a pure function of its
//! seed — the property every figure harness relies on.

use eprons_repro::core::controller::DayConfig;
use eprons_repro::core::{simulate_day, ClusterConfig, DayStrategy};
use eprons_repro::num::Pmf;
use eprons_repro::server::{ServiceModel, VpEngine};
use eprons_repro::sim::SimRng;
use eprons_repro::workload::{poisson_times, xapian_like_samples, QueryGenerator};

#[test]
fn workload_generators_are_seed_pure() {
    let mut a = SimRng::seed_from_u64(5);
    let mut b = SimRng::seed_from_u64(5);
    assert_eq!(
        poisson_times(&mut a, 100.0, 10.0),
        poisson_times(&mut b, 100.0, 10.0)
    );
    let mut a = SimRng::seed_from_u64(6);
    let mut b = SimRng::seed_from_u64(6);
    assert_eq!(
        xapian_like_samples(&mut a, 500),
        xapian_like_samples(&mut b, 500)
    );
    let g = QueryGenerator::new(16);
    let mut a = SimRng::seed_from_u64(7);
    let mut b = SimRng::seed_from_u64(7);
    assert_eq!(g.generate(&mut a, 50.0, 5.0), g.generate(&mut b, 50.0, 5.0));
}

#[test]
fn vp_engine_is_deterministic() {
    let service = ServiceModel::new(Pmf::from_masses(1.0e-3, 0.5e-3, vec![1.0, 2.0, 1.0]), 0.0);
    let mut e1 = VpEngine::new(service.clone());
    let mut e2 = VpEngine::new(service);
    let d1 = e1.decision(0.0, None, &[5.0e-3, 8.0e-3, 11.0e-3]);
    let d2 = e2.decision(0.0, None, &[5.0e-3, 8.0e-3, 11.0e-3]);
    for i in 0..3 {
        for f in [1.2, 1.9, 2.7] {
            assert_eq!(d1.vp(i, f), d2.vp(i, f));
        }
    }
}

#[test]
fn day_simulation_is_seed_pure() {
    let cfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: 480, // 3 epochs for speed
        sim_seconds: 2.0,
        peak_utilization: 0.4,
        seed: 321,
        warm_start: true,
        ..DayConfig::default()
    };
    let a = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
    let b = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.breakdown.server_w, y.breakdown.server_w);
        assert_eq!(x.breakdown.network_w, y.breakdown.network_w);
        assert_eq!(x.e2e_p95_s, y.e2e_p95_s);
        assert_eq!(x.active_switches, y.active_switches);
    }
}

#[test]
fn different_seeds_give_different_days() {
    let cfg = ClusterConfig::default();
    let mk = |seed| DayConfig {
        epoch_minutes: 720, // 2 epochs
        sim_seconds: 2.0,
        peak_utilization: 0.4,
        seed,
        warm_start: true,
        ..DayConfig::default()
    };
    let a = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &mk(1));
    let b = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &mk(2));
    assert!(
        a.iter()
            .zip(&b)
            .any(|(x, y)| x.breakdown.server_w != y.breakdown.server_w),
        "different seeds should perturb the measurement"
    );
}
