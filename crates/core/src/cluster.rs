//! The end-to-end cluster simulator (paper §V-A's platform).
//!
//! One run reproduces the paper's MiniNet experiment: a 4-ary fat-tree
//! carrying background elephants plus partition–aggregate search queries
//! (a random aggregator broadcasts sub-queries to the other 15 ISNs), with
//!
//! 1. traffic consolidation choosing the active subgraph and flow paths,
//! 2. per-sub-query network latencies sampled from the utilization→latency
//!    model along the assigned paths,
//! 3. per-ISN DVFS simulation under the selected server scheme, with the
//!    request network slack transferred into each request's compute budget
//!    for the slack-aware schemes, and
//! 4. power and tail-latency accounting across both layers.

use std::collections::HashMap;

use eprons_net::flow::FlowSet;
use eprons_net::{
    Assignment, ConsolidationConfig, ConsolidationError, Consolidator, FlowClass, FlowId,
    GreedyConsolidator,
};
use eprons_net::consolidate::AggregationRouter;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    simulate_core, ArrivalSpec, AvgVpPolicy, CoreSimConfig, DeepSleepPolicy, MaxFreqPolicy,
    MaxVpPolicy, ServiceModel, TimeTraderPolicy, VpEngine,
};
use eprons_server::request::budget_with_network_slack;
use eprons_sim::SimRng;
use eprons_topo::{AggregationLevel, FatTree};
use eprons_workload::{xapian_like_samples, QueryGenerator};
use eprons_workload::background::background_flows;

use crate::accounting::PowerBreakdown;
use crate::config::ClusterConfig;

/// The server power-management scheme under test (Fig. 12's lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerScheme {
    /// Always `f_max`.
    NoPowerManagement,
    /// Max-VP criterion, no network slack.
    Rubik,
    /// Max-VP criterion with per-request network slack.
    RubikPlus,
    /// 5 s feedback on the measured tail; whole network budget when the
    /// DCN is uncongested.
    TimeTrader,
    /// EPRONS-Server: average-VP criterion, EDF, per-request slack.
    EpronsServer,
    /// Extension: deep idle sleep + max-VP DVFS with per-request slack
    /// (the DynSleep/SleepScale direction; not one of the paper's
    /// baselines, hence excluded from [`ServerScheme::ALL`]).
    DeepSleep,
}

impl ServerScheme {
    /// Every scheme, baseline first.
    pub const ALL: [ServerScheme; 5] = [
        ServerScheme::NoPowerManagement,
        ServerScheme::Rubik,
        ServerScheme::TimeTrader,
        ServerScheme::RubikPlus,
        ServerScheme::EpronsServer,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ServerScheme::NoPowerManagement => "no-power-management",
            ServerScheme::Rubik => "rubik",
            ServerScheme::RubikPlus => "rubik+",
            ServerScheme::TimeTrader => "timetrader",
            ServerScheme::EpronsServer => "eprons-server",
            ServerScheme::DeepSleep => "deep-sleep",
        }
    }

    /// Whether per-request network slack extends this scheme's deadlines.
    fn uses_request_slack(&self) -> bool {
        matches!(
            self,
            ServerScheme::RubikPlus | ServerScheme::EpronsServer | ServerScheme::DeepSleep
        )
    }
}

/// How the network layer is configured for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsolidationSpec {
    /// Everything on, ECMP-balanced — the "no network power management"
    /// baseline (also TimeTrader's network, which saves no DCN power).
    AllOn,
    /// A fixed Fig. 9 aggregation preset.
    Level(AggregationLevel),
    /// Greedy latency-aware consolidation with scale factor `K`.
    GreedyK(f64),
}

impl ConsolidationSpec {
    /// Short label used in journal events and optimizer traces
    /// (`all-on`, `agg2`, `k=3`).
    pub fn label(&self) -> String {
        match self {
            ConsolidationSpec::AllOn => "all-on".to_string(),
            ConsolidationSpec::Level(l) => format!("agg{}", l.index()),
            ConsolidationSpec::GreedyK(k) => format!("k={k}"),
        }
    }
}

/// Parameters of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Server scheme.
    pub scheme: ServerScheme,
    /// Network configuration.
    pub consolidation: ConsolidationSpec,
    /// Target per-ISN utilization (drives the query rate).
    pub server_utilization: f64,
    /// Background traffic as a fraction of link capacity (0 disables).
    pub background_util: f64,
    /// Simulated seconds of query arrivals *measured*.
    pub duration_s: f64,
    /// Warmup seconds simulated before measurement starts (lets the 5 s
    /// TimeTrader control loop settle; model-based per-request schemes are
    /// stationary from the first request and need none).
    pub warmup_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClusterRun {
    fn default() -> Self {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn,
            server_utilization: 0.3,
            background_util: 0.2,
            duration_s: 20.0,
            warmup_s: 0.0,
            seed: 2018,
        }
    }
}

/// Everything a run measures.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Power split (servers incl. static; network switches + links).
    pub breakdown: PowerBreakdown,
    /// CPU-only power across all servers, watts (Fig. 12's y-axis).
    pub cpu_power_w: f64,
    /// Active switches after consolidation.
    pub active_switches: usize,
    /// Node indices of the active switches (for churn accounting).
    pub active_switch_ids: Vec<usize>,
    /// Peak link utilization (actual carried load).
    pub max_link_utilization: f64,
    /// Number of queries issued.
    pub query_count: usize,
    /// Per-query network latency (max over ISNs of request+reply, the
    /// partition–aggregate straggler effect of Figs. 10–11), seconds.
    pub net_latency: LatencySummary,
    /// Per-sub-query server latency, seconds.
    pub server_latency: LatencySummary,
    /// Per-sub-request end-to-end latency (request + server + reply —
    /// the SLA currency of Figs. 12–13), seconds.
    pub e2e_latency: LatencySummary,
    /// Per-query end-to-end latency (max over ISNs), seconds.
    pub query_e2e_latency: LatencySummary,
    /// Fraction of sub-requests whose end-to-end latency exceeded the
    /// SLA total.
    pub e2e_miss_rate: f64,
    /// Fraction of sub-queries whose server latency exceeded their own
    /// budget.
    pub server_miss_rate: f64,
}

/// Mean and tail percentiles of a latency population.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Arithmetic mean, seconds.
    pub mean_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
}

impl LatencySummary {
    fn from_samples(samples: &[f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                mean_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
            };
        }
        LatencySummary {
            mean_s: samples.iter().sum::<f64>() / samples.len() as f64,
            p95_s: eprons_num::quantile::percentile(samples, 0.95),
            p99_s: eprons_num::quantile::percentile(samples, 0.99),
        }
    }
}

impl ClusterRunResult {
    /// Whether this configuration met the end-to-end SLA (with a small
    /// simulation-noise margin on the miss budget).
    pub fn is_feasible(&self, cfg: &ClusterConfig) -> bool {
        self.e2e_miss_rate <= cfg.sla.miss_budget() + 0.03
    }
}

/// Run failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The consolidator could not place the offered traffic.
    Consolidation(ConsolidationError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Consolidation(e) => write!(f, "consolidation failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Runs one cluster experiment.
///
/// ```
/// use eprons_core::{run_cluster, ClusterConfig, ClusterRun, ServerScheme, ConsolidationSpec};
/// let cfg = ClusterConfig::default();
/// let run = ClusterRun {
///     scheme: ServerScheme::EpronsServer,
///     consolidation: ConsolidationSpec::GreedyK(2.0),
///     server_utilization: 0.2,
///     background_util: 0.1,
///     duration_s: 1.0,
///     warmup_s: 0.0,
///     seed: 1,
/// };
/// let r = run_cluster(&cfg, &run).unwrap();
/// assert!(r.breakdown.total_w() > 0.0);
/// assert!(r.active_switches <= 20);
/// ```
pub fn run_cluster(
    cfg: &ClusterConfig,
    run: &ClusterRun,
) -> Result<ClusterRunResult, ClusterError> {
    let obs_on = eprons_obs::enabled();
    let _t = eprons_obs::Timer::scoped("core.cluster.run_s");
    if obs_on {
        eprons_obs::registry().counter("core.cluster.runs").inc();
        eprons_obs::record(eprons_obs::Event::RunTag {
            scheme: run.scheme.name().to_string(),
            consolidation: run.consolidation.label(),
            seed: run.seed,
        });
    }

    let mut master = SimRng::seed_from_u64(run.seed);
    let mut service_rng = master.fork(1);
    let mut query_rng = master.fork(2);
    let mut bg_rng = master.fork(3);
    let mut net_rng = master.fork(4);
    let mut server_seed_rng = master.fork(5);

    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let n = cfg.num_servers();
    let hosts = ft.hosts().to_vec();

    // --- Service-time model (the measured Xapian log, §V-A). ---
    let samples = xapian_like_samples(&mut service_rng, cfg.service_log_samples);
    let service = ServiceModel::from_time_samples(
        &samples,
        0.2,
        cfg.ladder.max(),
        cfg.work_pmf_bins,
    );
    let mean_t = service.mean_service_time(cfg.ladder.max());

    // --- Query workload (warmup + measured window). ---
    let warmup = run.warmup_s.max(0.0);
    let horizon = warmup + run.duration_s;
    let rate = cfg.query_rate_for_utilization(run.server_utilization, mean_t);
    let generator = QueryGenerator::new(n);
    let queries = generator.generate(&mut query_rng, rate, horizon);

    // --- Flows and consolidation. ---
    let mut flows = FlowSet::new();
    if run.background_util > 0.0 {
        for bf in background_flows(&ft, &mut bg_rng, run.background_util, cfg.link_capacity_mbps)
        {
            flows.add(bf.src, bf.dst, bf.demand_mbps, FlowClass::LatencyTolerant);
        }
    }
    // One latency-sensitive flow per ordered host pair (any server may
    // aggregate, so query traffic exists between every pair).
    let mut pair_flow: HashMap<(usize, usize), FlowId> = HashMap::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                let id = flows.add(
                    hosts[a],
                    hosts[b],
                    cfg.query_flow_mbps,
                    FlowClass::LatencySensitive,
                );
                pair_flow.insert((a, b), id);
            }
        }
    }
    let ccfg = ConsolidationConfig {
        scale_k: match run.consolidation {
            ConsolidationSpec::GreedyK(k) => k,
            _ => 1.0,
        },
        safety_margin_mbps: cfg.safety_margin_mbps,
        power: cfg.net_power.clone(),
    };
    let assignment: Assignment = match run.consolidation {
        ConsolidationSpec::AllOn => AggregationRouter::for_level(&ft, AggregationLevel::Agg0)
            .consolidate(&ft, &flows, &ccfg),
        ConsolidationSpec::Level(l) => {
            AggregationRouter::for_level(&ft, l).consolidate(&ft, &flows, &ccfg)
        }
        ConsolidationSpec::GreedyK(_) => GreedyConsolidator.consolidate(&ft, &flows, &ccfg),
    }
    .map_err(ClusterError::Consolidation)?;

    let max_util = assignment.max_utilization(&ft);
    let congested = max_util > cfg.congestion_threshold;

    // --- Per-sub-query network latencies. ---
    let state = assignment.state();
    // (ISN, request, reply) latency per query.
    let mut net_lat: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); queries.len()];
    for q in &queries {
        for s in 0..n {
            if s == q.aggregator {
                continue;
            }
            let req_path = assignment.path(pair_flow[&(q.aggregator, s)]);
            let rep_path = assignment.path(pair_flow[&(s, q.aggregator)]);
            let req_utils = state.path_utilizations(ft.topology(), req_path);
            let rep_utils = state.path_utilizations(ft.topology(), rep_path);
            let req_lat =
                cfg.latency.sample_path_latency_us(&mut net_rng, &req_utils) * 1.0e-6;
            let rep_lat =
                cfg.latency.sample_path_latency_us(&mut net_rng, &rep_utils) * 1.0e-6;
            net_lat[q.id as usize].push((s, req_lat, rep_lat));
        }
    }

    // TimeTrader borrows whatever network budget its congestion monitor
    // shows to be unused: target = server budget + max(0, network budget −
    // observed round-trip p95). A congested subnet (ECN/queue build-up)
    // withdraws the slack entirely — the over-conservatism the paper
    // criticizes (§I).
    let timetrader_target = if run.scheme == ServerScheme::TimeTrader {
        let round_trips: Vec<f64> = net_lat
            .iter()
            .flatten()
            .map(|&(_, req, rep)| req + rep)
            .collect();
        let net_p95 = if round_trips.is_empty() || congested {
            cfg.sla.network_budget_s
        } else {
            eprons_num::quantile::percentile(&round_trips, 0.95)
        };
        cfg.sla.server_budget_s + (cfg.sla.network_budget_s - net_p95).max(0.0)
    } else {
        cfg.sla.server_budget_s
    };

    // --- Server arrival traces with per-request budgets. ---
    let mut per_server: Vec<Vec<ArrivalSpec>> = vec![Vec::new(); n];
    for q in &queries {
        for &(s, req_lat, _rep) in &net_lat[q.id as usize] {
            let budget = if run.scheme.uses_request_slack() {
                budget_with_network_slack(
                    cfg.sla.server_budget_s,
                    cfg.sla.request_budget_s(),
                    req_lat,
                )
            } else if run.scheme == ServerScheme::TimeTrader {
                timetrader_target
            } else {
                cfg.sla.server_budget_s
            };
            per_server[s].push(ArrivalSpec {
                arrival_s: q.time_s + req_lat,
                budget_s: budget,
                tag: q.id,
            });
        }
    }

    // --- Per-ISN DVFS simulation, sharded across the thread budget. ---
    //
    // Each server's core simulation is independent once its arrival trace
    // and RNG seed are fixed, so the loop fans out through [`parallel_map`].
    // Determinism is preserved by construction: the per-server seeds are
    // drawn *serially* from `server_seed_rng` in index order before any
    // thread starts (exactly the stream the old serial loop consumed), the
    // shards share no mutable state, and the reduction below folds shard
    // results in server-index order so floating-point accumulation matches
    // the serial loop bit for bit.
    let core_cfg = CoreSimConfig {
        ladder: cfg.ladder.clone(),
        power: cfg.cpu.clone(),
        decision_overhead_s: 30.0e-6,
        measure_from_s: warmup,
    };
    for arrivals in per_server.iter_mut() {
        arrivals.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("finite times")
        });
    }
    let server_seeds: Vec<u64> = (0..n)
        .map(|s| server_seed_rng.fork(s as u64).uniform().to_bits())
        .collect();
    if obs_on {
        eprons_obs::registry()
            .gauge("core.cluster.worker_threads")
            .set(crate::parallel::thread_budget() as f64);
    }

    /// What one server's shard hands back to the in-order reduction.
    struct ServerShard {
        avg_core_w: f64,
        /// `(query id, latency, budget)` per completed sub-query.
        completions: Vec<(u64, f64, f64)>,
    }

    let indices: Vec<usize> = (0..n).collect();
    let shards: Vec<ServerShard> = crate::parallel::parallel_map(&indices, |&s| {
        let _t = eprons_obs::Timer::scoped("core.cluster.server_shard_s");
        let arrivals = &per_server[s];
        let mut engine = VpEngine::new(service.clone());
        let mut policy: Box<dyn DvfsPolicy> = match run.scheme {
            ServerScheme::NoPowerManagement => Box::new(MaxFreqPolicy),
            ServerScheme::Rubik => Box::new(MaxVpPolicy::rubik()),
            ServerScheme::RubikPlus => Box::new(MaxVpPolicy::rubik_plus()),
            ServerScheme::TimeTrader => {
                Box::new(TimeTraderPolicy::new(timetrader_target, cfg.ladder.len()))
            }
            ServerScheme::EpronsServer => Box::new(AvgVpPolicy::eprons()),
            ServerScheme::DeepSleep => Box::new(DeepSleepPolicy::new()),
        };
        let r = simulate_core(
            policy.as_mut(),
            &mut engine,
            arrivals,
            &core_cfg,
            server_seeds[s],
        );
        let end = r.sim_end_s.max(horizon);
        let span = end - warmup;
        let trailing_idle_w = policy
            .idle_power_w()
            .unwrap_or_else(|| cfg.cpu.core_idle_w());
        let avg_core_w = if span > 0.0 {
            // Integrate idle power through any trailing idle time too.
            (r.energy_j + (end - r.sim_end_s) * trailing_idle_w) / span
        } else {
            trailing_idle_w
        };
        let completions = r
            .latencies
            .iter()
            .zip(&r.tags)
            .zip(&r.budgets)
            .map(|((&lat, &tag), &budget)| (tag, lat, budget))
            .collect();
        ServerShard {
            avg_core_w,
            completions,
        }
    });

    let mut cpu_power_w = 0.0;
    let mut server_w = 0.0;
    let mut server_latencies: Vec<f64> = Vec::new();
    let mut server_misses = 0usize;
    let mut server_completions = 0usize;
    // server latency per (server, query id).
    let mut lat_of: HashMap<(usize, u64), f64> = HashMap::new();
    for (s, shard) in shards.iter().enumerate() {
        cpu_power_w += cfg.cpu.cores as f64 * shard.avg_core_w;
        server_w += cfg.cpu.server_w(shard.avg_core_w);
        for &(tag, lat, budget) in &shard.completions {
            server_latencies.push(lat);
            server_completions += 1;
            if lat > budget {
                server_misses += 1;
            }
            lat_of.insert((s, tag), lat);
        }
    }

    // --- Query- and request-level assembly. ---
    let mut query_net: Vec<f64> = Vec::with_capacity(queries.len());
    let mut query_e2e: Vec<f64> = Vec::with_capacity(queries.len());
    let mut e2e: Vec<f64> = Vec::with_capacity(queries.len() * n);
    for q in &queries {
        if q.time_s < warmup {
            continue; // warmup queries are simulated but not scored
        }
        let mut worst_net: f64 = 0.0;
        let mut worst_e2e: f64 = 0.0;
        for &(s, req, rep) in &net_lat[q.id as usize] {
            let srv = lat_of
                .get(&(s, q.id))
                .copied()
                .expect("every sub-query completes");
            worst_net = worst_net.max(req + rep);
            worst_e2e = worst_e2e.max(req + srv + rep);
            e2e.push(req + srv + rep);
        }
        query_net.push(worst_net);
        query_e2e.push(worst_e2e);
    }
    let e2e_misses = e2e.iter().filter(|&&l| l > cfg.sla.total_s()).count();

    let network_w = assignment.network_power_w(&ft, &cfg.net_power);
    let active_switch_ids: Vec<usize> = ft
        .topology()
        .switches()
        .into_iter()
        .filter(|&n| assignment.state().node_on(n))
        .map(|n| n.0)
        .collect();
    let result = ClusterRunResult {
        breakdown: PowerBreakdown {
            server_w,
            network_w,
        },
        cpu_power_w,
        active_switches: assignment.active_switch_count(&ft),
        active_switch_ids,
        max_link_utilization: max_util,
        query_count: query_net.len(),
        net_latency: LatencySummary::from_samples(&query_net),
        server_latency: LatencySummary::from_samples(&server_latencies),
        e2e_latency: LatencySummary::from_samples(&e2e),
        query_e2e_latency: LatencySummary::from_samples(&query_e2e),
        e2e_miss_rate: if e2e.is_empty() {
            0.0
        } else {
            e2e_misses as f64 / e2e.len() as f64
        },
        server_miss_rate: if server_completions == 0 {
            0.0
        } else {
            server_misses as f64 / server_completions as f64
        },
    };
    if obs_on {
        let reg = eprons_obs::registry();
        let edges = eprons_obs::DURATION_EDGES_S;
        reg.histogram("core.cluster.server_p95_s", edges)
            .observe(result.server_latency.p95_s);
        reg.histogram("core.cluster.e2e_p95_s", edges)
            .observe(result.e2e_latency.p95_s);
        reg.histogram("core.cluster.query_e2e_p95_s", edges)
            .observe(result.query_e2e_latency.p95_s);
        reg.gauge("core.cluster.total_w").set(result.breakdown.total_w());
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_run() -> ClusterRun {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::Level(AggregationLevel::Agg0),
            server_utilization: 0.3,
            background_util: 0.2,
            duration_s: 5.0,
            warmup_s: 0.0,
            seed: 42,
        }
    }

    #[test]
    fn smoke_run_produces_sane_numbers() {
        let cfg = ClusterConfig::default();
        let r = run_cluster(&cfg, &base_run()).unwrap();
        assert!(r.query_count > 100, "queries: {}", r.query_count);
        // 16 servers: static 320 W + CPU in [16×12×1.4, 16×12×4.4].
        assert!(r.breakdown.server_w > 320.0 + 16.0 * 12.0 * 1.3);
        assert!(r.breakdown.server_w < 320.0 + 16.0 * 12.0 * 4.5);
        // Full network on Agg0.
        assert_eq!(r.active_switches, 20);
        assert!(r.net_latency.p95_s > 0.0);
        // The three journaled tails are ordered by construction:
        // `core.cluster.e2e_p95_s` is per sub-request (request + server +
        // reply), so every sample dominates its `core.cluster.server_p95_s`
        // counterpart, and `core.cluster.query_e2e_p95_s` takes the max of
        // those sub-requests over a query's 15 ISNs.
        assert!(r.e2e_latency.p95_s >= r.server_latency.p95_s);
        assert!(r.query_e2e_latency.p95_s >= r.e2e_latency.p95_s);
        assert!(r.net_latency.p95_s >= 0.8e-3, "6-hop base ≈ 0.8 ms");
        assert!(r.max_link_utilization > 0.1 && r.max_link_utilization < 1.5);
    }

    #[test]
    fn eprons_saves_cpu_power_vs_no_pm() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        let eprons = run_cluster(&cfg, &run).unwrap();
        run.scheme = ServerScheme::NoPowerManagement;
        let nopm = run_cluster(&cfg, &run).unwrap();
        assert!(
            eprons.cpu_power_w < nopm.cpu_power_w,
            "eprons {} vs no-pm {}",
            eprons.cpu_power_w,
            nopm.cpu_power_w
        );
        // And stays feasible.
        assert!(eprons.is_feasible(&cfg), "miss {}", eprons.e2e_miss_rate);
    }

    #[test]
    fn aggregation_trades_network_power_for_latency() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        let agg0 = run_cluster(&cfg, &run).unwrap();
        run.consolidation = ConsolidationSpec::Level(AggregationLevel::Agg3);
        let agg3 = run_cluster(&cfg, &run).unwrap();
        assert!(agg3.breakdown.network_w < agg0.breakdown.network_w);
        assert!(agg3.active_switches == 13 && agg0.active_switches == 20);
        assert!(
            agg3.net_latency.p95_s > agg0.net_latency.p95_s,
            "consolidation must raise the network tail: {} vs {}",
            agg3.net_latency.p95_s,
            agg0.net_latency.p95_s
        );
    }

    #[test]
    fn network_slack_helps_rubik_plus() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        run.scheme = ServerScheme::Rubik;
        let rubik = run_cluster(&cfg, &run).unwrap();
        run.scheme = ServerScheme::RubikPlus;
        let plus = run_cluster(&cfg, &run).unwrap();
        assert!(
            plus.cpu_power_w <= rubik.cpu_power_w + 1.0,
            "rubik+ {} should not exceed rubik {}",
            plus.cpu_power_w,
            rubik.cpu_power_w
        );
    }

    #[test]
    fn greedy_consolidation_turns_switches_off() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        run.consolidation = ConsolidationSpec::GreedyK(1.0);
        let r = run_cluster(&cfg, &run).unwrap();
        assert!(
            r.active_switches < 20,
            "greedy should power down unused switches, kept {}",
            r.active_switches
        );
    }

    #[test]
    fn deep_sleep_extension_saves_most_at_low_load() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        run.server_utilization = 0.05;
        run.scheme = ServerScheme::DeepSleep;
        let sleep = run_cluster(&cfg, &run).unwrap();
        run.scheme = ServerScheme::EpronsServer;
        let eprons = run_cluster(&cfg, &run).unwrap();
        assert!(
            sleep.cpu_power_w < eprons.cpu_power_w,
            "at 5% load sleeping ({}) must beat DVFS ({})",
            sleep.cpu_power_w,
            eprons.cpu_power_w
        );
        assert!(sleep.is_feasible(&cfg), "miss {}", sleep.e2e_miss_rate);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ClusterConfig::default();
        let run = base_run();
        let a = run_cluster(&cfg, &run).unwrap();
        let b = run_cluster(&cfg, &run).unwrap();
        assert_eq!(a.cpu_power_w, b.cpu_power_w);
        assert_eq!(a.e2e_latency.p95_s, b.e2e_latency.p95_s);
        assert_eq!(a.query_count, b.query_count);
    }
}
