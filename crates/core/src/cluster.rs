//! The end-to-end cluster simulator (paper §V-A's platform).
//!
//! One run reproduces the paper's MiniNet experiment: a 4-ary fat-tree
//! carrying background elephants plus partition–aggregate search queries
//! (a random aggregator broadcasts sub-queries to the other 15 ISNs), with
//!
//! 1. traffic consolidation choosing the active subgraph and flow paths,
//! 2. per-sub-query network latencies sampled from the utilization→latency
//!    model along the assigned paths,
//! 3. per-ISN DVFS simulation under the selected server scheme, with the
//!    request network slack transferred into each request's compute budget
//!    for the slack-aware schemes, and
//! 4. power and tail-latency accounting across both layers.
//!
//! This module owns the run *vocabulary* (schemes, candidate specs,
//! results) and the one-shot [`run_cluster`] entry point; the stages
//! themselves live in [`crate::scenario`], where
//! [`ScenarioContext`](crate::scenario::ScenarioContext) lets callers
//! that evaluate many candidates of one scenario (the optimizer, the day
//! controller, the figure sweeps) pay the workload build once.

use eprons_net::ConsolidationError;
use eprons_topo::AggregationLevel;

use crate::accounting::PowerBreakdown;
use crate::config::ClusterConfig;
use crate::scenario::ScenarioContext;

/// The server power-management scheme under test (Fig. 12's lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerScheme {
    /// Always `f_max`.
    NoPowerManagement,
    /// Max-VP criterion, no network slack.
    Rubik,
    /// Max-VP criterion with per-request network slack.
    RubikPlus,
    /// 5 s feedback on the measured tail; whole network budget when the
    /// DCN is uncongested.
    TimeTrader,
    /// EPRONS-Server: average-VP criterion, EDF, per-request slack.
    EpronsServer,
    /// Extension: deep idle sleep + max-VP DVFS with per-request slack
    /// (the DynSleep/SleepScale direction; not one of the paper's
    /// baselines, hence excluded from [`ServerScheme::ALL`]).
    DeepSleep,
}

impl ServerScheme {
    /// Every scheme, baseline first.
    pub const ALL: [ServerScheme; 5] = [
        ServerScheme::NoPowerManagement,
        ServerScheme::Rubik,
        ServerScheme::TimeTrader,
        ServerScheme::RubikPlus,
        ServerScheme::EpronsServer,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ServerScheme::NoPowerManagement => "no-power-management",
            ServerScheme::Rubik => "rubik",
            ServerScheme::RubikPlus => "rubik+",
            ServerScheme::TimeTrader => "timetrader",
            ServerScheme::EpronsServer => "eprons-server",
            ServerScheme::DeepSleep => "deep-sleep",
        }
    }

    /// Whether per-request network slack extends this scheme's deadlines.
    pub(crate) fn uses_request_slack(&self) -> bool {
        matches!(
            self,
            ServerScheme::RubikPlus | ServerScheme::EpronsServer | ServerScheme::DeepSleep
        )
    }
}

/// How the network layer is configured for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsolidationSpec {
    /// Everything on, ECMP-balanced — the "no network power management"
    /// baseline (also TimeTrader's network, which saves no DCN power).
    AllOn,
    /// A fixed Fig. 9 aggregation preset.
    Level(AggregationLevel),
    /// Greedy latency-aware consolidation with scale factor `K`.
    GreedyK(f64),
}

impl ConsolidationSpec {
    /// Short label used in journal events and optimizer traces
    /// (`all-on`, `agg2`, `k=3`).
    pub fn label(&self) -> String {
        match self {
            ConsolidationSpec::AllOn => "all-on".to_string(),
            ConsolidationSpec::Level(l) => format!("agg{}", l.index()),
            ConsolidationSpec::GreedyK(k) => format!("k={k}"),
        }
    }
}

/// Parameters of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Server scheme.
    pub scheme: ServerScheme,
    /// Network configuration.
    pub consolidation: ConsolidationSpec,
    /// Target per-ISN utilization (drives the query rate).
    pub server_utilization: f64,
    /// Background traffic as a fraction of link capacity (0 disables).
    pub background_util: f64,
    /// Simulated seconds of query arrivals *measured*.
    pub duration_s: f64,
    /// Warmup seconds simulated before measurement starts (lets the 5 s
    /// TimeTrader control loop settle; model-based per-request schemes are
    /// stationary from the first request and need none).
    pub warmup_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClusterRun {
    fn default() -> Self {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn,
            server_utilization: 0.3,
            background_util: 0.2,
            duration_s: 20.0,
            warmup_s: 0.0,
            seed: 2018,
        }
    }
}

/// Everything a run measures.
#[derive(Debug, Clone)]
pub struct ClusterRunResult {
    /// Power split (servers incl. static; network switches + links).
    pub breakdown: PowerBreakdown,
    /// CPU-only power across all servers, watts (Fig. 12's y-axis).
    pub cpu_power_w: f64,
    /// Active switches after consolidation.
    pub active_switches: usize,
    /// Node indices of the active switches (for churn accounting).
    pub active_switch_ids: Vec<usize>,
    /// Peak link utilization (actual carried load).
    pub max_link_utilization: f64,
    /// Number of queries issued.
    pub query_count: usize,
    /// Per-query network latency (max over ISNs of request+reply, the
    /// partition–aggregate straggler effect of Figs. 10–11), seconds.
    pub net_latency: LatencySummary,
    /// Per-sub-query server latency, seconds.
    pub server_latency: LatencySummary,
    /// Per-sub-request end-to-end latency (request + server + reply —
    /// the SLA currency of Figs. 12–13), seconds.
    pub e2e_latency: LatencySummary,
    /// Per-query end-to-end latency (max over ISNs), seconds.
    pub query_e2e_latency: LatencySummary,
    /// Fraction of sub-requests whose end-to-end latency exceeded the
    /// SLA total.
    pub e2e_miss_rate: f64,
    /// Fraction of sub-queries whose server latency exceeded their own
    /// budget.
    pub server_miss_rate: f64,
}

/// Mean and tail percentiles of a latency population.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Arithmetic mean, seconds.
    pub mean_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
}

impl LatencySummary {
    pub(crate) fn from_samples(samples: &[f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                mean_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
            };
        }
        LatencySummary {
            mean_s: samples.iter().sum::<f64>() / samples.len() as f64,
            p95_s: eprons_num::quantile::percentile(samples, 0.95),
            p99_s: eprons_num::quantile::percentile(samples, 0.99),
        }
    }
}

impl ClusterRunResult {
    /// Whether this configuration met the end-to-end SLA (with a small
    /// simulation-noise margin on the miss budget).
    pub fn is_feasible(&self, cfg: &ClusterConfig) -> bool {
        self.e2e_miss_rate <= cfg.sla.miss_budget() + 0.03
    }
}

/// Run failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The consolidator could not place the offered traffic.
    Consolidation(ConsolidationError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Consolidation(e) => write!(f, "consolidation failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Runs one cluster experiment.
///
/// A thin wrapper over the staged pipeline: it builds a fresh
/// [`ScenarioContext`] for the run's scenario axes and evaluates the
/// run's (scheme, consolidation) pair against it. Callers that evaluate
/// several candidates of the *same* scenario should build the context
/// once and call [`ScenarioContext::evaluate`] per candidate instead —
/// the results are bit-identical either way.
///
/// ```
/// use eprons_core::{run_cluster, ClusterConfig, ClusterRun, ServerScheme, ConsolidationSpec};
/// let cfg = ClusterConfig::default();
/// let run = ClusterRun {
///     scheme: ServerScheme::EpronsServer,
///     consolidation: ConsolidationSpec::GreedyK(2.0),
///     server_utilization: 0.2,
///     background_util: 0.1,
///     duration_s: 1.0,
///     warmup_s: 0.0,
///     seed: 1,
/// };
/// let r = run_cluster(&cfg, &run).unwrap();
/// assert!(r.breakdown.total_w() > 0.0);
/// assert!(r.active_switches <= 20);
/// ```
pub fn run_cluster(
    cfg: &ClusterConfig,
    run: &ClusterRun,
) -> Result<ClusterRunResult, ClusterError> {
    let ctx = ScenarioContext::for_template(cfg, run);
    ctx.evaluate(run.scheme, run.consolidation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_run() -> ClusterRun {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::Level(AggregationLevel::Agg0),
            server_utilization: 0.3,
            background_util: 0.2,
            duration_s: 5.0,
            warmup_s: 0.0,
            seed: 42,
        }
    }

    #[test]
    fn smoke_run_produces_sane_numbers() {
        let cfg = ClusterConfig::default();
        let r = run_cluster(&cfg, &base_run()).unwrap();
        assert!(r.query_count > 100, "queries: {}", r.query_count);
        // 16 servers: static 320 W + CPU in [16×12×1.4, 16×12×4.4].
        assert!(r.breakdown.server_w > 320.0 + 16.0 * 12.0 * 1.3);
        assert!(r.breakdown.server_w < 320.0 + 16.0 * 12.0 * 4.5);
        // Full network on Agg0.
        assert_eq!(r.active_switches, 20);
        assert!(r.net_latency.p95_s > 0.0);
        // The three journaled tails are ordered by construction:
        // `core.cluster.e2e_p95_s` is per sub-request (request + server +
        // reply), so every sample dominates its `core.cluster.server_p95_s`
        // counterpart, and `core.cluster.query_e2e_p95_s` takes the max of
        // those sub-requests over a query's 15 ISNs.
        assert!(r.e2e_latency.p95_s >= r.server_latency.p95_s);
        assert!(r.query_e2e_latency.p95_s >= r.e2e_latency.p95_s);
        assert!(r.net_latency.p95_s >= 0.8e-3, "6-hop base ≈ 0.8 ms");
        assert!(r.max_link_utilization > 0.1 && r.max_link_utilization < 1.5);
    }

    #[test]
    fn eprons_saves_cpu_power_vs_no_pm() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        let eprons = run_cluster(&cfg, &run).unwrap();
        run.scheme = ServerScheme::NoPowerManagement;
        let nopm = run_cluster(&cfg, &run).unwrap();
        assert!(
            eprons.cpu_power_w < nopm.cpu_power_w,
            "eprons {} vs no-pm {}",
            eprons.cpu_power_w,
            nopm.cpu_power_w
        );
        // And stays feasible.
        assert!(eprons.is_feasible(&cfg), "miss {}", eprons.e2e_miss_rate);
    }

    #[test]
    fn aggregation_trades_network_power_for_latency() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        let agg0 = run_cluster(&cfg, &run).unwrap();
        run.consolidation = ConsolidationSpec::Level(AggregationLevel::Agg3);
        let agg3 = run_cluster(&cfg, &run).unwrap();
        assert!(agg3.breakdown.network_w < agg0.breakdown.network_w);
        assert!(agg3.active_switches == 13 && agg0.active_switches == 20);
        assert!(
            agg3.net_latency.p95_s > agg0.net_latency.p95_s,
            "consolidation must raise the network tail: {} vs {}",
            agg3.net_latency.p95_s,
            agg0.net_latency.p95_s
        );
    }

    #[test]
    fn network_slack_helps_rubik_plus() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        run.scheme = ServerScheme::Rubik;
        let rubik = run_cluster(&cfg, &run).unwrap();
        run.scheme = ServerScheme::RubikPlus;
        let plus = run_cluster(&cfg, &run).unwrap();
        assert!(
            plus.cpu_power_w <= rubik.cpu_power_w + 1.0,
            "rubik+ {} should not exceed rubik {}",
            plus.cpu_power_w,
            rubik.cpu_power_w
        );
    }

    #[test]
    fn greedy_consolidation_turns_switches_off() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        run.consolidation = ConsolidationSpec::GreedyK(1.0);
        let r = run_cluster(&cfg, &run).unwrap();
        assert!(
            r.active_switches < 20,
            "greedy should power down unused switches, kept {}",
            r.active_switches
        );
    }

    #[test]
    fn deep_sleep_extension_saves_most_at_low_load() {
        let cfg = ClusterConfig::default();
        let mut run = base_run();
        run.server_utilization = 0.05;
        run.scheme = ServerScheme::DeepSleep;
        let sleep = run_cluster(&cfg, &run).unwrap();
        run.scheme = ServerScheme::EpronsServer;
        let eprons = run_cluster(&cfg, &run).unwrap();
        assert!(
            sleep.cpu_power_w < eprons.cpu_power_w,
            "at 5% load sleeping ({}) must beat DVFS ({})",
            sleep.cpu_power_w,
            eprons.cpu_power_w
        );
        assert!(sleep.is_feasible(&cfg), "miss {}", sleep.e2e_miss_rate);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ClusterConfig::default();
        let run = base_run();
        let a = run_cluster(&cfg, &run).unwrap();
        let b = run_cluster(&cfg, &run).unwrap();
        assert_eq!(a.cpu_power_w, b.cpu_power_w);
        assert_eq!(a.e2e_latency.p95_s, b.e2e_latency.p95_s);
        assert_eq!(a.query_count, b.query_count);
    }
}
