//! Scoped-thread parallel map for parameter sweeps.
//!
//! The figure harnesses sweep (scheme × constraint × background × level)
//! grids of independent cluster simulations; this helper fans them out
//! over OS threads with no `unsafe` and no work-stealing machinery —
//! std's scoped threads guarantee the borrows stay valid (the pattern the
//! Rust Atomics & Locks guide recommends for fork-join workloads).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `f` must be `Sync` (it is shared across threads); items are
/// handed out atomically so threads stay busy regardless of skew.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });

    drop(slots);
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn skewed_work_completes() {
        // Some items are much heavier; atomics hand-out keeps it correct.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..256).collect();
        let _ = parallel_map(&items, |&x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            x
        });
        let distinct = seen.lock().unwrap().len();
        if std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) > 1 {
            assert!(distinct >= 1, "at least one worker thread ran");
        }
    }
}
