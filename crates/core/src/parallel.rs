//! Scoped-thread parallel map with a process-wide thread budget.
//!
//! The figure harnesses sweep (scheme × constraint × background × level)
//! grids of independent cluster simulations, the optimizer fans out over
//! candidate network configurations, and `run_cluster` now fans out over
//! servers *inside* each candidate. Without coordination the nested
//! fan-outs would multiply (candidates × servers threads on a machine with
//! far fewer cores); instead every [`parallel_map`] leases helper threads
//! from one global budget and the **calling thread always participates**
//! in the work loop, so a nested call that finds the budget exhausted
//! degrades to a serial loop on its own thread — no oversubscription, no
//! deadlock, and results that never depend on how many helpers were
//! granted.
//!
//! No `unsafe` and no work-stealing machinery: std's scoped threads
//! guarantee the borrows stay valid (the pattern the Rust Atomics & Locks
//! guide recommends for fork-join workloads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sentinel: budget not overridden, use the default.
const UNSET: usize = usize::MAX;

/// Runtime override set by [`set_thread_budget`]; `UNSET` falls through to
/// `EPRONS_THREADS` / `available_parallelism`.
static BUDGET_OVERRIDE: AtomicUsize = AtomicUsize::new(UNSET);

/// Threads (including callers) currently leased out of the budget.
static LEASED: AtomicUsize = AtomicUsize::new(0);

fn default_budget() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("EPRONS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    })
}

/// The maximum number of threads (callers + helpers) the parallel maps
/// may occupy at once. Resolution order: [`set_thread_budget`] override,
/// then the `EPRONS_THREADS` environment variable, then
/// `available_parallelism()`.
pub fn thread_budget() -> usize {
    match BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        UNSET => default_budget(),
        n => n.max(1),
    }
}

/// Overrides the process-wide thread budget (`None` restores the
/// environment/default resolution). `set_thread_budget(Some(1))` forces
/// every [`parallel_map`] serial — the determinism tests run each seeded
/// simulation under budget 1 and budget N and require bit-identical
/// output.
pub fn set_thread_budget(budget: Option<usize>) {
    BUDGET_OVERRIDE.store(budget.map_or(UNSET, |n| n.max(1)), Ordering::Relaxed);
}

/// Worker threads (beyond the caller) a new `parallel_map` may spawn right
/// now: the remaining budget, capped at `want`.
fn lease_helpers(want: usize) -> usize {
    let budget = thread_budget();
    loop {
        let used = LEASED.load(Ordering::Relaxed);
        // The caller's own thread is only counted while inside a map, so
        // an outermost call sees the full budget; a nested call sees the
        // budget minus every thread its ancestors already occupy.
        let free = budget.saturating_sub(used + 1);
        let take = free.min(want);
        if take == 0 {
            return 0;
        }
        if LEASED
            .compare_exchange_weak(used, used + take, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return take;
        }
    }
}

fn return_helpers(n: usize) {
    if n > 0 {
        LEASED.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `f` must be `Sync` (it is shared across threads); items are
/// handed out atomically so threads stay busy regardless of skew. The
/// calling thread participates in the loop, so the map makes progress even
/// when the thread budget is exhausted by enclosing maps.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_range(items.len(), |i| f(&items[i]))
}

/// Index-space variant of [`parallel_map`]: applies `f` to `0..n` under
/// the same budget/lease rules, returning results in index order. The
/// staged cluster pipeline shards its per-server simulations with this —
/// the "items" are just server indices into context-owned slices, so
/// materialising an index `Vec` per candidate would be pure overhead.
pub fn parallel_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    // The caller covers one worker; lease at most n-1 helpers.
    let helpers = lease_helpers(n - 1);
    if helpers == 0 {
        return (0..n).map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();

    let work = |next: &AtomicUsize| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let r = f(i);
        **slots[i].lock().expect("slot lock poisoned") = Some(r);
    };

    std::thread::scope(|scope| {
        for _ in 0..helpers {
            scope.spawn(|| work(&next));
        }
        work(&next);
    });

    return_helpers(helpers);
    drop(slots);
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Budget-mutating tests share one lock so they never race each other
    /// (Rust runs tests in one process on separate threads).
    static BUDGET_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
        let _guard = BUDGET_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_budget(Some(budget));
        let r = f();
        set_thread_budget(None);
        r
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn range_matches_slice_map() {
        let items: Vec<usize> = (0..257).collect();
        assert_eq!(
            parallel_map_range(items.len(), |i| items[i] * 3),
            parallel_map(&items, |&x| x * 3)
        );
        assert!(parallel_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn skewed_work_completes() {
        // Some items are much heavier; atomics hand-out keeps it correct.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn actually_uses_threads_when_available() {
        use std::time::{Duration, Instant};
        // Force a budget of 2 so the test is meaningful on any machine
        // (including single-core CI runners): with one helper leased, the
        // two items rendezvous — the first one in blocks until the second
        // starts, which can only happen if a distinct thread picks it up.
        // A deadline (instead of a hard barrier) keeps the serial-fallback
        // path, possible when concurrent tests transiently hold the whole
        // budget, from deadlocking; it retries until a helper is granted.
        with_budget(2, || {
            for _attempt in 0..100 {
                let started = AtomicUsize::new(0);
                let ids = parallel_map(&[0u32, 1], |_| {
                    started.fetch_add(1, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_millis(200);
                    while started.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
                        std::thread::yield_now();
                    }
                    std::thread::current().id()
                });
                if ids[0] != ids[1] {
                    // Both items overlapped on two distinct threads: the
                    // multi-thread path demonstrably ran.
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            panic!("parallel_map never used a second thread under budget 2");
        });
    }

    #[test]
    fn budget_one_runs_serial_on_caller_thread() {
        with_budget(1, || {
            let caller = std::thread::current().id();
            let items: Vec<u32> = (0..16).collect();
            let ids = parallel_map(&items, |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == caller));
        });
    }

    #[test]
    fn nested_maps_respect_the_budget() {
        // Outer map may take the whole budget; inner maps must still
        // complete (degrading to serial), and the number of inner work
        // closures live at any instant must never exceed the budget —
        // that is the no-oversubscription guarantee, measured directly
        // with a high-water mark so concurrent tests can't perturb it.
        with_budget(3, || {
            let live = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            let outer: Vec<u32> = (0..6).collect();
            let results = parallel_map(&outer, |&x| {
                let inner: Vec<u32> = (0..5).collect();
                let inner_sum: u32 = parallel_map(&inner, |&y| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    let v = x * 10 + y;
                    live.fetch_sub(1, Ordering::SeqCst);
                    v
                })
                .iter()
                .sum();
                inner_sum
            });
            let expected: Vec<u32> = outer.iter().map(|&x| 5 * (x * 10) + 10).collect();
            assert_eq!(results, expected);
            let peak = peak.load(Ordering::SeqCst);
            assert!(
                peak <= 3,
                "budget 3 exceeded: {peak} inner closures ran concurrently"
            );
        });
    }

    #[test]
    fn helpers_are_returned_after_a_map() {
        use std::time::{Duration, Instant};
        with_budget(4, || {
            let before = LEASED.load(Ordering::Relaxed);
            let items: Vec<u32> = (0..32).collect();
            for _ in 0..5 {
                let _ = parallel_map(&items, |&x| x);
            }
            // Our leases are returned synchronously before parallel_map
            // returns; poll briefly so unrelated concurrent maps (which
            // also move the counter) can drain theirs.
            let deadline = Instant::now() + Duration::from_secs(5);
            while LEASED.load(Ordering::Relaxed) > before && Instant::now() < deadline {
                std::thread::yield_now();
            }
            assert!(
                LEASED.load(Ordering::Relaxed) <= before,
                "leases were not returned"
            );
        });
    }

    #[test]
    fn budget_resolution_order() {
        let _guard = BUDGET_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_budget(Some(7));
        assert_eq!(thread_budget(), 7);
        set_thread_budget(Some(0)); // clamped to 1
        assert_eq!(thread_budget(), 1);
        set_thread_budget(None);
        assert!(thread_budget() >= 1);
    }
}
