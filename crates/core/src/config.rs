//! Cluster-wide configuration: every calibrated constant in one place.

use eprons_net::{LatencyModel, NetworkPowerModel, TransitionModel};
use eprons_server::{CpuPowerModel, FreqLadder};

/// How the controller reacts when a switch dies mid-epoch (the
/// degradation ladder of `eprons_net::failure`, making §IV-B's
/// "backup paths" remark concrete).
#[derive(Debug, Clone)]
pub struct FailurePolicyConfig {
    /// Rung 1: try an in-epoch repair that re-routes only the victim
    /// flows, waking backup switches and charging their boot energy.
    pub attempt_repair: bool,
    /// Rung 2: if repair fails, re-consolidate the whole epoch with the
    /// failed switches masked out of every candidate.
    pub attempt_reconsolidate: bool,
    /// Mean time to failure for sampled schedules, minutes (default one
    /// week — failures are rare but not negligible).
    pub mttf_minutes: f64,
    /// Mean time to repair for sampled schedules, minutes.
    pub mttr_minutes: f64,
    /// Switch transition overheads used to price repairs (§IV-B's
    /// measured 72.52 s power-on time).
    pub transition: TransitionModel,
}

impl Default for FailurePolicyConfig {
    fn default() -> Self {
        FailurePolicyConfig {
            attempt_repair: true,
            attempt_reconsolidate: true,
            mttf_minutes: 10_080.0,
            mttr_minutes: 30.0,
            transition: TransitionModel::default(),
        }
    }
}

/// Hysteresis on epoch-boundary switch transitions (the online
/// controller's flap damper).
///
/// The epoch-batch day loop re-decides every epoch from scratch, so a
/// demand point sitting on a candidate boundary toggles switches each
/// epoch even though [`TransitionModel`] prices every toggle. Under
/// hysteresis the controller only commits a reconfiguration when the
/// priced transition energy is recovered within `payback_horizon_epochs`
/// (the projected saving `saving_w × horizon` must exceed
/// `margin × transition_energy_j`), and every switch a transition
/// toggles enters a `cooldown_epochs`-epoch quarantine during which
/// further toggles of that switch are held. Holding is never allowed to
/// break the SLA: when the held configuration is infeasible and the
/// optimizer's pick is feasible, the controller switches regardless.
#[derive(Debug, Clone)]
pub struct HysteresisConfig {
    /// Epochs over which a transition's energy must pay for itself.
    pub payback_horizon_epochs: usize,
    /// Per-switch quarantine after a toggle, epochs.
    pub cooldown_epochs: usize,
    /// Multiplier on the priced transition energy (>1 = more reluctant).
    pub margin: f64,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig {
            payback_horizon_epochs: 3,
            cooldown_epochs: 2,
            margin: 1.0,
        }
    }
}

/// Temporal deferral of latency-tolerant background flows into demand
/// troughs ("Dynamic Deferral of Workload for Capacity Provisioning in
/// Data Centers", PAPERS.md).
///
/// Background (elephant) traffic above `defer_threshold` of link
/// capacity is shaved into a bounded queue — at most `max_defer_fraction`
/// of the epoch's demand, and only while the queue holds less than
/// `queue_cap_mbps_min` megabit-minutes. Each enqueued slab carries a
/// slack budget of `slack_epochs`; the queue drains greedily (FIFO)
/// whenever demand sits below `drain_headroom`, and slabs that outlive
/// their slack are dropped (counted, journaled, and conserved by
/// `obsctl audit`: enqueued == drained + dropped).
#[derive(Debug, Clone)]
pub struct DeferralConfig {
    /// Background utilization above which demand is shaved into the queue.
    pub defer_threshold: f64,
    /// Background utilization the drain path is allowed to fill up to.
    pub drain_headroom: f64,
    /// Largest fraction of an epoch's background demand that may defer.
    pub max_defer_fraction: f64,
    /// Queue bound, megabit-minutes of deferred traffic.
    pub queue_cap_mbps_min: f64,
    /// Epochs a deferred slab may wait before it is dropped.
    pub slack_epochs: usize,
}

impl Default for DeferralConfig {
    fn default() -> Self {
        DeferralConfig {
            defer_threshold: 0.35,
            drain_headroom: 0.30,
            max_defer_fraction: 0.5,
            // Two utilization-epochs at a 1 Gbps link and 60-minute
            // epochs: enough to shave both diurnal background peaks
            // without becoming an unbounded sink for dropped work.
            queue_cap_mbps_min: 120_000.0,
            slack_epochs: 12,
        }
    }
}

/// The online streaming controller's knobs: hysteresis on switch
/// transitions and workload deferral, each independently optional.
/// `OnlineConfig::default()` leaves both off (sequential streaming only);
/// [`OnlineConfig::enabled`] turns both on with their default tuning.
#[derive(Debug, Clone, Default)]
pub struct OnlineConfig {
    /// Transition hysteresis; `None` commits every optimizer pick.
    pub hysteresis: Option<HysteresisConfig>,
    /// Background-flow deferral; `None` admits all demand immediately.
    pub deferral: Option<DeferralConfig>,
}

impl OnlineConfig {
    /// Both mechanisms on, default tuning.
    pub fn enabled() -> Self {
        OnlineConfig {
            hysteresis: Some(HysteresisConfig::default()),
            deferral: Some(DeferralConfig::default()),
        }
    }
}

/// Day-scoped evaluation semantics: one scenario context per *day*
/// instead of one per epoch.
///
/// Under day scope the controller evaluates every epoch at a **constant
/// master seed** (the day seed, instead of a per-epoch derivation) and
/// quantizes demand onto the warm-start grid (5 % utilization steps), so
/// adjacent epochs at the same operating point present bit-identical
/// scenario specs. That is what makes cross-epoch reuse sound *and*
/// profitable: the [`crate::scenario::DayContext`] revives whole
/// contexts (plan cache included), the pod-solve cache survives demand
/// changes behind its flow fingerprint, and the server-eval memo in
/// `eprons-server` short-circuits repeated per-ISN DVFS runs.
///
/// These semantics hold for the *rebuild baseline too*: a day-scoped
/// run with `incremental: false` rebuilds the context every epoch but
/// visits the same operating points, so the incremental path is
/// bit-identical to it (the replay harness pins
/// `day_total_energy_j` via `f64::to_bits`). `None` on
/// [`crate::DayConfig::day_scope`] keeps the legacy per-epoch-seed
/// behavior and every historical golden.
#[derive(Debug, Clone)]
pub struct DayScopeConfig {
    /// Reuse contexts/caches across epochs (`true`) or rebuild per epoch
    /// while keeping day-scope semantics (`false`, the baseline the
    /// speedup is measured against).
    pub incremental: bool,
    /// Most contexts the day cache may hold (LRU beyond this).
    pub max_slots: usize,
}

impl Default for DayScopeConfig {
    fn default() -> Self {
        DayScopeConfig {
            incremental: true,
            // A day visits one operating point per distinct (quantized
            // load, quantized background) pair — a few dozen at most.
            max_slots: 32,
        }
    }
}

/// Which consolidation architecture `GreedyK` network plans run.
///
/// `Monolithic` is the flat greedy over all flows — the differential
/// oracle. `PodDecomposed` solves each pod's intra traffic locally
/// (parallel across pods) and stitches inter-pod flows at the core
/// layer, falling back to monolithic whenever the decomposition cannot
/// place everything. `Auto` picks per fabric size: small trees stay
/// monolithic (bit-stable with historical goldens), large trees
/// decompose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsolidateStrategy {
    /// Flat greedy consolidation over the whole flow set.
    Monolithic,
    /// Pod-local solves stitched at the core layer.
    PodDecomposed,
    /// `PodDecomposed` for k ≥ 12 fabrics, `Monolithic` below.
    #[default]
    Auto,
}

impl ConsolidateStrategy {
    /// Resolves `Auto` for a k-ary fat-tree.
    pub fn effective(self, fat_tree_k: usize) -> ConsolidateStrategy {
        match self {
            ConsolidateStrategy::Auto => {
                if fat_tree_k >= 12 {
                    ConsolidateStrategy::PodDecomposed
                } else {
                    ConsolidateStrategy::Monolithic
                }
            }
            other => other,
        }
    }

    /// Stable name for reports and bench schemas.
    pub fn name(self) -> &'static str {
        match self {
            ConsolidateStrategy::Monolithic => "monolithic",
            ConsolidateStrategy::PodDecomposed => "pod_decomposed",
            ConsolidateStrategy::Auto => "auto",
        }
    }
}

impl std::str::FromStr for ConsolidateStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "monolithic" | "mono" => Ok(ConsolidateStrategy::Monolithic),
            "pod_decomposed" | "pod" => Ok(ConsolidateStrategy::PodDecomposed),
            "auto" => Ok(ConsolidateStrategy::Auto),
            other => Err(format!(
                "unknown consolidate strategy {other:?} (expected monolithic|pod_decomposed|auto)"
            )),
        }
    }
}

/// The SLA split between network and servers (paper §V-B2: "30 ms
/// constraint (25 ms server budget and 5 ms network budget)").
#[derive(Debug, Clone)]
pub struct SlaConfig {
    /// Server compute budget, seconds.
    pub server_budget_s: f64,
    /// Network budget, seconds (request + reply combined).
    pub network_budget_s: f64,
    /// Fraction of the network budget attributed to the request direction
    /// (only request slack is transferred to the server, §IV-C).
    pub request_fraction: f64,
    /// SLA percentile (0.95).
    pub percentile: f64,
}

impl Default for SlaConfig {
    fn default() -> Self {
        SlaConfig {
            server_budget_s: 25.0e-3,
            network_budget_s: 5.0e-3,
            request_fraction: 0.5,
            percentile: 0.95,
        }
    }
}

impl SlaConfig {
    /// The end-to-end tail-latency constraint.
    pub fn total_s(&self) -> f64 {
        self.server_budget_s + self.network_budget_s
    }

    /// Miss-rate budget implied by the percentile (5 % at p95).
    pub fn miss_budget(&self) -> f64 {
        1.0 - self.percentile
    }

    /// Network budget for the request direction.
    pub fn request_budget_s(&self) -> f64 {
        self.network_budget_s * self.request_fraction
    }

    /// An SLA with the same structure but a different total constraint:
    /// the network budget keeps its size, the server gets the rest
    /// (how Figs. 12b and 13 sweep the constraint).
    pub fn with_total(&self, total_s: f64) -> SlaConfig {
        SlaConfig {
            server_budget_s: (total_s - self.network_budget_s).max(1.0e-3),
            ..self.clone()
        }
    }
}

/// Everything the cluster simulator needs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Fat-tree arity (4 → 16 servers, 20 switches).
    pub fat_tree_k: usize,
    /// Link capacity, Mbps (1 Gbps).
    pub link_capacity_mbps: f64,
    /// Safety margin subtracted from usable link capacity, Mbps.
    pub safety_margin_mbps: f64,
    /// Per-(aggregator, ISN) query-traffic demand, Mbps.
    pub query_flow_mbps: f64,
    /// SLA split.
    pub sla: SlaConfig,
    /// DVFS ladder.
    pub ladder: FreqLadder,
    /// CPU power model.
    pub cpu: CpuPowerModel,
    /// Network power model.
    pub net_power: NetworkPowerModel,
    /// Utilization→latency model.
    pub latency: LatencyModel,
    /// Link-utilization threshold above which TimeTrader's congestion
    /// signal (ECN/queue build-up) withdraws its network slack.
    pub congestion_threshold: f64,
    /// Service-time log size used to fit the work PMF.
    pub service_log_samples: usize,
    /// Work-PMF resolution (bins).
    pub work_pmf_bins: usize,
    /// Switch-failure degradation policy.
    pub failure: FailurePolicyConfig,
    /// Consolidation architecture for `GreedyK` network plans.
    pub consolidate_strategy: ConsolidateStrategy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            fat_tree_k: 4,
            link_capacity_mbps: 1000.0,
            safety_margin_mbps: 50.0,
            query_flow_mbps: 10.0,
            sla: SlaConfig::default(),
            ladder: FreqLadder::paper_default(),
            cpu: CpuPowerModel::default(),
            net_power: NetworkPowerModel::default(),
            latency: LatencyModel::default(),
            congestion_threshold: 0.7,
            service_log_samples: 30_000,
            work_pmf_bins: 160,
            failure: FailurePolicyConfig::default(),
            consolidate_strategy: ConsolidateStrategy::default(),
        }
    }
}

impl ClusterConfig {
    /// Number of servers (fat-tree hosts).
    pub fn num_servers(&self) -> usize {
        let half = self.fat_tree_k / 2;
        self.fat_tree_k * half * half
    }

    /// The cluster-wide query rate that produces a target per-ISN
    /// utilization, given the mean service time at `f_max`.
    ///
    /// Each query occupies every server except its aggregator, so the
    /// per-server arrival rate is `rate × (n−1)/n`.
    pub fn query_rate_for_utilization(&self, util: f64, mean_service_s: f64) -> f64 {
        let n = self.num_servers() as f64;
        util / mean_service_s * n / (n - 1.0)
    }

    /// "No power management" total power: every switch/link on, every core
    /// busy-equivalent power at the measured average — used as the savings
    /// baseline denominator in Fig. 15(b). The *measured* no-PM run is
    /// preferred where available; this is the static budget bound.
    pub fn peak_total_power_w(&self) -> f64 {
        let servers = self.num_servers() as f64 * self.cpu.server_peak_w(self.ladder.max());
        // Full network: computed by callers with the topology at hand;
        // here we only account servers. See accounting::PowerBreakdown.
        servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_servers(), 16);
        assert!((c.sla.total_s() - 30.0e-3).abs() < 1e-12);
        assert!((c.sla.miss_budget() - 0.05).abs() < 1e-12);
        assert!((c.sla.request_budget_s() - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn with_total_preserves_network_budget() {
        let sla = SlaConfig::default().with_total(22.0e-3);
        assert!((sla.network_budget_s - 5.0e-3).abs() < 1e-12);
        assert!((sla.server_budget_s - 17.0e-3).abs() < 1e-12);
        assert!((sla.total_s() - 22.0e-3).abs() < 1e-12);
    }

    #[test]
    fn query_rate_accounts_for_aggregator_exclusion() {
        let c = ClusterConfig::default();
        // 30% util at 5 ms mean: per-server rate 60/s; cluster rate
        // 60 × 16/15 = 64/s.
        let r = c.query_rate_for_utilization(0.3, 5.0e-3);
        assert!((r - 64.0).abs() < 1e-9);
    }

    #[test]
    fn strategy_auto_resolves_by_fabric_size() {
        assert_eq!(
            ConsolidateStrategy::Auto.effective(4),
            ConsolidateStrategy::Monolithic
        );
        assert_eq!(
            ConsolidateStrategy::Auto.effective(8),
            ConsolidateStrategy::Monolithic
        );
        assert_eq!(
            ConsolidateStrategy::Auto.effective(12),
            ConsolidateStrategy::PodDecomposed
        );
        assert_eq!(
            ConsolidateStrategy::Auto.effective(16),
            ConsolidateStrategy::PodDecomposed
        );
        // Explicit choices pass through untouched.
        assert_eq!(
            ConsolidateStrategy::Monolithic.effective(24),
            ConsolidateStrategy::Monolithic
        );
        assert_eq!(
            ConsolidateStrategy::PodDecomposed.effective(4),
            ConsolidateStrategy::PodDecomposed
        );
        for s in ["monolithic", "pod_decomposed", "auto", "pod", "mono"] {
            let parsed: ConsolidateStrategy = s.parse().unwrap();
            let _ = parsed.name();
        }
        assert!("bogus".parse::<ConsolidateStrategy>().is_err());
    }

    #[test]
    fn online_defaults_are_coherent() {
        let o = OnlineConfig::enabled();
        let h = o.hysteresis.unwrap();
        let d = o.deferral.unwrap();
        assert!(h.payback_horizon_epochs >= 1 && h.margin > 0.0);
        // Draining must stop below the defer threshold or the controller
        // would re-defer what it just drained, ping-ponging the queue.
        assert!(d.drain_headroom <= d.defer_threshold);
        assert!(d.max_defer_fraction > 0.0 && d.max_defer_fraction <= 1.0);
        assert!(d.queue_cap_mbps_min > 0.0 && d.slack_epochs >= 1);
        // Off by default: the epoch-batch day loop stays the default path.
        let off = OnlineConfig::default();
        assert!(off.hysteresis.is_none() && off.deferral.is_none());
    }

    #[test]
    fn peak_power_scale() {
        let c = ClusterConfig::default();
        // 16 servers × 72.8 W = 1164.8 W of server budget.
        assert!((c.peak_total_power_w() - 1164.8).abs() < 0.1);
    }
}
