//! The staged cluster-evaluation pipeline.
//!
//! The joint optimizer (§IV) and the 10-minute SDN control loop (§IV-B)
//! evaluate the *same* scenario — one (config, seed, load) point — under
//! many candidate network configurations. The monolithic `run_cluster`
//! used to rebuild the fat-tree, the Xapian service model, and the
//! query/background workloads from scratch for every candidate; this
//! module splits one evaluation into four explicit stages so the
//! per-candidate cost is the delta, not the world:
//!
//! 1. [`ScenarioContext::build`] — once per [`ScenarioSpec`]: topology,
//!    service model, query arrivals, background + query flow sets, and
//!    the RNG snapshots every candidate replays. Heavy state lives behind
//!    one `Arc`, so contexts clone cheaply across threads and constraint
//!    sweeps ([`ScenarioContext::with_sla`]).
//! 2. [`NetworkPlan::build`] — per [`ConsolidationSpec`]: consolidation
//!    plus per-sub-query network latency sampling along the assigned
//!    paths.
//! 3. [`ServerEvaluation::run`] — per (plan, [`ServerScheme`]): the
//!    per-ISN DVFS simulations with the plan's request slack folded into
//!    each request's compute budget.
//! 4. [`crate::accounting::assemble`] — power and tail-latency accounting
//!    across both layers, producing a [`ClusterRunResult`].
//!
//! **Bit-identity contract.** The staged path produces results identical
//! to the monolithic path bit for bit, at any thread count and whether a
//! context is fresh or shared. The RNG streams make this work: the master
//! RNG's five forks are drawn in the original order during `build`, the
//! unconsumed network-latency stream (fork 4) is *stored* and cloned by
//! every `NetworkPlan`, and the per-server seeds (fork 5) are drawn
//! serially at build time — exactly the streams the monolith consumed per
//! call. `crates/core/tests/determinism.rs` pins this with a golden
//! equality test over every `ServerScheme` × `AggregationLevel` pair.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use eprons_net::consolidate::pod::{
    consolidate_pod_decomposed, PodDecompOptions, PodRunner, PodSolveCache,
};
use eprons_net::consolidate::AggregationRouter;
use eprons_net::flow::FlowSet;
use eprons_net::{
    Assignment, ConsolidationConfig, Consolidator, FlowClass, FlowId, GreedyConsolidator, PathArena,
};
use eprons_server::policy::DvfsPolicy;
use eprons_server::request::budget_with_network_slack;
use eprons_server::{
    service_fingerprint, serveval_memo_enabled, simulate_core_memoized, ArrivalSpec, AvgVpPolicy,
    CoreSimConfig, DeepSleepPolicy, MaxFreqPolicy, MaxVpPolicy, ServiceModel, TimeTraderPolicy,
    VpEngine,
};
use eprons_sim::SimRng;
use eprons_topo::{AggregationLevel, FatTree, NodeId};
use eprons_workload::background::background_flows;
use eprons_workload::{xapian_like_samples, Query, QueryGenerator};

use crate::cluster::{ClusterError, ClusterRun, ClusterRunResult, ConsolidationSpec, ServerScheme};
use crate::config::{ClusterConfig, ConsolidateStrategy, SlaConfig};
use crate::parallel::{parallel_map, parallel_map_range};

/// Process-wide switch for the per-context stage-2 plan memo. On by
/// default; the perf bench's cold baseline turns it off to measure the
/// pre-memo pipeline. Caching is invisible to results either way — a
/// [`NetworkPlan`] is a pure function of (context, candidate, mask), so a
/// memo hit returns the bit-identical plan a rebuild would produce.
static PLAN_CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the stage-2 plan memo process-wide (default: on).
///
/// Results never change — only whether repeated evaluations of the same
/// (candidate, mask) against one context pay consolidation and latency
/// sampling again. Exists for cold-baseline measurement, not correctness.
pub fn set_plan_cache_enabled(on: bool) {
    PLAN_CACHE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the stage-2 plan memo is currently serving hits.
pub fn plan_cache_enabled() -> bool {
    PLAN_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// Process-wide switch for the per-context *result* memo: the full
/// [`ClusterRunResult`] of one (scheme, candidate, mask) evaluation. Off
/// by default — a result cache only pays when the same operating point
/// recurs against the same context, which is exactly the day-scoped
/// incremental replay ([`crate::DayContext`] revives a slot's context,
/// and with it every result already evaluated at that operating point).
/// The day controller turns it on around an incremental day and back off
/// after. Like the plan memo it is invisible to results: an evaluation is
/// a pure function of (context, scheme, candidate, mask), so a hit
/// returns the bit-identical result a re-run would produce.
static EVAL_CACHE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the evaluation-result memo process-wide
/// (default: off). Results never change — only whether repeated
/// evaluations of the same (scheme, candidate, mask) against one context
/// pay stages 2–4 again.
pub fn set_eval_cache_enabled(on: bool) {
    EVAL_CACHE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the evaluation-result memo is currently serving hits.
pub fn eval_cache_enabled() -> bool {
    EVAL_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// Index of a scheme for cache keying (fieldless enum — every scheme
/// parameter lives in [`ClusterConfig`], fixed per context).
fn scheme_index(scheme: ServerScheme) -> u8 {
    match scheme {
        ServerScheme::NoPowerManagement => 0,
        ServerScheme::Rubik => 1,
        ServerScheme::RubikPlus => 2,
        ServerScheme::TimeTrader => 3,
        ServerScheme::EpronsServer => 4,
        ServerScheme::DeepSleep => 5,
    }
}

/// Memo key for one stage-2 plan: the candidate collapsed to raw bits
/// (discriminant + level index / `K` bits), the effective consolidation
/// architecture (only `GreedyK` plans depend on it — normalized to 0
/// elsewhere so preset plans keep hitting across strategy changes), plus
/// the normalized mask.
type PlanKey = (u8, u64, u8, Vec<usize>);

/// `mask` must already be sorted and deduplicated.
fn plan_key(spec: ConsolidationSpec, strategy: ConsolidateStrategy, mask: &[NodeId]) -> PlanKey {
    let (tag, bits, strat) = match spec {
        ConsolidationSpec::AllOn => (0u8, 0u64, 0u8),
        ConsolidationSpec::Level(l) => (1, l as u64, 0),
        ConsolidationSpec::GreedyK(k) => (
            2,
            k.to_bits(),
            match strategy {
                ConsolidateStrategy::Monolithic => 0,
                ConsolidateStrategy::PodDecomposed => 1,
                ConsolidateStrategy::Auto => unreachable!("strategy resolved before keying"),
            },
        ),
    };
    (tag, bits, strat, mask.iter().map(|n| n.0).collect())
}

/// Memo key for one full evaluation result: the scheme index over the
/// plan key (everything else an evaluation depends on is context state).
type EvalKey = (u8, PlanKey);

/// Memo value for one full evaluation: the result, or the error the
/// evaluation deterministically fails with.
type EvalOutcome = Result<ClusterRunResult, ClusterError>;

/// Memo key for one candidate power floor: (scheme, candidate tag,
/// candidate bits, mask). `GreedyK` collapses its `K` bits to 0 — the
/// bound counts mandatory elements only, so every rung of a K ladder
/// shares one floor (mirroring the optimizer's per-ladder sharing).
type FloorKey = (u8, u8, u64, Vec<usize>);

/// The axes a [`ScenarioContext`] is keyed by: everything in a
/// [`ClusterRun`] except the per-candidate network configuration and the
/// per-evaluation server scheme (neither feeds the workload build).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Target per-ISN utilization (drives the query rate).
    pub server_utilization: f64,
    /// Background traffic as a fraction of link capacity (0 disables).
    pub background_util: f64,
    /// Simulated seconds of query arrivals *measured*.
    pub duration_s: f64,
    /// Warmup seconds simulated before measurement starts.
    pub warmup_s: f64,
    /// Master seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The scenario axes of a [`ClusterRun`] (its scheme and consolidation
    /// are per-evaluation inputs, not scenario state).
    pub fn of_run(run: &ClusterRun) -> ScenarioSpec {
        ScenarioSpec {
            server_utilization: run.server_utilization,
            background_util: run.background_util,
            duration_s: run.duration_s,
            warmup_s: run.warmup_s,
            seed: run.seed,
        }
    }
}

/// The expensive immutable state of one scenario, built once and shared
/// (via `Arc`) by every candidate evaluation against it.
#[derive(Debug)]
pub(crate) struct ScenarioData {
    /// Behind an `Arc` (like `arena`) so [`ScenarioContext::rebind_demand`]
    /// can share the topology across the demand-rebound contexts of one
    /// day instead of rebuilding or deep-copying it per epoch.
    pub(crate) ft: Arc<FatTree>,
    /// Per-pair candidate paths, enumerated once. Every consolidator the
    /// candidate ladder runs asks the same path questions; the arena
    /// answers from the table instead of re-walking the graph per
    /// candidate (it returns exactly what `ft` would, so results are
    /// unchanged).
    pub(crate) arena: Arc<PathArena<FatTree>>,
    /// Memoized stage-2 plans keyed by (candidate, mask). A plan is a
    /// pure function of those inputs given this context (the latency RNG
    /// is cloned per build), so serving a cached `Arc` is bit-identical
    /// to rebuilding. Shared across context clones via the `Arc` above.
    pub(crate) plan_cache: Mutex<HashMap<PlanKey, Arc<NetworkPlan>>>,
    /// Memoized stage-2–4 outcomes keyed by (scheme, candidate, mask) —
    /// the whole [`ClusterRunResult`] of one operating-point evaluation,
    /// or the [`ClusterError`] it failed with. Failures are cached
    /// deliberately: an unroutable candidate (e.g. GreedyK(2) at a peak
    /// slot) pays the full consolidation attempt before it is rejected,
    /// and the day loop retries it every epoch otherwise. Only consulted
    /// while [`eval_cache_enabled`] (incremental days); a pure function
    /// of its key given this context, so hits are bit-identical to
    /// re-runs.
    pub(crate) eval_cache: Mutex<HashMap<EvalKey, Arc<EvalOutcome>>>,
    /// Memoized candidate power floors (pure, always on): the optimizer
    /// recomputes its pruning bounds every search otherwise, and at
    /// k ≥ 16 the GreedyK mandatory-element walk is the search's largest
    /// serial cost on a warm context.
    pub(crate) floor_cache: Mutex<HashMap<FloorKey, f64>>,
    pub(crate) hosts: Vec<NodeId>,
    pub(crate) service: Arc<ServiceModel>,
    pub(crate) mean_service_s: f64,
    /// `spec.warmup_s` clamped to ≥ 0 (what the stages measure from).
    pub(crate) warmup_s: f64,
    /// Warmup + measured duration: the arrival-generation horizon.
    pub(crate) horizon_s: f64,
    pub(crate) queries: Vec<Query>,
    /// Background elephants plus one latency-sensitive flow per ordered
    /// host pair (any server may aggregate, so query traffic exists
    /// between every pair).
    pub(crate) flows: FlowSet,
    /// Ordered host pair `a·n + b` → query-flow id, flat (`a == b` holds
    /// a sentinel that is never read). A plain table rather than a map:
    /// the latency-sampling hot loop indexes it ~n² times per plan.
    pub(crate) pair_flow: Vec<FlowId>,
    /// Round-0 pod-solve cache for the pod-decomposed consolidator,
    /// shared across the candidate ladder and failure masks, and — via
    /// [`ScenarioContext::rebind_demand`] — across the contexts of one
    /// day. Sound because the cache key carries a fingerprint of the
    /// flow set: entries are only served to passes over identical flows,
    /// even when rebound contexts carry different background demand.
    pub(crate) pod_cache: Arc<PodSolveCache>,
    /// Per-server DVFS-simulation seeds, drawn serially in index order.
    pub(crate) server_seeds: Vec<u64>,
    /// The *unconsumed* network-latency RNG (stream 4 of the master).
    /// Every [`NetworkPlan`] clones it, so each candidate replays exactly
    /// the stream the monolithic path drew for its own fresh build.
    pub(crate) net_rng: SimRng,
}

/// Stage 1: everything a scenario's candidate evaluations share.
///
/// Cloning is cheap (the built state sits behind one `Arc`); a clone can
/// cross threads or carry a different SLA ([`ScenarioContext::with_sla`]).
///
/// ```
/// use eprons_core::{ClusterConfig, ConsolidationSpec, ServerScheme};
/// use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
/// let cfg = ClusterConfig::default();
/// let spec = ScenarioSpec {
///     server_utilization: 0.2,
///     background_util: 0.1,
///     duration_s: 1.0,
///     warmup_s: 0.0,
///     seed: 1,
/// };
/// let ctx = ScenarioContext::build(&cfg, &spec);
/// // Candidates reuse the build; only consolidation + DVFS re-run.
/// let a = ctx.evaluate(ServerScheme::EpronsServer, ConsolidationSpec::AllOn).unwrap();
/// let b = ctx.evaluate(ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0)).unwrap();
/// assert!(b.active_switches <= a.active_switches);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioContext {
    pub(crate) cfg: ClusterConfig,
    pub(crate) spec: ScenarioSpec,
    pub(crate) data: Arc<ScenarioData>,
}

impl ScenarioContext {
    /// Builds the shared scenario state: fat-tree, service model, query
    /// and background workloads, flow set, and the per-candidate RNG
    /// snapshots.
    pub fn build(cfg: &ClusterConfig, spec: &ScenarioSpec) -> ScenarioContext {
        let _t = eprons_obs::Timer::scoped("core.scenario.build_s");
        let mut sp = eprons_obs::Span::enter("scenario.build");
        let obs_on = eprons_obs::enabled();

        // The master RNG's forks are drawn in the exact order the
        // monolithic `run_cluster` drew them, so every downstream stream
        // is bit-identical to the pre-staged path.
        let mut master = SimRng::seed_from_u64(spec.seed);
        let mut service_rng = master.fork(1);
        let mut query_rng = master.fork(2);
        let mut bg_rng = master.fork(3);
        let net_rng = master.fork(4);
        let mut server_seed_rng = master.fork(5);

        let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
        let arena = PathArena::build(ft.clone());
        let n = cfg.num_servers();
        let hosts = ft.hosts().to_vec();

        // --- Service-time model (the measured Xapian log, §V-A). ---
        let samples = xapian_like_samples(&mut service_rng, cfg.service_log_samples);
        let service =
            ServiceModel::from_time_samples(&samples, 0.2, cfg.ladder.max(), cfg.work_pmf_bins);
        let mean_service_s = service.mean_service_time(cfg.ladder.max());

        // --- Query workload (warmup + measured window). ---
        let warmup_s = spec.warmup_s.max(0.0);
        let horizon_s = warmup_s + spec.duration_s;
        let rate = cfg.query_rate_for_utilization(spec.server_utilization, mean_service_s);
        let generator = QueryGenerator::new(n);
        let queries = generator.generate(&mut query_rng, rate, horizon_s);

        // --- Flows (candidate-invariant; consolidation is per-plan). ---
        let mut flows = FlowSet::new();
        if spec.background_util > 0.0 {
            for bf in background_flows(
                &ft,
                &mut bg_rng,
                spec.background_util,
                cfg.link_capacity_mbps,
            ) {
                flows.add(bf.src, bf.dst, bf.demand_mbps, FlowClass::LatencyTolerant);
            }
        }
        let mut pair_flow: Vec<FlowId> = vec![FlowId(usize::MAX); n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let id = flows.add(
                        hosts[a],
                        hosts[b],
                        cfg.query_flow_mbps,
                        FlowClass::LatencySensitive,
                    );
                    pair_flow[a * n + b] = id;
                }
            }
        }

        // Per-server seeds, drawn serially before any fan-out (the stream
        // is candidate- and scheme-invariant, so it lives in the context).
        let server_seeds: Vec<u64> = (0..n)
            .map(|s| server_seed_rng.fork(s as u64).uniform().to_bits())
            .collect();

        if obs_on {
            eprons_obs::registry().counter("core.scenario.builds").inc();
            eprons_obs::record(eprons_obs::Event::ScenarioBuilt {
                seed: spec.seed,
                queries: queries.len() as u64,
                flows: flows.len() as u64,
                servers: n as u64,
            });
            sp.note(format!(
                "servers={n} queries={} flows={}",
                queries.len(),
                flows.len()
            ));
        }

        ScenarioContext {
            cfg: cfg.clone(),
            spec: spec.clone(),
            data: Arc::new(ScenarioData {
                ft: Arc::new(ft),
                arena: Arc::new(arena),
                plan_cache: Mutex::new(HashMap::new()),
                eval_cache: Mutex::new(HashMap::new()),
                floor_cache: Mutex::new(HashMap::new()),
                hosts,
                service: Arc::new(service),
                mean_service_s,
                warmup_s,
                horizon_s,
                queries,
                flows,
                pair_flow,
                pod_cache: Arc::new(PodSolveCache::new()),
                server_seeds,
                net_rng,
            }),
        }
    }

    /// The one shared entry point for deriving a context from a run
    /// template: `build` against [`ScenarioSpec::of_run`]. Every internal
    /// per-epoch or per-bench rebuild (optimizer, day controller, perf
    /// bench) routes through here so call sites cannot silently diverge
    /// on how the spec is derived from the template.
    pub fn for_template(cfg: &ClusterConfig, template: &ClusterRun) -> ScenarioContext {
        ScenarioContext::build(cfg, &ScenarioSpec::of_run(template))
    }

    /// Rebuilds only the demand-dependent state — query arrivals, the
    /// flow set, the per-pair flow table — for `spec`, sharing the
    /// demand-invariant state (topology, path arena, service model,
    /// per-server seeds, pod-solve cache) with `self`.
    ///
    /// Sound only when the master seed is unchanged: the shared state is
    /// a pure function of `(cfg, seed)`, and the demand streams are
    /// re-forked from a fresh master in exactly the order
    /// [`ScenarioContext::build`] forks them, so the rebound context is
    /// bit-identical to `build(cfg, spec)` (the day-incremental golden
    /// pins this). A different seed falls back to a full build.
    ///
    /// The pod-solve cache is *shared* with `self`: its key carries a
    /// fingerprint of the flow set, so entries are only ever served to
    /// consolidation passes over identical flows. The stage-2 plan cache
    /// starts empty — plans depend on the demand-dependent latency
    /// sampling.
    pub fn rebind_demand(&self, spec: &ScenarioSpec) -> ScenarioContext {
        if spec.seed != self.spec.seed {
            return ScenarioContext::build(&self.cfg, spec);
        }
        let _t = eprons_obs::Timer::scoped("core.scenario.rebind_s");
        let mut sp = eprons_obs::Span::enter("scenario.rebind");
        let obs_on = eprons_obs::enabled();
        let d = &*self.data;

        // Re-fork the demand streams in build order from a fresh master.
        // `fork` advances the parent, so the *sequence* of forks — not
        // the salt alone — is what reproduces `build`'s streams bit for
        // bit; the service and server-seed streams are drawn and
        // discarded because their products are shared.
        let mut master = SimRng::seed_from_u64(spec.seed);
        let _service_rng = master.fork(1);
        let mut query_rng = master.fork(2);
        let mut bg_rng = master.fork(3);
        let net_rng = master.fork(4);
        let _server_seed_rng = master.fork(5);

        let n = d.hosts.len();
        let warmup_s = spec.warmup_s.max(0.0);
        let horizon_s = warmup_s + spec.duration_s;
        let rate = self
            .cfg
            .query_rate_for_utilization(spec.server_utilization, d.mean_service_s);
        let queries = QueryGenerator::new(n).generate(&mut query_rng, rate, horizon_s);

        let mut flows = FlowSet::new();
        if spec.background_util > 0.0 {
            for bf in background_flows(
                &d.ft,
                &mut bg_rng,
                spec.background_util,
                self.cfg.link_capacity_mbps,
            ) {
                flows.add(bf.src, bf.dst, bf.demand_mbps, FlowClass::LatencyTolerant);
            }
        }
        let mut pair_flow: Vec<FlowId> = vec![FlowId(usize::MAX); n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let id = flows.add(
                        d.hosts[a],
                        d.hosts[b],
                        self.cfg.query_flow_mbps,
                        FlowClass::LatencySensitive,
                    );
                    pair_flow[a * n + b] = id;
                }
            }
        }

        if obs_on {
            eprons_obs::registry()
                .counter("core.scenario.rebinds")
                .inc();
            sp.note(format!(
                "servers={n} queries={} flows={}",
                queries.len(),
                flows.len()
            ));
        }

        ScenarioContext {
            cfg: self.cfg.clone(),
            spec: spec.clone(),
            data: Arc::new(ScenarioData {
                ft: Arc::clone(&d.ft),
                arena: Arc::clone(&d.arena),
                plan_cache: Mutex::new(HashMap::new()),
                eval_cache: Mutex::new(HashMap::new()),
                floor_cache: Mutex::new(HashMap::new()),
                hosts: d.hosts.clone(),
                service: Arc::clone(&d.service),
                mean_service_s: d.mean_service_s,
                warmup_s,
                horizon_s,
                queries,
                flows,
                pair_flow,
                pod_cache: Arc::clone(&d.pod_cache),
                server_seeds: d.server_seeds.clone(),
                net_rng,
            }),
        }
    }

    /// The configuration this scenario was built under.
    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The scenario axes this context was built for.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Number of servers (fat-tree hosts) in the scenario.
    pub fn num_servers(&self) -> usize {
        self.data.hosts.len()
    }

    /// Number of generated queries (warmup + measured window).
    pub fn query_count(&self) -> usize {
        self.data.queries.len()
    }

    /// Mean service time at `f_max` under the fitted service model.
    pub fn mean_service_s(&self) -> f64 {
        self.data.mean_service_s
    }

    /// A context sharing all built state but evaluating under a different
    /// SLA. Sound because the SLA feeds only the per-candidate stages
    /// (request budgets, feasibility) and never the cached build
    /// (topology, service model, workloads) — the constraint sweeps of
    /// Figs. 12–13 reuse one build across every constraint.
    pub fn with_sla(&self, sla: SlaConfig) -> ScenarioContext {
        let mut cfg = self.cfg.clone();
        cfg.sla = sla;
        ScenarioContext {
            cfg,
            spec: self.spec.clone(),
            data: Arc::clone(&self.data),
        }
    }

    /// Evaluates one (scheme, network-candidate) pair against the shared
    /// scenario: stages 2–4 of the pipeline. Bit-identical to
    /// [`crate::run_cluster`] with the same inputs.
    pub fn evaluate(
        &self,
        scheme: ServerScheme,
        consolidation: ConsolidationSpec,
    ) -> Result<ClusterRunResult, ClusterError> {
        self.evaluate_masked(scheme, consolidation, &[])
    }

    /// [`ScenarioContext::evaluate`] with failed switches masked out of
    /// the candidate's consolidation (§IV-B backup-path handling): no
    /// path may cross an excluded switch and presets leave them dark.
    /// With an empty mask this is `evaluate` exactly.
    pub fn evaluate_masked(
        &self,
        scheme: ServerScheme,
        consolidation: ConsolidationSpec,
        excluded: &[NodeId],
    ) -> Result<ClusterRunResult, ClusterError> {
        let obs_on = eprons_obs::enabled();
        let _t = eprons_obs::Timer::scoped("core.cluster.run_s");
        let mut sp = eprons_obs::Span::enter("evaluate");
        if obs_on {
            sp.note(format!(
                "scheme={} spec={}",
                scheme.name(),
                consolidation.label()
            ));
            eprons_obs::registry().counter("core.cluster.runs").inc();
            eprons_obs::record(eprons_obs::Event::RunTag {
                scheme: scheme.name().to_string(),
                consolidation: consolidation.label(),
                seed: self.spec.seed,
            });
        }
        // Result memo (incremental days only): the whole evaluation —
        // including a deterministic failure — is a pure function of
        // (scheme, candidate, mask) given this context, so a repeat
        // operating point skips stages 2–4 outright. Errors are cached
        // too: an infeasible candidate pays its full consolidation
        // attempt before rejection, and the day loop re-offers it every
        // epoch. The lock is never held across an evaluation (same
        // discipline as the plan memo: racing double-evaluations insert
        // identical bits, harmlessly).
        let mut cached: Option<EvalOutcome> = None;
        let mut miss_key: Option<EvalKey> = None;
        if eval_cache_enabled() {
            let mut mask = excluded.to_vec();
            mask.sort_unstable();
            mask.dedup();
            let key = (
                scheme_index(scheme),
                plan_key(consolidation, self.effective_strategy(), &mask),
            );
            let hit = self
                .data
                .eval_cache
                .lock()
                .expect("eval cache poisoned")
                .get(&key)
                .cloned();
            if obs_on {
                let name = if hit.is_some() {
                    "core.evalcache.hits"
                } else {
                    "core.evalcache.misses"
                };
                eprons_obs::registry().counter(name).inc();
            }
            match hit {
                Some(outcome) => cached = Some((*outcome).clone()),
                None => miss_key = Some(key),
            }
        }
        let result = match cached {
            Some(outcome) => outcome?,
            None => {
                let outcome: EvalOutcome =
                    self.plan_masked(consolidation, excluded).map(|plan| {
                        let eval = ServerEvaluation::run(self, &plan, scheme);
                        crate::accounting::assemble(self, &plan, &eval)
                    });
                if let Some(key) = miss_key {
                    self.data
                        .eval_cache
                        .lock()
                        .expect("eval cache poisoned")
                        .insert(key, Arc::new(outcome.clone()));
                }
                outcome?
            }
        };
        if obs_on {
            let reg = eprons_obs::registry();
            let edges = eprons_obs::DURATION_EDGES_S;
            reg.histogram("core.cluster.server_p95_s", edges)
                .observe(result.server_latency.p95_s);
            reg.histogram("core.cluster.e2e_p95_s", edges)
                .observe(result.e2e_latency.p95_s);
            reg.histogram("core.cluster.query_e2e_p95_s", edges)
                .observe(result.query_e2e_latency.p95_s);
            reg.gauge("core.cluster.total_w")
                .set(result.breakdown.total_w());
        }
        Ok(result)
    }

    /// Stage 2 through the per-context memo: returns the cached plan for
    /// (candidate, mask) or builds and caches it. Build failures are not
    /// cached (they are cheap — consolidation rejects before the
    /// expensive latency sampling). The lock is never held across a
    /// build, so parallel candidate fan-outs only contend on the lookup;
    /// a racing double-build inserts the same bits twice, harmlessly.
    pub(crate) fn plan_masked(
        &self,
        consolidation: ConsolidationSpec,
        excluded: &[NodeId],
    ) -> Result<Arc<NetworkPlan>, ClusterError> {
        let mut mask = excluded.to_vec();
        mask.sort_unstable();
        mask.dedup();
        if !plan_cache_enabled() {
            return NetworkPlan::build_masked(self, consolidation, &mask).map(Arc::new);
        }
        let key = plan_key(consolidation, self.effective_strategy(), &mask);
        let hit = self
            .data
            .plan_cache
            .lock()
            .expect("plan cache poisoned")
            .get(&key)
            .cloned();
        if let Some(plan) = hit {
            if eprons_obs::enabled() {
                eprons_obs::registry().counter("core.plan_cache.hits").inc();
            }
            return Ok(plan);
        }
        let plan = Arc::new(NetworkPlan::build_masked(self, consolidation, &mask)?);
        if eprons_obs::enabled() {
            eprons_obs::registry()
                .counter("core.plan_cache.misses")
                .inc();
        }
        self.data
            .plan_cache
            .lock()
            .expect("plan cache poisoned")
            .insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// The consolidation architecture `GreedyK` plans of this context
    /// run, with `Auto` resolved against the fabric size.
    pub fn effective_strategy(&self) -> ConsolidateStrategy {
        self.cfg.consolidate_strategy.effective(self.cfg.fat_tree_k)
    }

    /// Drops every memoized stage-2 plan in this context (cold-baseline
    /// hook for the perf bench; results are unaffected either way).
    pub fn clear_plan_cache(&self) {
        self.data
            .plan_cache
            .lock()
            .expect("plan cache poisoned")
            .clear();
    }

    /// Number of stage-2 plans currently memoized.
    pub fn plan_cache_len(&self) -> usize {
        self.data
            .plan_cache
            .lock()
            .expect("plan cache poisoned")
            .len()
    }

    /// Number of full evaluation results currently memoized.
    pub fn eval_cache_len(&self) -> usize {
        self.data
            .eval_cache
            .lock()
            .expect("eval cache poisoned")
            .len()
    }

    /// [`crate::optimizer::candidate_power_floor_w`] through the
    /// per-context floor memo. The floor is a pure function of (scheme,
    /// candidate, mask) given this context's flow set, so caching is
    /// invisible to the optimizer's pruning decisions; it just stops a
    /// revived day-cache slot from re-walking the arena for bounds it
    /// has already computed. `GreedyK` keys collapse `K` (the bound
    /// counts mandatory elements only, shared by the whole ladder).
    pub(crate) fn floor_cached(
        &self,
        scheme: ServerScheme,
        spec: ConsolidationSpec,
        excluded: &[NodeId],
    ) -> f64 {
        let (tag, bits) = match spec {
            ConsolidationSpec::AllOn => (0u8, 0u64),
            ConsolidationSpec::Level(l) => (1, l as u64),
            ConsolidationSpec::GreedyK(_) => (2, 0),
        };
        let mut mask: Vec<usize> = excluded.iter().map(|n| n.0).collect();
        mask.sort_unstable();
        mask.dedup();
        let key: FloorKey = (scheme_index(scheme), tag, bits, mask);
        if let Some(&w) = self
            .data
            .floor_cache
            .lock()
            .expect("floor cache poisoned")
            .get(&key)
        {
            return w;
        }
        let w = crate::optimizer::candidate_power_floor_w(self, scheme, spec, excluded);
        self.data
            .floor_cache
            .lock()
            .expect("floor cache poisoned")
            .insert(key, w);
        w
    }

    /// Fans `candidates` out over the thread budget, evaluating each one
    /// against this shared context (the optimizer's inner loop). Results
    /// come back in candidate order.
    pub fn evaluate_candidates(
        &self,
        scheme: ServerScheme,
        candidates: &[ConsolidationSpec],
    ) -> Vec<(ConsolidationSpec, Result<ClusterRunResult, ClusterError>)> {
        self.evaluate_candidates_masked(scheme, candidates, &[])
    }

    /// [`ScenarioContext::evaluate_candidates`] with failed switches
    /// masked out of every candidate's consolidation.
    pub fn evaluate_candidates_masked(
        &self,
        scheme: ServerScheme,
        candidates: &[ConsolidationSpec],
        excluded: &[NodeId],
    ) -> Vec<(ConsolidationSpec, Result<ClusterRunResult, ClusterError>)> {
        // Candidates land on worker threads; attach each one's span to
        // the caller's (normally `optimizer.search`) explicitly.
        let parent = eprons_obs::current_span_id();
        parallel_map(candidates, |spec| {
            let mut sp = eprons_obs::Span::enter_under(parent, "optimizer.candidate");
            if eprons_obs::enabled() {
                sp.note(format!("spec={}", spec.label()));
            }
            (*spec, self.evaluate_masked(scheme, *spec, excluded))
        })
    }
}

/// Exact-bit slot key over every [`ScenarioSpec`] axis.
type SlotKey = (u64, u64, u64, u64, u64);

fn slot_key(spec: &ScenarioSpec) -> SlotKey {
    (
        spec.server_utilization.to_bits(),
        spec.background_util.to_bits(),
        spec.duration_s.to_bits(),
        spec.warmup_s.to_bits(),
        spec.seed,
    )
}

/// Day-scoped context cache: at most `max_slots` [`ScenarioContext`]s
/// keyed by the exact bits of their [`ScenarioSpec`], evicted in
/// least-recently-used order.
///
/// The day controller's sequential epoch loop asks for one context per
/// evaluated spec; with demand quantized onto the warm-start grid a
/// 24-epoch day visits only a handful of distinct operating points, so
/// most epochs *revive* a slot — plan cache included — instead of
/// rebuilding the world. A miss rebinds demand from the most recent slot
/// ([`ScenarioContext::rebind_demand`]), which shares the topology,
/// arena, service model and pod-solve cache, so even misses skip the
/// expensive invariant build. Either way the returned context is
/// bit-identical to a fresh [`ScenarioContext::build`].
#[derive(Debug)]
pub struct DayContext {
    cfg: ClusterConfig,
    max_slots: usize,
    /// Slots in least-recently-used order (most recent last).
    slots: Mutex<Vec<(SlotKey, ScenarioContext)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time statistics of a [`DayContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayCacheStats {
    /// Contexts currently held.
    pub slots: usize,
    /// Requests served by reviving a held slot.
    pub hits: u64,
    /// Requests that built or rebound a context.
    pub misses: u64,
    /// Slots dropped to stay within the bound.
    pub evictions: u64,
    /// Approximate bytes of demand-dependent state across held slots
    /// (the shared base — arena, service model — is excluded: it exists
    /// once regardless of slot count).
    pub bytes: u64,
}

impl DayContext {
    /// An empty day cache for `cfg`, holding at most `max_slots`
    /// contexts (at least 1).
    pub fn new(cfg: &ClusterConfig, max_slots: usize) -> DayContext {
        DayContext {
            cfg: cfg.clone(),
            max_slots: max_slots.max(1),
            slots: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The context for `spec`: a revived slot (plan cache and all) on a
    /// hit; on a miss, a demand rebind from the most recent slot — or a
    /// full build for the very first one — inserted before returning.
    pub fn context_for(&self, spec: &ScenarioSpec) -> ScenarioContext {
        let key = slot_key(spec);
        let obs_on = eprons_obs::enabled();
        // Built inside the lock: the day loop is sequential, and holding
        // it keeps a racing duplicate build from double-inserting.
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = slots.iter().position(|(k, _)| *k == key) {
            let slot = slots.remove(i);
            let ctx = slot.1.clone();
            slots.push(slot);
            self.hits.fetch_add(1, Ordering::Relaxed);
            if obs_on {
                eprons_obs::registry().counter("core.daycache.hits").inc();
            }
            return ctx;
        }
        let ctx = match slots.last() {
            Some((_, base)) => base.rebind_demand(spec),
            None => ScenarioContext::build(&self.cfg, spec),
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        if obs_on {
            eprons_obs::registry()
                .counter("core.daycache.misses")
                .inc();
        }
        slots.push((key, ctx.clone()));
        if slots.len() > self.max_slots {
            slots.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if obs_on {
                eprons_obs::registry()
                    .counter("core.daycache.evictions")
                    .inc();
            }
        }
        ctx
    }

    /// Approximate bytes held by the evaluation-result memos across all
    /// live slots (each entry is one [`ClusterRunResult`] — or a cached
    /// failure — plus its active-switch id vector).
    pub fn eval_footprint_bytes(&self) -> u64 {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut bytes = 0usize;
        for (_, ctx) in slots.iter() {
            let evals = ctx
                .data
                .eval_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for outcome in evals.values() {
                bytes += std::mem::size_of::<EvalOutcome>()
                    + match &**outcome {
                        Ok(r) => r.active_switch_ids.len() * std::mem::size_of::<usize>(),
                        Err(_) => 0,
                    };
            }
        }
        bytes as u64
    }

    /// Current cache statistics (slot count, hit/miss/eviction totals,
    /// approximate bytes held).
    pub fn stats(&self) -> DayCacheStats {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut bytes = 0usize;
        for (_, ctx) in slots.iter() {
            let d = &*ctx.data;
            bytes += d.queries.len() * std::mem::size_of::<Query>()
                + d.flows.len() * std::mem::size_of::<eprons_net::Flow>()
                + d.pair_flow.len() * std::mem::size_of::<FlowId>();
            let plans = d.plan_cache.lock().unwrap_or_else(|e| e.into_inner());
            for plan in plans.values() {
                bytes += plan
                    .net_lat
                    .iter()
                    .map(|v| v.len() * std::mem::size_of::<(usize, f64, f64)>())
                    .sum::<usize>();
            }
        }
        DayCacheStats {
            slots: slots.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: bytes as u64,
        }
    }
}

/// Stage 2: one candidate network configuration applied to a scenario —
/// the consolidation assignment plus the per-sub-query network latencies
/// sampled along its paths.
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    pub(crate) consolidation: ConsolidationSpec,
    pub(crate) assignment: Assignment,
    pub(crate) max_link_utilization: f64,
    /// Peak utilization above the congestion threshold (withdraws
    /// TimeTrader's network slack).
    pub(crate) congested: bool,
    /// Per query: `(ISN, request latency, reply latency)` in seconds.
    pub(crate) net_lat: Vec<Vec<(usize, f64, f64)>>,
}

impl NetworkPlan {
    /// Runs consolidation for `consolidation` against the scenario's flow
    /// set and samples the per-sub-query request/reply latencies.
    pub fn build(
        ctx: &ScenarioContext,
        consolidation: ConsolidationSpec,
    ) -> Result<NetworkPlan, ClusterError> {
        Self::build_masked(ctx, consolidation, &[])
    }

    /// [`NetworkPlan::build`] with failed switches masked out: excluded
    /// switches carry no path and stay powered off even inside an
    /// aggregation preset. With an empty mask this is `build` exactly.
    pub fn build_masked(
        ctx: &ScenarioContext,
        consolidation: ConsolidationSpec,
        excluded: &[NodeId],
    ) -> Result<NetworkPlan, ClusterError> {
        let _t = eprons_obs::Timer::scoped("core.stage.network_plan_s");
        let mut sp = eprons_obs::Span::enter("stage.network_plan");
        if eprons_obs::enabled() {
            sp.note(format!("spec={}", consolidation.label()));
        }
        let d = &*ctx.data;
        let n = d.hosts.len();
        let mut mask = excluded.to_vec();
        mask.sort_unstable();
        mask.dedup();
        let ccfg = ConsolidationConfig {
            scale_k: match consolidation {
                ConsolidationSpec::GreedyK(k) => k,
                _ => 1.0,
            },
            safety_margin_mbps: ctx.cfg.safety_margin_mbps,
            power: ctx.cfg.net_power.clone(),
            excluded: mask,
        };
        // Consolidation routes through the shared path arena: identical
        // candidate paths, no per-candidate graph re-enumeration.
        let consolidate_span = eprons_obs::Span::enter("consolidate");
        let assignment: Assignment = match consolidation {
            ConsolidationSpec::AllOn => AggregationRouter::for_level(&d.ft, AggregationLevel::Agg0)
                .consolidate(&d.arena, &d.flows, &ccfg),
            ConsolidationSpec::Level(l) => {
                AggregationRouter::for_level(&d.ft, l).consolidate(&d.arena, &d.flows, &ccfg)
            }
            ConsolidationSpec::GreedyK(_) => match ctx.effective_strategy() {
                ConsolidateStrategy::PodDecomposed => {
                    // Pod solves fan out over the session's thread budget;
                    // `parallel_map_range` preserves pod order, which the
                    // decomposition's determinism contract requires.
                    let runner: PodRunner<'_> = &|pods, solve| parallel_map_range(pods, solve);
                    let opts = PodDecompOptions {
                        runner: Some(runner),
                        cache: Some(&d.pod_cache),
                        ..Default::default()
                    };
                    consolidate_pod_decomposed(&d.ft, &d.arena, &d.flows, &ccfg, &opts)
                        .map(|report| report.assignment)
                }
                _ => GreedyConsolidator.consolidate(&d.arena, &d.flows, &ccfg),
            },
        }
        .map_err(ClusterError::Consolidation)?;
        drop(consolidate_span);

        let max_link_utilization = assignment.max_utilization(&d.ft);
        let congested = max_link_utilization > ctx.cfg.congestion_threshold;

        // --- Per-sub-query network latencies. ---
        //
        // The per-hop utilizations along a pair's path are fixed once the
        // assignment is, so they are computed once per ordered host pair
        // (n·(n−1) paths) instead of once per sub-query direction (~two
        // orders of magnitude more often at realistic query rates). Only
        // the latency *sampling* stays per sub-query — it consumes the
        // same RNG draws either way, so the stream (and every downstream
        // bit) is unchanged.
        let _latency_span = eprons_obs::Span::enter("latency_sample");
        let state = assignment.state();
        let topo = d.ft.topology();
        let mut net_rng = d.net_rng.clone();
        // One flat buffer of per-hop utilizations for all n·(n−1) pairs
        // (offsets index it) instead of a map of n² small vectors — the
        // utilizations are RNG-free, so the layout change is invisible to
        // the sampled stream.
        let mut util_off: Vec<u32> = Vec::with_capacity(n * n + 1);
        let mut util_buf: Vec<f64> = Vec::new();
        let mut scratch = Vec::new();
        util_off.push(0);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let fid = d.pair_flow[a * n + b];
                    state.path_utilizations_into(topo, assignment.path(fid), &mut scratch);
                    util_buf.extend_from_slice(&scratch);
                }
                util_off.push(util_buf.len() as u32);
            }
        }
        let pair_utils = |a: usize, b: usize| {
            &util_buf[util_off[a * n + b] as usize..util_off[a * n + b + 1] as usize]
        };
        let mut net_lat: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); d.queries.len()];
        for q in &d.queries {
            for s in 0..n {
                if s == q.aggregator {
                    continue;
                }
                let req_utils = pair_utils(q.aggregator, s);
                let rep_utils = pair_utils(s, q.aggregator);
                let req_lat = ctx
                    .cfg
                    .latency
                    .sample_path_latency_us(&mut net_rng, req_utils)
                    * 1.0e-6;
                let rep_lat = ctx
                    .cfg
                    .latency
                    .sample_path_latency_us(&mut net_rng, rep_utils)
                    * 1.0e-6;
                net_lat[q.id as usize].push((s, req_lat, rep_lat));
            }
        }

        Ok(NetworkPlan {
            consolidation,
            assignment,
            max_link_utilization,
            congested,
            net_lat,
        })
    }

    /// The candidate this plan realizes.
    pub fn consolidation(&self) -> ConsolidationSpec {
        self.consolidation
    }

    /// Active switches after consolidation.
    pub fn active_switches(&self, ctx: &ScenarioContext) -> usize {
        self.assignment.active_switch_count(&ctx.data.ft)
    }
}

/// The lowest per-core power the scheme's DVFS policy can draw in any
/// state — the same floor stage 3 integrates through trailing idle time,
/// so every simulated `avg_core_w` is ≥ this value. The optimizer's
/// candidate lower bound rests on that inequality.
pub(crate) fn scheme_idle_floor_w(cfg: &ClusterConfig, scheme: ServerScheme) -> f64 {
    let policy: Box<dyn DvfsPolicy> = match scheme {
        ServerScheme::NoPowerManagement => Box::new(MaxFreqPolicy),
        ServerScheme::Rubik => Box::new(MaxVpPolicy::rubik()),
        ServerScheme::RubikPlus => Box::new(MaxVpPolicy::rubik_plus()),
        ServerScheme::TimeTrader => Box::new(TimeTraderPolicy::new(
            cfg.sla.server_budget_s,
            cfg.ladder.len(),
        )),
        ServerScheme::EpronsServer => Box::new(AvgVpPolicy::eprons()),
        ServerScheme::DeepSleep => Box::new(DeepSleepPolicy::new()),
    };
    policy
        .idle_power_w()
        .unwrap_or_else(|| cfg.cpu.core_idle_w())
}

/// What one server's shard hands back to the in-order reduction.
#[derive(Debug)]
pub(crate) struct ServerShard {
    pub(crate) avg_core_w: f64,
    /// `(query id, latency, budget)` per completed sub-query.
    pub(crate) completions: Vec<(u64, f64, f64)>,
}

/// Stage 3: the per-ISN DVFS simulations for one (plan, scheme) pair,
/// with the plan's request network slack transferred into each request's
/// compute budget for the slack-aware schemes.
#[derive(Debug)]
pub struct ServerEvaluation {
    pub(crate) scheme: ServerScheme,
    pub(crate) shards: Vec<ServerShard>,
}

impl ServerEvaluation {
    /// Builds the per-server arrival traces (arrival = query time +
    /// request latency; budget per the scheme's slack rule) and fans the
    /// independent core simulations out over the thread budget.
    pub fn run(
        ctx: &ScenarioContext,
        plan: &NetworkPlan,
        scheme: ServerScheme,
    ) -> ServerEvaluation {
        let _t = eprons_obs::Timer::scoped("core.stage.server_eval_s");
        let mut eval_span = eprons_obs::Span::enter("stage.server_eval");
        let obs_on = eprons_obs::enabled();
        let d = &*ctx.data;
        let cfg = &ctx.cfg;
        let n = d.hosts.len();

        // TimeTrader borrows whatever network budget its congestion
        // monitor shows to be unused: target = server budget + max(0,
        // network budget − observed round-trip p95). A congested subnet
        // (ECN/queue build-up) withdraws the slack entirely — the
        // over-conservatism the paper criticizes (§I).
        // Leaf span: the serial arrival-trace build (and TimeTrader's
        // budget probe) would otherwise be invisible self-time of
        // `stage.server_eval` in the flame view.
        let arrivals_span = eprons_obs::Span::enter("server_arrivals");
        let timetrader_target = if scheme == ServerScheme::TimeTrader {
            let round_trips: Vec<f64> = plan
                .net_lat
                .iter()
                .flatten()
                .map(|&(_, req, rep)| req + rep)
                .collect();
            let net_p95 = if round_trips.is_empty() || plan.congested {
                cfg.sla.network_budget_s
            } else {
                eprons_num::quantile::percentile(&round_trips, 0.95)
            };
            cfg.sla.server_budget_s + (cfg.sla.network_budget_s - net_p95).max(0.0)
        } else {
            cfg.sla.server_budget_s
        };

        // --- Server arrival traces with per-request budgets. ---
        let mut per_server: Vec<Vec<ArrivalSpec>> = vec![Vec::new(); n];
        for q in &d.queries {
            for &(s, req_lat, _rep) in &plan.net_lat[q.id as usize] {
                let budget = if scheme.uses_request_slack() {
                    budget_with_network_slack(
                        cfg.sla.server_budget_s,
                        cfg.sla.request_budget_s(),
                        req_lat,
                    )
                } else if scheme == ServerScheme::TimeTrader {
                    timetrader_target
                } else {
                    cfg.sla.server_budget_s
                };
                per_server[s].push(ArrivalSpec {
                    arrival_s: q.time_s + req_lat,
                    budget_s: budget,
                    tag: q.id,
                });
            }
        }
        for arrivals in per_server.iter_mut() {
            arrivals.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite times"));
        }
        drop(arrivals_span);

        // --- Per-ISN DVFS simulation, sharded across the thread budget.
        //
        // Each server's core simulation is independent once its arrival
        // trace and RNG seed are fixed. Determinism is preserved by
        // construction: the per-server seeds were drawn serially at
        // context build, the shards share no mutable state, and the
        // accounting stage folds shard results in server-index order so
        // floating-point accumulation matches the serial loop bit for
        // bit.
        let core_cfg = CoreSimConfig {
            ladder: cfg.ladder.clone(),
            power: cfg.cpu.clone(),
            decision_overhead_s: 30.0e-6,
            measure_from_s: d.warmup_s,
        };
        if obs_on {
            eprons_obs::registry()
                .gauge("core.cluster.worker_threads")
                .set(crate::parallel::thread_budget() as f64);
        }
        if obs_on {
            eval_span.note(format!("scheme={} servers={n}", scheme.name()));
        }
        // Day-scoped runs route each shard through the process-wide
        // server-eval memo. The fingerprint covers the inputs the memo
        // key cannot see through the call signature: the service model
        // and the policy's identity — the scheme plus the TimeTrader
        // target, the only scheme parameter that varies per plan.
        let memo_on = serveval_memo_enabled();
        let extern_fp = if memo_on {
            let mut h = DefaultHasher::new();
            service_fingerprint(&d.service).hash(&mut h);
            scheme.name().hash(&mut h);
            timetrader_target.to_bits().hash(&mut h);
            h.finish()
        } else {
            0
        };
        // Shards run on worker threads whose span stacks are empty, so
        // each attaches to the evaluation span by id.
        let eval_span_id = eval_span.id();
        let shards: Vec<ServerShard> = parallel_map_range(n, |s| {
            let _t = eprons_obs::Timer::scoped("core.cluster.server_shard_s");
            let mut shard_span = eprons_obs::Span::enter_under(eval_span_id, "server_shard");
            if eprons_obs::enabled() {
                shard_span.note(format!("server={s}"));
            }
            let arrivals = &per_server[s];
            let mut engine = VpEngine::shared(Arc::clone(&d.service));
            let mut policy: Box<dyn DvfsPolicy> = match scheme {
                ServerScheme::NoPowerManagement => Box::new(MaxFreqPolicy),
                ServerScheme::Rubik => Box::new(MaxVpPolicy::rubik()),
                ServerScheme::RubikPlus => Box::new(MaxVpPolicy::rubik_plus()),
                ServerScheme::TimeTrader => {
                    Box::new(TimeTraderPolicy::new(timetrader_target, cfg.ladder.len()))
                }
                ServerScheme::EpronsServer => Box::new(AvgVpPolicy::eprons()),
                ServerScheme::DeepSleep => Box::new(DeepSleepPolicy::new()),
            };
            let (r, memo_hit) = simulate_core_memoized(
                policy.as_mut(),
                &mut engine,
                arrivals,
                &core_cfg,
                d.server_seeds[s],
                extern_fp,
            );
            if memo_on && eprons_obs::enabled() {
                eprons_obs::registry()
                    .counter(if memo_hit {
                        "core.serveval.hits"
                    } else {
                        "core.serveval.misses"
                    })
                    .inc();
            }
            let end = r.sim_end_s.max(d.horizon_s);
            let span = end - d.warmup_s;
            let trailing_idle_w = policy
                .idle_power_w()
                .unwrap_or_else(|| cfg.cpu.core_idle_w());
            let avg_core_w = if span > 0.0 {
                // Integrate idle power through any trailing idle time too.
                (r.energy_j + (end - r.sim_end_s) * trailing_idle_w) / span
            } else {
                trailing_idle_w
            };
            let completions = r
                .latencies
                .iter()
                .zip(&r.tags)
                .zip(&r.budgets)
                .map(|((&lat, &tag), &budget)| (tag, lat, budget))
                .collect();
            ServerShard {
                avg_core_w,
                completions,
            }
        });
        ServerEvaluation { scheme, shards }
    }

    /// The scheme this evaluation ran under.
    pub fn scheme(&self) -> ServerScheme {
        self.scheme
    }
}
