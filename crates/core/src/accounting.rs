//! Power breakdowns, savings arithmetic (Fig. 15b's bars), and the final
//! accounting stage of the staged cluster pipeline.

use std::collections::HashMap;

use crate::cluster::{ClusterRunResult, LatencySummary};
use crate::scenario::{NetworkPlan, ScenarioContext, ServerEvaluation};

/// Stage 4 of the pipeline: folds the per-server shards and the network
/// plan's latencies into a [`ClusterRunResult`].
///
/// The reduction walks shards in server-index order so floating-point
/// accumulation (and therefore every derived statistic) is bit-identical
/// to the monolithic serial loop, regardless of how many threads ran the
/// server stage.
pub(crate) fn assemble(
    ctx: &ScenarioContext,
    plan: &NetworkPlan,
    eval: &ServerEvaluation,
) -> ClusterRunResult {
    let _t = eprons_obs::Timer::scoped("core.stage.accounting_s");
    let _sp = eprons_obs::Span::enter("stage.accounting");
    let d = &*ctx.data;
    let cfg = &ctx.cfg;

    let mut cpu_power_w = 0.0;
    let mut server_w = 0.0;
    let mut server_latencies: Vec<f64> = Vec::new();
    let mut server_misses = 0usize;
    let mut server_completions = 0usize;
    // server latency per (server, query id).
    let mut lat_of: HashMap<(usize, u64), f64> = HashMap::new();
    for (s, shard) in eval.shards.iter().enumerate() {
        cpu_power_w += cfg.cpu.cores as f64 * shard.avg_core_w;
        server_w += cfg.cpu.server_w(shard.avg_core_w);
        for &(tag, lat, budget) in &shard.completions {
            server_latencies.push(lat);
            server_completions += 1;
            if lat > budget {
                server_misses += 1;
            }
            lat_of.insert((s, tag), lat);
        }
    }

    // --- Query- and request-level assembly. ---
    let n = d.hosts.len();
    let mut query_net: Vec<f64> = Vec::with_capacity(d.queries.len());
    let mut query_e2e: Vec<f64> = Vec::with_capacity(d.queries.len());
    let mut e2e: Vec<f64> = Vec::with_capacity(d.queries.len() * n);
    for q in &d.queries {
        if q.time_s < d.warmup_s {
            continue; // warmup queries are simulated but not scored
        }
        let mut worst_net: f64 = 0.0;
        let mut worst_e2e: f64 = 0.0;
        for &(s, req, rep) in &plan.net_lat[q.id as usize] {
            let srv = lat_of
                .get(&(s, q.id))
                .copied()
                .expect("every sub-query completes");
            worst_net = worst_net.max(req + rep);
            worst_e2e = worst_e2e.max(req + srv + rep);
            e2e.push(req + srv + rep);
        }
        query_net.push(worst_net);
        query_e2e.push(worst_e2e);
    }
    let e2e_misses = e2e.iter().filter(|&&l| l > cfg.sla.total_s()).count();

    let network_w = plan.assignment.network_power_w(&d.ft, &cfg.net_power);
    let active_switch_ids: Vec<usize> =
        d.ft.topology()
            .switches()
            .into_iter()
            .filter(|&node| plan.assignment.state().node_on(node))
            .map(|node| node.0)
            .collect();
    ClusterRunResult {
        breakdown: PowerBreakdown {
            server_w,
            network_w,
        },
        cpu_power_w,
        active_switches: plan.assignment.active_switch_count(&d.ft),
        active_switch_ids,
        max_link_utilization: plan.max_link_utilization,
        query_count: query_net.len(),
        net_latency: LatencySummary::from_samples(&query_net),
        server_latency: LatencySummary::from_samples(&server_latencies),
        e2e_latency: LatencySummary::from_samples(&e2e),
        query_e2e_latency: LatencySummary::from_samples(&query_e2e),
        e2e_miss_rate: if e2e.is_empty() {
            0.0
        } else {
            e2e_misses as f64 / e2e.len() as f64
        },
        server_miss_rate: if server_completions == 0 {
            0.0
        } else {
            server_misses as f64 / server_completions as f64
        },
    }
}

/// A total-power snapshot split into its two layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// All servers (static + CPU), watts.
    pub server_w: f64,
    /// DCN (switches + links), watts.
    pub network_w: f64,
}

impl PowerBreakdown {
    /// Total watts.
    pub fn total_w(&self) -> f64 {
        self.server_w + self.network_w
    }

    /// Fractional saving of `self` relative to a baseline (positive =
    /// saving). Returns per-layer and total savings.
    pub fn saving_vs(&self, baseline: &PowerBreakdown) -> Savings {
        let frac = |ours: f64, base: f64| {
            if base > 0.0 {
                (base - ours) / base
            } else {
                0.0
            }
        };
        Savings {
            server: frac(self.server_w, baseline.server_w),
            network: frac(self.network_w, baseline.network_w),
            total: frac(self.total_w(), baseline.total_w()),
        }
    }
}

/// Fractional savings per layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Savings {
    /// Server-layer saving fraction.
    pub server: f64,
    /// Network-layer saving fraction.
    pub network: f64,
    /// Total saving fraction.
    pub total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_savings() {
        let base = PowerBreakdown {
            server_w: 1000.0,
            network_w: 600.0,
        };
        let ours = PowerBreakdown {
            server_w: 800.0,
            network_w: 300.0,
        };
        assert_eq!(base.total_w(), 1600.0);
        let s = ours.saving_vs(&base);
        assert!((s.server - 0.2).abs() < 1e-12);
        assert!((s.network - 0.5).abs() < 1e-12);
        assert!((s.total - 500.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        let base = PowerBreakdown {
            server_w: 0.0,
            network_w: 0.0,
        };
        let ours = base;
        let s = ours.saving_vs(&base);
        assert_eq!(s.total, 0.0);
    }

    #[test]
    fn negative_saving_when_worse() {
        let base = PowerBreakdown {
            server_w: 100.0,
            network_w: 100.0,
        };
        let worse = PowerBreakdown {
            server_w: 150.0,
            network_w: 100.0,
        };
        assert!(worse.saving_vs(&base).server < 0.0);
    }
}
