//! Power breakdowns and savings arithmetic (Fig. 15b's bars).

/// A total-power snapshot split into its two layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// All servers (static + CPU), watts.
    pub server_w: f64,
    /// DCN (switches + links), watts.
    pub network_w: f64,
}

impl PowerBreakdown {
    /// Total watts.
    pub fn total_w(&self) -> f64 {
        self.server_w + self.network_w
    }

    /// Fractional saving of `self` relative to a baseline (positive =
    /// saving). Returns per-layer and total savings.
    pub fn saving_vs(&self, baseline: &PowerBreakdown) -> Savings {
        let frac = |ours: f64, base: f64| {
            if base > 0.0 {
                (base - ours) / base
            } else {
                0.0
            }
        };
        Savings {
            server: frac(self.server_w, baseline.server_w),
            network: frac(self.network_w, baseline.network_w),
            total: frac(self.total_w(), baseline.total_w()),
        }
    }
}

/// Fractional savings per layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Savings {
    /// Server-layer saving fraction.
    pub server: f64,
    /// Network-layer saving fraction.
    pub network: f64,
    /// Total saving fraction.
    pub total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_savings() {
        let base = PowerBreakdown {
            server_w: 1000.0,
            network_w: 600.0,
        };
        let ours = PowerBreakdown {
            server_w: 800.0,
            network_w: 300.0,
        };
        assert_eq!(base.total_w(), 1600.0);
        let s = ours.saving_vs(&base);
        assert!((s.server - 0.2).abs() < 1e-12);
        assert!((s.network - 0.5).abs() < 1e-12);
        assert!((s.total - 500.0 / 1600.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        let base = PowerBreakdown {
            server_w: 0.0,
            network_w: 0.0,
        };
        let ours = base;
        let s = ours.saving_vs(&base);
        assert_eq!(s.total, 0.0);
    }

    #[test]
    fn negative_saving_when_worse() {
        let base = PowerBreakdown {
            server_w: 100.0,
            network_w: 100.0,
        };
        let worse = PowerBreakdown {
            server_w: 150.0,
            network_w: 100.0,
        };
        assert!(worse.saving_vs(&base).server < 0.0);
    }
}
