//! The SDN-controller day loop (paper Fig. 7 + Fig. 15).
//!
//! The centralized controller gathers traffic statistics, predicts the next
//! epoch's demand (90th percentile of the last epoch, §II), re-runs the
//! optimizer every 10 minutes (§IV-B), and reconfigures paths/switch
//! states. [`simulate_day`] replays a 24-hour diurnal day (Fig. 14) through
//! that loop and records the power timeline of Fig. 15.

use eprons_net::transition::{Churn, TransitionModel};
use eprons_net::{DemandPredictor, NetworkState};
use eprons_net::flow::FlowId;
use eprons_sim::SimRng;
use eprons_topo::{FatTree, NodeId};
use eprons_workload::diurnal::{DiurnalProfile, MINUTES_PER_DAY};

use crate::cluster::{run_cluster, ClusterRun, ConsolidationSpec, ServerScheme};
use crate::config::ClusterConfig;
use crate::optimizer::optimize_in_context;
use crate::accounting::PowerBreakdown;
use crate::parallel::parallel_map;
use crate::scenario::{ScenarioContext, ScenarioSpec};

/// The three Fig. 15 contenders.
#[derive(Debug, Clone)]
pub enum DayStrategy {
    /// No power management anywhere.
    NoPowerManagement,
    /// TimeTrader on the servers; the DCN stays fully on ("TimeTrader
    /// doesn't save any DCN power", §V-B3).
    TimeTrader,
    /// Full EPRONS: EPRONS-Server plus per-epoch joint optimization over
    /// the given candidate network configurations.
    Eprons {
        /// Candidate network configurations for the joint optimizer.
        candidates: Vec<ConsolidationSpec>,
    },
}

impl DayStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DayStrategy::NoPowerManagement => "no-power-management",
            DayStrategy::TimeTrader => "timetrader",
            DayStrategy::Eprons { .. } => "eprons",
        }
    }
}

/// One epoch's record in the day timeline.
#[derive(Debug, Clone)]
pub struct DayRecord {
    /// Epoch midpoint, minutes since midnight.
    pub minute: f64,
    /// Search load as a fraction of peak.
    pub search_load: f64,
    /// Background traffic fraction used (the *predicted* value the
    /// controller acted on).
    pub background_util: f64,
    /// Measured power split.
    pub breakdown: PowerBreakdown,
    /// Active switches chosen for this epoch.
    pub active_switches: usize,
    /// Identities of the active switches (node indices), for churn
    /// accounting across epochs.
    pub active_switch_ids: Vec<usize>,
    /// Measured end-to-end p95, seconds.
    pub e2e_p95_s: f64,
    /// Whether the epoch met the SLA.
    pub feasible: bool,
}

/// Day-simulation knobs.
#[derive(Debug, Clone)]
pub struct DayConfig {
    /// Optimization period in minutes (10 in the paper).
    pub epoch_minutes: usize,
    /// Simulated seconds of queries per epoch evaluation.
    pub sim_seconds: f64,
    /// Per-ISN utilization at peak search load.
    pub peak_utilization: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DayConfig {
    fn default() -> Self {
        DayConfig {
            epoch_minutes: 10,
            sim_seconds: 4.0,
            peak_utilization: 0.5,
            seed: 2018,
        }
    }
}

/// Replays one diurnal day under a strategy; returns one record per epoch.
pub fn simulate_day(
    cfg: &ClusterConfig,
    strategy: &DayStrategy,
    day: &DayConfig,
) -> Vec<DayRecord> {
    let mut rng = SimRng::seed_from_u64(day.seed);
    let search = DiurnalProfile::search_load().sample_day(&mut rng.fork(1));
    let background = DiurnalProfile::background_traffic().sample_day(&mut rng.fork(2));
    let epochs = MINUTES_PER_DAY / day.epoch_minutes;
    let obs_on = eprons_obs::enabled();
    if obs_on {
        eprons_obs::record(eprons_obs::Event::DayStart {
            strategy: strategy.name().to_string(),
            epochs: epochs as u64,
        });
    }

    // The controller predicts each epoch's background demand as the 90th
    // percentile of the previous epoch's per-minute observations (§II).
    let mut predictor = DemandPredictor::paper_default(1);
    let mut predicted_bg: Vec<f64> = Vec::with_capacity(epochs);
    for e in 0..epochs {
        let start = e * day.epoch_minutes;
        // Act on the last epoch's prediction (first epoch: observe only).
        let predicted = predictor
            .predict(FlowId(0))
            .unwrap_or(background[start]);
        predicted_bg.push(predicted.clamp(0.01, 0.95));
        for &obs in &background[start..start + day.epoch_minutes] {
            predictor.observe(FlowId(0), obs);
        }
        predictor.roll_epoch();
    }

    // Epochs are independent given their inputs: evaluate in parallel.
    let inputs: Vec<(usize, f64, f64)> = (0..epochs)
        .map(|e| {
            let mid = (e * day.epoch_minutes) as f64 + day.epoch_minutes as f64 / 2.0;
            let load = search[(mid as usize).min(MINUTES_PER_DAY - 1)];
            (e, mid, load)
        })
        .collect();

    let records = parallel_map(&inputs, |&(e, minute, load)| {
        let bg = predicted_bg[e];
        if obs_on {
            eprons_obs::record(eprons_obs::Event::EpochStart {
                epoch: e as u64,
                minute,
                search_load: load,
                background_util: bg,
            });
        }
        let util = (day.peak_utilization * load).max(0.02);
        let template = ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn,
            server_utilization: util,
            background_util: bg,
            duration_s: day.sim_seconds,
            warmup_s: 0.0,
            seed: day.seed ^ (e as u64).wrapping_mul(0x9E37_79B9),
        };
        let (rec, choice_label) = match strategy {
            DayStrategy::NoPowerManagement => {
                let run = ClusterRun {
                    scheme: ServerScheme::NoPowerManagement,
                    ..template
                };
                let r = run_cluster(cfg, &run).expect("all-on never fails");
                let rec = DayRecord {
                    minute,
                    search_load: load,
                    background_util: bg,
                    breakdown: r.breakdown,
                    active_switches: r.active_switches,
                    active_switch_ids: r.active_switch_ids.clone(),
                    e2e_p95_s: r.e2e_latency.p95_s,
                    feasible: r.is_feasible(cfg),
                };
                (rec, ConsolidationSpec::AllOn.label())
            }
            DayStrategy::TimeTrader => {
                let run = ClusterRun {
                    scheme: ServerScheme::TimeTrader,
                    // Let the 5 s feedback loop settle before scoring.
                    warmup_s: 60.0,
                    ..template
                };
                let r = run_cluster(cfg, &run).expect("all-on never fails");
                let rec = DayRecord {
                    minute,
                    search_load: load,
                    background_util: bg,
                    breakdown: r.breakdown,
                    active_switches: r.active_switches,
                    active_switch_ids: r.active_switch_ids.clone(),
                    e2e_p95_s: r.e2e_latency.p95_s,
                    feasible: r.is_feasible(cfg),
                };
                (rec, ConsolidationSpec::AllOn.label())
            }
            DayStrategy::Eprons { candidates } => {
                // One scenario build per epoch; the optimizer's candidate
                // ladder shares it, so each candidate pays only
                // consolidation + latency sampling + DVFS simulation.
                let ctx = ScenarioContext::build(cfg, &ScenarioSpec::of_run(&template));
                let choice = optimize_in_context(&ctx, template.scheme, candidates)
                    .0
                    .expect("at least one candidate evaluates");
                let rec = DayRecord {
                    minute,
                    search_load: load,
                    background_util: bg,
                    breakdown: choice.result.breakdown,
                    active_switches: choice.result.active_switches,
                    active_switch_ids: choice.result.active_switch_ids.clone(),
                    e2e_p95_s: choice.result.e2e_latency.p95_s,
                    feasible: choice.feasible,
                };
                (rec, choice.spec.label())
            }
        };
        if obs_on {
            eprons_obs::record(eprons_obs::Event::EpochSnapshot(eprons_obs::Snapshot {
                epoch: e as u64,
                minute: rec.minute,
                strategy: strategy.name().to_string(),
                choice: choice_label,
                server_w: rec.breakdown.server_w,
                network_w: rec.breakdown.network_w,
                active_switches: rec.active_switches as u64,
                e2e_p95_us: rec.e2e_p95_s * 1.0e6,
                feasible: rec.feasible,
            }));
        }
        rec
    });

    if obs_on {
        // Epoch-boundary churn: rebuild each epoch's NetworkState from its
        // active switch set and diff consecutive states, journaling the
        // links/switches toggled by every reconfiguration.
        let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
        let topo = ft.topology();
        let state_of = |ids: &[usize]| {
            let active: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
            NetworkState::with_active_switches(topo, &active)
        };
        for w in records.windows(2) {
            let d = state_of(&w[0].active_switch_ids)
                .delta(topo, &state_of(&w[1].active_switch_ids));
            eprons_obs::record(eprons_obs::Event::LinkStateChange {
                links_on: d.links_on as u64,
                links_off: d.links_off as u64,
                switches_on: d.switches_on as u64,
                switches_off: d.switches_off as u64,
            });
        }
    }
    records
}

/// Reconfiguration churn between consecutive epochs of a day timeline.
pub fn day_churn(records: &[DayRecord]) -> Vec<Churn> {
    records
        .windows(2)
        .map(|w| Churn::between(&w[0].active_switch_ids, &w[1].active_switch_ids))
        .collect()
}

/// Total transition energy (joules) a day timeline pays under the given
/// switch transition model (§IV-B's deferred cost: 72.52 s power-on per
/// HPE switch). The paper ignores this with software switches; this
/// accounting quantifies what hardware would add.
pub fn day_transition_energy_j(records: &[DayRecord], model: &TransitionModel) -> f64 {
    day_churn(records)
        .iter()
        .map(|c| model.transition_energy_j(c))
        .sum()
}

/// Writes a day timeline as CSV (for external plotting): one row per
/// epoch with minute, loads, power split, switches, tail, feasibility.
pub fn save_day_csv(records: &[DayRecord], path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "minute,search_load,background_util,server_w,network_w,total_w,active_switches,e2e_p95_ms,feasible"
    )?;
    for r in records {
        writeln!(
            w,
            "{:.1},{:.4},{:.4},{:.2},{:.2},{:.2},{},{:.3},{}",
            r.minute,
            r.search_load,
            r.background_util,
            r.breakdown.server_w,
            r.breakdown.network_w,
            r.breakdown.total_w(),
            r.active_switches,
            r.e2e_p95_s * 1.0e3,
            r.feasible
        )?;
    }
    w.flush()
}

/// Total energy (joules) a day timeline consumes: each epoch's measured
/// total power held for the epoch length. The Fig. 15 currency for
/// comparing strategies over a whole day.
pub fn day_total_energy_j(records: &[DayRecord], day: &DayConfig) -> f64 {
    let epoch_s = day.epoch_minutes as f64 * 60.0;
    records
        .iter()
        .map(|r| r.breakdown.total_w() * epoch_s)
        .sum()
}

/// Average power breakdown over a day timeline.
pub fn day_average(records: &[DayRecord]) -> PowerBreakdown {
    let n = records.len().max(1) as f64;
    PowerBreakdown {
        server_w: records.iter().map(|r| r.breakdown.server_w).sum::<f64>() / n,
        network_w: records.iter().map(|r| r.breakdown.network_w).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::aggregation_candidates;

    fn quick_day() -> DayConfig {
        DayConfig {
            epoch_minutes: 240, // 6 epochs only, for test speed
            sim_seconds: 2.0,
            peak_utilization: 0.5,
            seed: 99,
        }
    }

    #[test]
    fn day_produces_one_record_per_epoch() {
        let cfg = ClusterConfig::default();
        let recs = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &quick_day());
        assert_eq!(recs.len(), 6);
        assert!(recs.windows(2).all(|w| w[0].minute < w[1].minute));
        // Full network all day.
        assert!(recs.iter().all(|r| r.active_switches == 20));
    }

    #[test]
    fn eprons_day_saves_power_vs_no_pm() {
        let cfg = ClusterConfig::default();
        let day = quick_day();
        let nopm = day_average(&simulate_day(
            &cfg,
            &DayStrategy::NoPowerManagement,
            &day,
        ));
        let eprons = day_average(&simulate_day(
            &cfg,
            &DayStrategy::Eprons {
                candidates: aggregation_candidates(),
            },
            &day,
        ));
        let saving = eprons.saving_vs(&nopm);
        assert!(
            saving.total > 0.05,
            "EPRONS should save total power, got {:.1}%",
            saving.total * 100.0
        );
        assert!(saving.network > 0.0, "EPRONS must save DCN power");
    }

    #[test]
    fn timetrader_day_saves_servers_but_not_network() {
        let cfg = ClusterConfig::default();
        // TimeTrader only moves once per 5 s control period, so the epoch
        // sims must span several periods for it to act at all.
        let day = DayConfig {
            epoch_minutes: 480, // 3 epochs
            sim_seconds: 40.0,
            ..quick_day()
        };
        let nopm = day_average(&simulate_day(
            &cfg,
            &DayStrategy::NoPowerManagement,
            &day,
        ));
        let tt = day_average(&simulate_day(&cfg, &DayStrategy::TimeTrader, &day));
        let saving = tt.saving_vs(&nopm);
        assert!(saving.server > 0.0, "TimeTrader saves server power");
        assert!(
            saving.network.abs() < 1e-9,
            "TimeTrader saves no DCN power (got {:.2}%)",
            saving.network * 100.0
        );
    }

    #[test]
    fn churn_accounting_over_a_day() {
        let cfg = ClusterConfig::default();
        let day = quick_day();
        // The all-on strategies never reconfigure.
        let nopm = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
        let churn = day_churn(&nopm);
        assert!(churn.iter().all(|c| c.is_empty()), "all-on must not flap");
        assert_eq!(
            day_transition_energy_j(&nopm, &TransitionModel::default()),
            0.0
        );
        // EPRONS reconfigures as load swings; transition energy is finite
        // and small when amortized (the §IV-B discussion).
        let eprons = simulate_day(
            &cfg,
            &DayStrategy::Eprons {
                candidates: aggregation_candidates(),
            },
            &day,
        );
        let e = day_transition_energy_j(&eprons, &TransitionModel::default());
        assert!(e >= 0.0);
        // Even a switch-over every epoch stays below a few watts amortized
        // over the day (6 epochs × 4 h here).
        let day_seconds = 24.0 * 3600.0;
        assert!(e / day_seconds < 20.0, "amortized churn power too high");
    }

    #[test]
    fn day_csv_round_trips_through_disk() {
        let cfg = ClusterConfig::default();
        let recs = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &quick_day());
        let mut path = std::env::temp_dir();
        path.push(format!("eprons-day-{}.csv", std::process::id()));
        save_day_csv(&recs, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), recs.len() + 1, "header + one row per epoch");
        assert!(lines[0].starts_with("minute,"));
        assert!(lines[1].contains(','));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn diurnal_load_shows_in_power_timeline() {
        let cfg = ClusterConfig::default();
        let recs = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &quick_day());
        // Load varies across epochs, so (CPU) power must vary too.
        let powers: Vec<f64> = recs.iter().map(|r| r.breakdown.server_w).collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 5.0, "diurnal swing should move power: {powers:?}");
    }
}
