//! The SDN-controller day loop (paper Fig. 7 + Fig. 15).
//!
//! The centralized controller gathers traffic statistics, predicts the next
//! epoch's demand (90th percentile of the last epoch, §II), re-runs the
//! optimizer every 10 minutes (§IV-B), and reconfigures paths/switch
//! states. [`simulate_day`] replays a 24-hour diurnal day (Fig. 14) through
//! that loop and records the power timeline of Fig. 15.
//!
//! [`simulate_day_with_failures`] replays the same day against a
//! [`FailureSchedule`]: switches down at an epoch's start are masked out
//! of that epoch's candidate ladder, and a mid-epoch failure walks the
//! degradation ladder of [`eprons_net::failure`] — in-epoch repair
//! (charging boot energy for woken backups), re-consolidation around the
//! failure, all-on fallback, or, when even that cannot route, an
//! unprotected epoch whose SLA flag is forced false.
//!
//! Setting [`DayConfig::online`] turns the loop into an **online
//! streaming controller**: epochs run strictly in sequence carrying
//! state across boundaries — per-switch cooldowns and a payback-priced
//! hysteresis filter on reconfigurations ([`HysteresisConfig`]), plus a
//! bounded deferral queue that shaves latency-tolerant background demand
//! off peaks and drains it into troughs ([`DeferralConfig`]). Demand is
//! still observed per minute through [`DemandPredictor`] (§II's 90th
//! percentile); predictions are exogenous to the control decisions, so
//! the streamed timeline stays a deterministic pure function of its
//! inputs and is bit-identical across thread budgets.

use std::collections::{BTreeMap, VecDeque};

use eprons_net::failure::{DegradationPolicy, DegradationStage, FailureEventKind, FailureSchedule};
use eprons_net::flow::FlowId;
use eprons_net::transition::{worth_switching, Churn, TransitionModel};
use eprons_net::{Assignment, DemandPredictor, NetworkState};
use eprons_sim::SimRng;
use eprons_topo::{FatTree, NodeId};
use eprons_workload::adversarial::TraceScenario;
use eprons_workload::diurnal::{DiurnalProfile, MINUTES_PER_DAY};

use crate::accounting::PowerBreakdown;
use crate::cluster::{ClusterRun, ClusterRunResult, ConsolidationSpec, ServerScheme};
use crate::config::{ClusterConfig, DayScopeConfig, DeferralConfig, HysteresisConfig, OnlineConfig};
use crate::optimizer::{optimize_in_context, optimize_in_context_pruned};
use crate::parallel::parallel_map;
use crate::scenario::{DayContext, ScenarioContext, ScenarioSpec};

/// The three Fig. 15 contenders.
#[derive(Debug, Clone)]
pub enum DayStrategy {
    /// No power management anywhere.
    NoPowerManagement,
    /// TimeTrader on the servers; the DCN stays fully on ("TimeTrader
    /// doesn't save any DCN power", §V-B3).
    TimeTrader,
    /// Full EPRONS: EPRONS-Server plus per-epoch joint optimization over
    /// the given candidate network configurations.
    Eprons {
        /// Candidate network configurations for the joint optimizer.
        candidates: Vec<ConsolidationSpec>,
    },
}

impl DayStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DayStrategy::NoPowerManagement => "no-power-management",
            DayStrategy::TimeTrader => "timetrader",
            DayStrategy::Eprons { .. } => "eprons",
        }
    }
}

/// One epoch's record in the day timeline.
#[derive(Debug, Clone)]
pub struct DayRecord {
    /// Epoch midpoint, minutes since midnight.
    pub minute: f64,
    /// Search load as a fraction of peak.
    pub search_load: f64,
    /// Background traffic fraction used (the *predicted* value the
    /// controller acted on).
    pub background_util: f64,
    /// Measured power split.
    pub breakdown: PowerBreakdown,
    /// Active switches chosen for this epoch.
    pub active_switches: usize,
    /// Identities of the active switches (node indices), for churn
    /// accounting across epochs.
    pub active_switch_ids: Vec<usize>,
    /// Measured end-to-end p95, seconds.
    pub e2e_p95_s: f64,
    /// Whether the epoch met the SLA.
    pub feasible: bool,
    /// Switches down at any point during the epoch (node indices: those
    /// already down at the epoch start, then mid-epoch failures in event
    /// order). Empty on a failure-free epoch.
    pub failed_switches: Vec<usize>,
    /// Boot energy charged inside this epoch for repairs and recoveries
    /// (joules) — §IV-B's 72.52 s power-on cost per woken switch.
    pub boot_energy_j: f64,
    /// Worst degradation-ladder rung a mid-epoch failure forced, if any.
    /// `None` on epochs that ran their chosen configuration untouched.
    pub degradation: Option<DegradationStage>,
    /// Megabit-minutes of background demand the online controller
    /// deferred out of this epoch (always 0 in epoch-batch mode).
    pub deferred_mbps_min: f64,
    /// Megabit-minutes of previously deferred demand drained into this
    /// epoch's trough (always 0 in epoch-batch mode).
    pub drained_mbps_min: f64,
    /// True when the hysteresis filter held the previous epoch's
    /// configuration against the optimizer's preferred pick.
    pub held_by_hysteresis: bool,
}

/// Day-simulation knobs.
#[derive(Debug, Clone)]
pub struct DayConfig {
    /// Optimization period in minutes (10 in the paper).
    pub epoch_minutes: usize,
    /// Simulated seconds of queries per epoch evaluation.
    pub sim_seconds: f64,
    /// Per-ISN utilization at peak search load.
    pub peak_utilization: f64,
    /// Master seed.
    pub seed: u64,
    /// Carry each epoch's winning configuration into the next epoch's
    /// ladder search as an ordering hint (EPRONS strategy only). Epochs
    /// then run sequentially instead of fanning out, trading epoch-level
    /// parallelism for warm-started searches; the timeline itself is
    /// bit-identical either way (the hint never changes a choice, only
    /// the evaluation order). The hint is dropped whenever the failure
    /// mask or the demand fingerprint moved since the previous epoch.
    pub warm_start: bool,
    /// Search-load trace for the day. Defaults to the paper's sinusoidal
    /// diurnal profile; swap in a [`TraceScenario::FlashCrowd`] or
    /// [`TraceScenario::Step`] to stress the controller adversarially.
    pub search_trace: TraceScenario,
    /// Background-traffic trace (same default/options as `search_trace`).
    pub background_trace: TraceScenario,
    /// Online streaming-controller extensions (hysteresis + deferral).
    /// `None` keeps the epoch-batch loop; `Some` forces sequential
    /// epochs with cross-epoch state.
    pub online: Option<OnlineConfig>,
    /// Day-scoped evaluation semantics: constant master seed across the
    /// day's epochs and demand quantized onto the warm-start grid, which
    /// makes cross-epoch context/cache reuse sound (see
    /// [`DayScopeConfig`]). `None` keeps the legacy per-epoch-seed
    /// behavior bit for bit.
    pub day_scope: Option<DayScopeConfig>,
}

impl Default for DayConfig {
    fn default() -> Self {
        DayConfig {
            epoch_minutes: 10,
            sim_seconds: 4.0,
            peak_utilization: 0.5,
            seed: 2018,
            warm_start: true,
            search_trace: TraceScenario::Diurnal(DiurnalProfile::search_load()),
            background_trace: TraceScenario::Diurnal(DiurnalProfile::background_traffic()),
            online: None,
            day_scope: None,
        }
    }
}

/// The warm-start demand grid (5 % utilization steps). Day-scoped runs
/// snap every epoch's demand onto it so adjacent epochs at the same
/// operating point present bit-identical scenario specs.
fn quantize_demand(x: f64) -> f64 {
    (x / 0.05).round() * 0.05
}

/// Cross-epoch hysteresis state: the configuration that was live when
/// the previous epoch closed, plus per-switch cooldown counters.
struct HysteresisState {
    knobs: HysteresisConfig,
    model: TransitionModel,
    /// Epoch length in seconds (the payback horizon's time unit).
    epoch_s: f64,
    /// Spec live at the end of the previous epoch.
    prev_spec: Option<ConsolidationSpec>,
    /// Active switch ids at the end of the previous epoch.
    prev_ids: Option<Vec<usize>>,
    /// Switch id → epochs of quarantine left after its last toggle.
    cooldown: BTreeMap<usize, usize>,
}

impl HysteresisState {
    fn new(knobs: HysteresisConfig, model: TransitionModel, epoch_s: f64) -> Self {
        HysteresisState {
            knobs,
            model,
            epoch_s,
            prev_spec: None,
            prev_ids: None,
            cooldown: BTreeMap::new(),
        }
    }

    /// True if any switch the churn would toggle is still quarantined.
    fn any_cooling(&self, churn: &Churn) -> bool {
        churn
            .turned_on
            .iter()
            .chain(churn.turned_off.iter())
            .any(|s| self.cooldown.get(s).is_some_and(|&c| c > 0))
    }

    /// Closes an epoch: ages every cooldown by one epoch, then quarantines
    /// the switches this epoch actually toggled (whether the toggle came
    /// from the optimizer or from the mid-epoch failure ladder).
    fn finish_epoch(&mut self, spec: ConsolidationSpec, live_ids: &[usize]) {
        self.cooldown.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
        if let Some(prev_ids) = &self.prev_ids {
            let churn = Churn::between(prev_ids, live_ids);
            for &s in churn.turned_on.iter().chain(churn.turned_off.iter()) {
                if self.knobs.cooldown_epochs > 0 {
                    self.cooldown.insert(s, self.knobs.cooldown_epochs);
                }
            }
        }
        self.prev_ids = Some(live_ids.to_vec());
        self.prev_spec = Some(spec);
    }
}

/// One slab of deferred background demand waiting for a trough.
struct DeferredSlab {
    mbps_min: f64,
    /// Last epoch index at which this slab may still drain.
    deadline_epoch: usize,
}

/// What the deferral queue did to one epoch's demand.
struct DeferralOutcome {
    /// Background utilization the controller actually admits this epoch.
    bg: f64,
    enqueued_mbps_min: f64,
    drained_mbps_min: f64,
}

/// The bounded deferral queue: FIFO slabs of shaved background demand in
/// megabit-minutes, each with a slack deadline. Conservation invariant
/// (checked by `obsctl audit` over the journal): every megabit-minute
/// enqueued is eventually drained or dropped — never silently lost.
struct DeferralQueue {
    knobs: DeferralConfig,
    /// Converts background *utilization* to megabit-minutes per epoch.
    util_to_mbps_min: f64,
    slabs: VecDeque<DeferredSlab>,
    depth_mbps_min: f64,
}

impl DeferralQueue {
    fn new(knobs: DeferralConfig, link_capacity_mbps: f64, epoch_minutes: f64) -> Self {
        DeferralQueue {
            knobs,
            util_to_mbps_min: link_capacity_mbps * epoch_minutes,
            slabs: VecDeque::new(),
            depth_mbps_min: 0.0,
        }
    }

    /// Applies the queue to epoch `e`'s predicted background demand:
    /// expired slabs drop first, then demand above the defer threshold is
    /// shaved into the queue (bounded by the per-epoch fraction and the
    /// queue cap), or — in a trough — queued slabs drain greedily up to
    /// the drain headroom. Emits the journal events the conservation
    /// audit sums.
    fn step(&mut self, e: usize, predicted_bg: f64, obs_on: bool) -> DeferralOutcome {
        // Uniform slack makes deadlines FIFO-monotone: expiry only ever
        // needs to look at the front.
        let mut dropped = 0.0;
        while self.slabs.front().is_some_and(|s| s.deadline_epoch < e) {
            let slab = self.slabs.pop_front().expect("front exists");
            dropped += slab.mbps_min;
            self.depth_mbps_min -= slab.mbps_min;
        }
        let mut bg = predicted_bg;
        let mut enqueued = 0.0;
        let mut drained = 0.0;
        if bg > self.knobs.defer_threshold {
            let want = (bg - self.knobs.defer_threshold).min(bg * self.knobs.max_defer_fraction);
            let room = (self.knobs.queue_cap_mbps_min - self.depth_mbps_min).max(0.0);
            let amount_util = want.min(room / self.util_to_mbps_min);
            if amount_util > 1e-9 {
                enqueued = amount_util * self.util_to_mbps_min;
                self.slabs.push_back(DeferredSlab {
                    mbps_min: enqueued,
                    deadline_epoch: e + self.knobs.slack_epochs,
                });
                self.depth_mbps_min += enqueued;
                bg -= amount_util;
                if obs_on {
                    eprons_obs::record(eprons_obs::Event::DeferralEnqueued {
                        epoch: e as u64,
                        mbps_min: enqueued,
                        queue_mbps_min: self.depth_mbps_min,
                        slack_epochs: self.knobs.slack_epochs as u64,
                    });
                }
            }
        } else if bg < self.knobs.drain_headroom {
            let mut head = (self.knobs.drain_headroom - bg) * self.util_to_mbps_min;
            while head > 1e-9 {
                let Some(front) = self.slabs.front_mut() else {
                    break;
                };
                let take = front.mbps_min.min(head);
                front.mbps_min -= take;
                self.depth_mbps_min -= take;
                drained += take;
                head -= take;
                if front.mbps_min <= 1e-9 {
                    // Absorb the sub-nanobit residue into the drain so the
                    // running depth and the slab sum cannot drift apart.
                    drained += front.mbps_min;
                    self.depth_mbps_min -= front.mbps_min;
                    self.slabs.pop_front();
                }
            }
            bg += drained / self.util_to_mbps_min;
        }
        if obs_on && (drained > 0.0 || dropped > 0.0) {
            eprons_obs::record(eprons_obs::Event::DeferralDrained {
                epoch: e as u64,
                drained_mbps_min: drained,
                dropped_mbps_min: dropped,
                queue_mbps_min: self.depth_mbps_min,
            });
        }
        DeferralOutcome {
            bg,
            enqueued_mbps_min: enqueued,
            drained_mbps_min: drained,
        }
    }

    /// End of day: whatever is still queued missed its window and is
    /// dropped, so the journal's conservation sum closes exactly.
    fn flush(&mut self, e: usize, obs_on: bool) {
        if self.slabs.is_empty() {
            return;
        }
        let dropped = self.depth_mbps_min;
        self.slabs.clear();
        self.depth_mbps_min = 0.0;
        if obs_on {
            eprons_obs::record(eprons_obs::Event::DeferralDrained {
                epoch: e as u64,
                drained_mbps_min: 0.0,
                dropped_mbps_min: dropped,
                queue_mbps_min: 0.0,
            });
        }
    }
}

/// Replays one diurnal day under a strategy; returns one record per epoch.
///
/// Equivalent to [`simulate_day_with_failures`] with the empty schedule
/// (bit-identical: the failure machinery is pure data the epochs consult,
/// and an empty schedule leaves every epoch's evaluation untouched).
pub fn simulate_day(
    cfg: &ClusterConfig,
    strategy: &DayStrategy,
    day: &DayConfig,
) -> Vec<DayRecord> {
    simulate_day_with_failures(cfg, strategy, day, &FailureSchedule::none())
}

/// [`simulate_day`] against a switch-failure schedule (the §IV-B regime
/// the paper defers to "backup paths").
///
/// Per epoch: switches the schedule marks down at the epoch start are
/// masked out of the candidate ladder, so the optimizer never routes
/// through dead hardware. A failure *inside* the epoch walks the
/// degradation ladder — (1) in-epoch repair of the victim flows, waking
/// backup switches and charging their boot energy; (2) if repair fails,
/// immediate re-consolidation with the failure masked; (3) the all-on
/// configuration minus failures; (4) as a last resort the epoch runs
/// unprotected with `feasible` forced false. Power within an
/// event-carrying epoch is time-weighted across the segments between
/// events; a crashed switch keeps drawing its hung power until the next
/// epoch boundary. A recover event charges the §IV-B boot energy; the
/// recovered switch rejoins the candidate pool at the next epoch
/// boundary (its 72.52 s boot makes it useless mid-epoch anyway).
///
/// Epochs stay independent given the schedule (pure data), so the day
/// still evaluates in parallel and is a pure function of its arguments.
pub fn simulate_day_with_failures(
    cfg: &ClusterConfig,
    strategy: &DayStrategy,
    day: &DayConfig,
    schedule: &FailureSchedule,
) -> Vec<DayRecord> {
    let mut rng = SimRng::seed_from_u64(day.seed);
    let search = day.search_trace.sample_day(&mut rng.fork(1));
    let background = day.background_trace.sample_day(&mut rng.fork(2));
    let epochs = MINUTES_PER_DAY / day.epoch_minutes;
    let obs_on = eprons_obs::enabled();
    // Root of the day's causal-span tree; epoch spans attach to it by id
    // because the cold path fans epochs out across worker threads.
    let mut day_span = eprons_obs::Span::enter("day");
    day_span.note(format!("strategy={} epochs={epochs}", strategy.name()));
    let day_span_id = day_span.id();
    if obs_on {
        eprons_obs::record(eprons_obs::Event::DayStart {
            strategy: strategy.name().to_string(),
            epochs: epochs as u64,
        });
        for ev in schedule.events() {
            eprons_obs::record(eprons_obs::Event::FailureInjected {
                switch: ev.switch as u64,
                minute: ev.minute,
                kind: ev.kind.label().to_string(),
            });
        }
    }

    // The controller predicts each epoch's background demand as the 90th
    // percentile of the previous epoch's per-minute observations (§II).
    let mut predictor = DemandPredictor::paper_default(1);
    let mut predicted_bg: Vec<f64> = Vec::with_capacity(epochs);
    for e in 0..epochs {
        let start = e * day.epoch_minutes;
        // Act on the last epoch's prediction (first epoch: observe only).
        let predicted = predictor.predict(FlowId(0)).unwrap_or(background[start]);
        predicted_bg.push(predicted.clamp(0.01, 0.95));
        for &obs in &background[start..start + day.epoch_minutes] {
            predictor.observe(FlowId(0), obs);
        }
        predictor.roll_epoch();
    }

    // Epochs are independent given their inputs: evaluate in parallel.
    let inputs: Vec<(usize, f64, f64)> = (0..epochs)
        .map(|e| {
            let mid = (e * day.epoch_minutes) as f64 + day.epoch_minutes as f64 / 2.0;
            let load = search[(mid as usize).min(MINUTES_PER_DAY - 1)];
            (e, mid, load)
        })
        .collect();

    // One epoch's full evaluation, optionally warm-started with the
    // previous epoch's winning configuration (an ordering hint for the
    // pruned ladder search — never a result change). Returns the record
    // plus the configuration that was actually live when the epoch ended,
    // which is what the next epoch's search should start from.
    let eval_epoch = |e: usize,
                      minute: f64,
                      load: f64,
                      bg: f64,
                      warm_hint: Option<ConsolidationSpec>,
                      hyst: Option<&mut HysteresisState>,
                      day_ctx: Option<&DayContext>|
     -> (DayRecord, ConsolidationSpec) {
        let mut epoch_span = eprons_obs::Span::enter_under(day_span_id, "epoch");
        // Day scope: a constant master seed and grid-quantized demand, so
        // epochs at the same operating point present bit-identical specs.
        // The utilization floor rises to one grid step (a zero-query
        // epoch has no tail to measure); quantization applies on the
        // rebuild baseline exactly as on the incremental path, which is
        // what makes the two bit-comparable.
        let day_scoped = day.day_scope.is_some();
        let (util, bg) = if day_scoped {
            (
                quantize_demand((day.peak_utilization * load).max(0.02)).max(0.05),
                quantize_demand(bg),
            )
        } else {
            ((day.peak_utilization * load).max(0.02), bg)
        };
        if obs_on {
            eprons_obs::record(eprons_obs::Event::EpochStart {
                epoch: e as u64,
                minute,
                search_load: load,
                background_util: bg,
            });
        }
        let template = ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn,
            server_utilization: util,
            background_util: bg,
            duration_s: day.sim_seconds,
            warmup_s: 0.0,
            seed: if day_scoped {
                day.seed
            } else {
                day.seed ^ (e as u64).wrapping_mul(0x9E37_79B9)
            },
        };
        let run = match strategy {
            DayStrategy::NoPowerManagement => ClusterRun {
                scheme: ServerScheme::NoPowerManagement,
                ..template
            },
            DayStrategy::TimeTrader => ClusterRun {
                scheme: ServerScheme::TimeTrader,
                // Let the 5 s feedback loop settle before scoring.
                warmup_s: 60.0,
                ..template
            },
            DayStrategy::Eprons { .. } => template,
        };
        let scheme = run.scheme;
        let start = (e * day.epoch_minutes) as f64;
        let end = start + day.epoch_minutes as f64;
        // Switches down when the epoch opens are masked out of every
        // candidate this epoch considers.
        let mut mask: Vec<NodeId> = schedule.failed_at(start).into_iter().map(NodeId).collect();
        let mut failed_switches: Vec<usize> = mask.iter().map(|n| n.0).collect();

        // One scenario context per epoch; the optimizer's candidate
        // ladder shares it, so each candidate pays only consolidation +
        // latency sampling + DVFS simulation. Incremental day-scoped
        // runs go further and fetch the context from the day cache,
        // reviving earlier epochs' contexts (plan cache included).
        let ctx = match day_ctx {
            Some(dc) => dc.context_for(&ScenarioSpec::of_run(&run)),
            None => ScenarioContext::for_template(cfg, &run),
        };
        let (mut result, mut base_feasible, mut degradation, mut spec): (
            ClusterRunResult,
            bool,
            Option<DegradationStage>,
            ConsolidationSpec,
        ) = match strategy {
            DayStrategy::Eprons { candidates } => {
                match optimize_in_context_pruned(&ctx, scheme, candidates, &mask, warm_hint).0 {
                    Some(c) => (c.result, c.feasible, None, c.spec),
                    None => {
                        // The mask leaves no routable candidate (e.g. an
                        // edge failure partitioning hosts): run unmasked
                        // over broken hardware, SLA forced false.
                        let c = optimize_in_context(&ctx, scheme, candidates)
                            .0
                            .expect("at least one candidate evaluates");
                        (c.result, false, Some(DegradationStage::Unprotected), c.spec)
                    }
                }
            }
            _ => match ctx.evaluate_masked(scheme, ConsolidationSpec::AllOn, &mask) {
                Ok(r) => {
                    let f = r.is_feasible(cfg);
                    (r, f, None, ConsolidationSpec::AllOn)
                }
                Err(_) => {
                    let r = ctx
                        .evaluate(scheme, ConsolidationSpec::AllOn)
                        .expect("all-on never fails");
                    (
                        r,
                        false,
                        Some(DegradationStage::Unprotected),
                        ConsolidationSpec::AllOn,
                    )
                }
            },
        };
        // --- Online hysteresis: commit the optimizer's reconfiguration
        // only when the priced transition energy pays back within the
        // configured horizon AND no toggled switch is still cooling down.
        // Holding is never allowed to trade an SLA-feasible pick for an
        // infeasible hold.
        let mut held_by_hysteresis = false;
        if let Some(h) = hyst {
            if degradation.is_none() {
                if let Some(prev_spec) = h.prev_spec {
                    if prev_spec != spec {
                        if let Ok(hold) = ctx.evaluate_masked(scheme, prev_spec, &mask) {
                            let hold_feasible = hold.is_feasible(cfg);
                            let churn =
                                Churn::between(&hold.active_switch_ids, &result.active_switch_ids);
                            let saving_w = hold.breakdown.total_w() - result.breakdown.total_w();
                            let transition_j = h.model.transition_energy_j(&churn);
                            let horizon_s = h.knobs.payback_horizon_epochs as f64 * h.epoch_s;
                            let pays_back = worth_switching(
                                &h.model,
                                &churn,
                                saving_w,
                                horizon_s,
                                h.knobs.margin,
                            );
                            // A cooldown hold is anti-flap insurance; it
                            // is only worth buying while holding is
                            // cheap — one epoch of the forgone power
                            // saving must not exceed the transition
                            // energy the hold avoids re-paying.
                            let cooling = h.any_cooling(&churn)
                                && saving_w.max(0.0) * h.epoch_s <= h.knobs.margin * transition_j;
                            let must_switch = base_feasible && !hold_feasible;
                            if !must_switch && hold_feasible && (!pays_back || cooling) {
                                if obs_on {
                                    eprons_obs::registry()
                                        .counter("core.hysteresis.holds")
                                        .inc();
                                    eprons_obs::record(eprons_obs::Event::HysteresisHold {
                                        epoch: e as u64,
                                        desired: spec.label(),
                                        held: prev_spec.label(),
                                        saving_w,
                                        transition_j,
                                        reason: if cooling { "cooldown" } else { "payback" }
                                            .to_string(),
                                    });
                                }
                                result = hold;
                                spec = prev_spec;
                                base_feasible = hold_feasible;
                                held_by_hysteresis = true;
                            }
                        }
                    }
                }
            }
        }
        let mut choice_label = spec.label();
        let mut rec = DayRecord {
            minute,
            search_load: load,
            background_util: bg,
            breakdown: result.breakdown,
            active_switches: result.active_switches,
            active_switch_ids: result.active_switch_ids.clone(),
            e2e_p95_s: result.e2e_latency.p95_s,
            feasible: base_feasible,
            failed_switches: Vec::new(),
            boot_energy_j: 0.0,
            degradation: None,
            deferred_mbps_min: 0.0,
            drained_mbps_min: 0.0,
            held_by_hysteresis,
        };

        // --- Mid-epoch events: walk the degradation ladder. ---
        let events = schedule.events_in(start, end);
        let mut boot_energy_j = 0.0;
        if !events.is_empty() {
            let d = &*ctx.data;
            let policy = DegradationPolicy {
                attempt_repair: cfg.failure.attempt_repair,
                attempt_reconsolidate: cfg.failure.attempt_reconsolidate,
                transition: cfg.failure.transition.clone(),
            };
            // The live assignment repairs mutate in place (rung 1).
            let mut assignment: Option<Assignment> = ctx
                .plan_masked(spec, &mask)
                .ok()
                .map(|p| p.assignment.clone());
            let active_ids = |a: &Assignment| -> Vec<usize> {
                d.ft.topology()
                    .switches()
                    .into_iter()
                    .filter(|&n| a.state().node_on(n))
                    .map(|n| n.0)
                    .collect()
            };
            // Time-weighted power over the segments between events; a
            // crashed switch's hung draw persists to the epoch boundary.
            let mut acc_server = 0.0;
            let mut acc_net = 0.0;
            let mut cur_server = rec.breakdown.server_w;
            let mut cur_net = rec.breakdown.network_w;
            let mut dead_draw_w = 0.0;
            let mut last_m = start;
            let mut cur_ids = rec.active_switch_ids.clone();
            let mut p95 = rec.e2e_p95_s;
            let mut feasible = rec.feasible;
            let worsen = |deg: &mut Option<DegradationStage>, stage: DegradationStage| {
                *deg = Some(deg.map_or(stage, |have| have.max(stage)));
            };
            for ev in &events {
                acc_server += cur_server * (ev.minute - last_m);
                acc_net += cur_net * (ev.minute - last_m);
                if obs_on && ev.minute > last_m {
                    eprons_obs::record(eprons_obs::Event::PowerSegment {
                        epoch: e as u64,
                        from_min: last_m,
                        to_min: ev.minute,
                        server_w: cur_server,
                        network_w: cur_net,
                    });
                }
                last_m = ev.minute;
                match ev.kind {
                    FailureEventKind::Recover => {
                        // The switch boots (72.52 s, §IV-B) and rejoins
                        // the candidate pool at the next epoch boundary;
                        // routing inside this epoch keeps its mask.
                        boot_energy_j += policy.recovery_boot_energy_j();
                        if obs_on {
                            eprons_obs::record(eprons_obs::Event::RepairOutcome {
                                switch: ev.switch as u64,
                                minute: ev.minute,
                                outcome: "recovered".to_string(),
                                rerouted: 0,
                                woken: 1,
                                boot_energy_j: policy.recovery_boot_energy_j(),
                            });
                        }
                    }
                    FailureEventKind::Fail => {
                        if mask.contains(&NodeId(ev.switch)) {
                            // Already down at the epoch start (an event
                            // exactly on the boundary shows up in both
                            // the mask and this window).
                            continue;
                        }
                        mask.push(NodeId(ev.switch));
                        mask.sort_unstable();
                        failed_switches.push(ev.switch);
                        // Rung 1: re-route the victims in place.
                        let mut handled = false;
                        if policy.attempt_repair {
                            if let Some(a) = assignment.as_mut() {
                                match policy.try_repair(
                                    a,
                                    &d.ft,
                                    &d.flows,
                                    NodeId(ev.switch),
                                    &cfg.net_power,
                                ) {
                                    Ok(rep) => {
                                        boot_energy_j += rep.boot_energy_j;
                                        dead_draw_w += rep.dead_draw_w;
                                        cur_net =
                                            a.network_power_w(&d.ft, &cfg.net_power) + dead_draw_w;
                                        cur_ids = active_ids(a);
                                        worsen(&mut degradation, DegradationStage::Repaired);
                                        if obs_on {
                                            eprons_obs::record(eprons_obs::Event::RepairOutcome {
                                                switch: ev.switch as u64,
                                                minute: ev.minute,
                                                outcome: "repaired".to_string(),
                                                rerouted: rep.rerouted.len() as u64,
                                                woken: rep.woken.len() as u64,
                                                boot_energy_j: rep.boot_energy_j,
                                            });
                                        }
                                        handled = true;
                                    }
                                    Err(_) => {
                                        if obs_on {
                                            eprons_obs::record(eprons_obs::Event::RepairOutcome {
                                                switch: ev.switch as u64,
                                                minute: ev.minute,
                                                outcome: "repair-failed".to_string(),
                                                rerouted: 0,
                                                woken: 0,
                                                boot_energy_j: 0.0,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        if !handled {
                            // Rung 2: re-consolidate around the failure;
                            // rung 3: the all-on spec minus failures.
                            let rerun: Option<(
                                ConsolidationSpec,
                                ClusterRunResult,
                                bool,
                                DegradationStage,
                            )> = (if policy.attempt_reconsolidate {
                                match strategy {
                                    DayStrategy::Eprons { candidates } => {
                                        optimize_in_context_pruned(
                                            &ctx, scheme, candidates, &mask, None,
                                        )
                                        .0
                                        .map(|c| {
                                            (
                                                c.spec,
                                                c.result,
                                                c.feasible,
                                                DegradationStage::Reconsolidated,
                                            )
                                        })
                                    }
                                    _ => ctx
                                        .evaluate_masked(scheme, ConsolidationSpec::AllOn, &mask)
                                        .ok()
                                        .map(|r| {
                                            let f = r.is_feasible(cfg);
                                            (
                                                ConsolidationSpec::AllOn,
                                                r,
                                                f,
                                                DegradationStage::Reconsolidated,
                                            )
                                        }),
                                }
                            } else {
                                None
                            })
                            .or_else(|| {
                                ctx.evaluate_masked(scheme, ConsolidationSpec::AllOn, &mask)
                                    .ok()
                                    .map(|r| {
                                        let f = r.is_feasible(cfg);
                                        (
                                            ConsolidationSpec::AllOn,
                                            r,
                                            f,
                                            DegradationStage::AllOnFallback,
                                        )
                                    })
                            });
                            if let Some((nspec, r, f, stage)) = rerun {
                                let woken =
                                    Churn::between(&cur_ids, &r.active_switch_ids).turned_on;
                                let rung_boot_j = woken.len() as f64
                                    * policy.transition.boot_power_w
                                    * policy.transition.power_on_s;
                                boot_energy_j += rung_boot_j;
                                // The hung switch keeps drawing until the
                                // epoch-boundary power cycle.
                                dead_draw_w += cfg.net_power.switch_w;
                                cur_server = r.breakdown.server_w;
                                cur_net = r.breakdown.network_w + dead_draw_w;
                                cur_ids = r.active_switch_ids.clone();
                                p95 = p95.max(r.e2e_latency.p95_s);
                                feasible = feasible && f;
                                assignment = ctx
                                    .plan_masked(nspec, &mask)
                                    .ok()
                                    .map(|p| p.assignment.clone());
                                spec = nspec;
                                choice_label = spec.label();
                                worsen(&mut degradation, stage);
                                if obs_on {
                                    // Journal the rung's boot charge so the
                                    // audit can reconcile every joule of
                                    // `boot_energy_j` against RepairOutcome
                                    // events, whichever rung charged it.
                                    eprons_obs::record(eprons_obs::Event::RepairOutcome {
                                        switch: ev.switch as u64,
                                        minute: ev.minute,
                                        outcome: stage.label().to_string(),
                                        rerouted: 0,
                                        woken: woken.len() as u64,
                                        boot_energy_j: rung_boot_j,
                                    });
                                    eprons_obs::record(eprons_obs::Event::DegradedEpoch {
                                        epoch: e as u64,
                                        reason: format!(
                                            "switch {} failed at minute {:.0}; repair failed",
                                            ev.switch, ev.minute
                                        ),
                                        fallback: stage.label().to_string(),
                                    });
                                }
                            } else {
                                // Rung 4: nothing routes around the mask.
                                feasible = false;
                                worsen(&mut degradation, DegradationStage::Unprotected);
                                if obs_on {
                                    eprons_obs::record(eprons_obs::Event::RepairOutcome {
                                        switch: ev.switch as u64,
                                        minute: ev.minute,
                                        outcome: DegradationStage::Unprotected.label().to_string(),
                                        rerouted: 0,
                                        woken: 0,
                                        boot_energy_j: 0.0,
                                    });
                                    eprons_obs::record(eprons_obs::Event::DegradedEpoch {
                                        epoch: e as u64,
                                        reason: format!(
                                            "switch {} failed at minute {:.0}; no fallback routes",
                                            ev.switch, ev.minute
                                        ),
                                        fallback: DegradationStage::Unprotected.label().to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            acc_server += cur_server * (end - last_m);
            acc_net += cur_net * (end - last_m);
            if obs_on && end > last_m {
                eprons_obs::record(eprons_obs::Event::PowerSegment {
                    epoch: e as u64,
                    from_min: last_m,
                    to_min: end,
                    server_w: cur_server,
                    network_w: cur_net,
                });
            }
            let span = end - start;
            rec.breakdown = PowerBreakdown {
                server_w: acc_server / span,
                network_w: acc_net / span,
            };
            rec.active_switches = cur_ids.len();
            rec.active_switch_ids = cur_ids;
            rec.e2e_p95_s = p95;
            rec.feasible = feasible;
        }
        rec.failed_switches = failed_switches;
        rec.boot_energy_j = boot_energy_j;
        rec.degradation = degradation;
        // Clean epochs carry one power segment covering the whole window
        // (event epochs journaled theirs between events above); together
        // the segments must integrate to the day energy (`obsctl audit`).
        if obs_on && events.is_empty() {
            eprons_obs::record(eprons_obs::Event::PowerSegment {
                epoch: e as u64,
                from_min: start,
                to_min: end,
                server_w: rec.breakdown.server_w,
                network_w: rec.breakdown.network_w,
            });
        }
        epoch_span.note(format!(
            "epoch={e} choice={choice_label} feasible={} degradation={}",
            rec.feasible,
            rec.degradation.map_or("-", |d| d.label()),
        ));
        if obs_on {
            eprons_obs::record(eprons_obs::Event::EpochSnapshot(eprons_obs::Snapshot {
                epoch: e as u64,
                minute: rec.minute,
                strategy: strategy.name().to_string(),
                choice: choice_label,
                server_w: rec.breakdown.server_w,
                network_w: rec.breakdown.network_w,
                active_switches: rec.active_switches as u64,
                e2e_p95_us: rec.e2e_p95_s * 1.0e6,
                feasible: rec.feasible,
                boot_energy_j: rec.boot_energy_j,
            }));
        }
        (rec, spec)
    };

    // The online streaming controller runs its epochs strictly in
    // sequence: per-switch cooldowns, the hysteresis filter, and the
    // deferral queue all carry state across epoch boundaries. The
    // warm-started batch day also runs sequentially (each search starts
    // from the previous epoch's winner); the cold batch day fans epochs
    // out. Candidate- and server-level fan-out inside an epoch fills
    // the thread budget in every mode, and each mode's timeline is a
    // deterministic pure function of its inputs.
    let warm = day.warm_start && matches!(strategy, DayStrategy::Eprons { .. });
    // Day-scoped incremental machinery: the day-level context cache and
    // the process-wide server-eval memo, both scoped to this day. Only
    // the sequential modes reuse contexts — the cold parallel branch
    // rebuilds per epoch (that rebuild *is* the baseline the replay
    // harness measures the incremental path against).
    let incremental = day.day_scope.as_ref().is_some_and(|ds| ds.incremental);
    let day_cache = day
        .day_scope
        .as_ref()
        .filter(|ds| ds.incremental)
        .map(|ds| DayContext::new(cfg, ds.max_slots));
    // Counter snapshot so the day-end report shows this day's result-
    // memo traffic, not the process total.
    let eval_hits_0 = eprons_obs::registry().counter("core.evalcache.hits").get();
    let eval_miss_0 = eprons_obs::registry()
        .counter("core.evalcache.misses")
        .get();
    if incremental {
        eprons_server::clear_serveval_memo();
        eprons_server::set_serveval_memo_enabled(true);
        crate::scenario::set_eval_cache_enabled(true);
    }
    let records: Vec<DayRecord> = if let Some(online) = day.online.clone() {
        let epoch_s = day.epoch_minutes as f64 * 60.0;
        let mut hyst = online
            .hysteresis
            .map(|knobs| HysteresisState::new(knobs, cfg.failure.transition.clone(), epoch_s));
        let mut queue = online.deferral.map(|knobs| {
            DeferralQueue::new(knobs, cfg.link_capacity_mbps, day.epoch_minutes as f64)
        });
        let mut out = Vec::with_capacity(inputs.len());
        // The previous winner is always a legal ordering hint here: the
        // hint can never change a choice, and online epochs are
        // sequential anyway.
        let mut hint: Option<ConsolidationSpec> = None;
        for &(e, minute, load) in &inputs {
            let step = match queue.as_mut() {
                Some(q) => q.step(e, predicted_bg[e], obs_on),
                None => DeferralOutcome {
                    bg: predicted_bg[e],
                    enqueued_mbps_min: 0.0,
                    drained_mbps_min: 0.0,
                },
            };
            let (mut rec, spec) =
                eval_epoch(e, minute, load, step.bg, hint, hyst.as_mut(), day_cache.as_ref());
            rec.deferred_mbps_min = step.enqueued_mbps_min;
            rec.drained_mbps_min = step.drained_mbps_min;
            if let Some(h) = hyst.as_mut() {
                h.finish_epoch(spec, &rec.active_switch_ids);
            }
            hint = Some(spec);
            out.push(rec);
        }
        if let Some(q) = queue.as_mut() {
            q.flush(inputs.len(), obs_on);
        }
        out
    } else if warm {
        let mut out = Vec::with_capacity(inputs.len());
        // The epoch's world fingerprint: failed-switch set plus the
        // quantized demand point. A hint only survives while it matches.
        type EpochFingerprint = (Vec<usize>, i64, i64);
        let mut prev: Option<(ConsolidationSpec, EpochFingerprint)> = None;
        for &(e, minute, load) in &inputs {
            // The hint survives only while the world it was chosen in
            // does: same failure mask, same (quantized) demand point.
            let start = (e * day.epoch_minutes) as f64;
            let util = (day.peak_utilization * load).max(0.02);
            let q = |x: f64| (x / 0.05).round() as i64;
            let fp = (schedule.failed_at(start), q(util), q(predicted_bg[e]));
            let hint = match &prev {
                Some((spec, pfp)) if *pfp == fp => Some(*spec),
                _ => None,
            };
            if obs_on {
                let reg = eprons_obs::registry();
                if let Some(h) = hint {
                    reg.counter("core.warmstart.hits").inc();
                    eprons_obs::record(eprons_obs::Event::WarmStartApplied {
                        epoch: e as u64,
                        hint: h.label(),
                    });
                } else if e > 0 {
                    reg.counter("core.warmstart.misses").inc();
                }
            }
            let (rec, spec) =
                eval_epoch(e, minute, load, predicted_bg[e], hint, None, day_cache.as_ref());
            prev = Some((spec, fp));
            out.push(rec);
        }
        out
    } else {
        parallel_map(&inputs, |&(e, minute, load)| {
            eval_epoch(e, minute, load, predicted_bg[e], None, None, None).0
        })
    };
    if incremental {
        eprons_server::set_serveval_memo_enabled(false);
        crate::scenario::set_eval_cache_enabled(false);
        if obs_on {
            if let Some(dc) = &day_cache {
                let s = dc.stats();
                eprons_obs::record(eprons_obs::Event::DayCacheReport {
                    cache: "core.daycache".to_string(),
                    hits: s.hits,
                    misses: s.misses,
                    evictions: s.evictions,
                    bytes: s.bytes,
                });
                eprons_obs::record(eprons_obs::Event::DayCacheReport {
                    cache: "core.evalcache".to_string(),
                    hits: eprons_obs::registry().counter("core.evalcache.hits").get()
                        - eval_hits_0,
                    misses: eprons_obs::registry()
                        .counter("core.evalcache.misses")
                        .get()
                        - eval_miss_0,
                    evictions: 0,
                    bytes: dc.eval_footprint_bytes(),
                });
            }
            let m = eprons_server::serveval_memo_stats();
            eprons_obs::record(eprons_obs::Event::DayCacheReport {
                cache: "server.serveval".to_string(),
                hits: m.hits,
                misses: m.misses,
                evictions: 0,
                bytes: m.bytes,
            });
        }
    }

    if obs_on {
        // Epoch-boundary churn: rebuild each epoch's NetworkState from its
        // active switch set and diff consecutive states, journaling the
        // links/switches toggled by every reconfiguration.
        let _churn_span = eprons_obs::Span::enter("day.churn");
        let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
        let topo = ft.topology();
        let state_of = |ids: &[usize]| {
            let active: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
            NetworkState::with_active_switches(topo, &active)
        };
        for w in records.windows(2) {
            let d =
                state_of(&w[0].active_switch_ids).delta(topo, &state_of(&w[1].active_switch_ids));
            eprons_obs::record(eprons_obs::Event::LinkStateChange {
                links_on: d.links_on as u64,
                links_off: d.links_off as u64,
                switches_on: d.switches_on as u64,
                switches_off: d.switches_off as u64,
            });
        }
        // Day-level energy roll-up the audit reconciles against the
        // per-epoch snapshots and power segments.
        eprons_obs::record(eprons_obs::Event::DayEnergy {
            strategy: strategy.name().to_string(),
            epochs: records.len() as u64,
            energy_j: day_total_energy_j(&records, day),
            boot_energy_j: records.iter().map(|r| r.boot_energy_j).sum(),
        });
    }
    drop(day_span);
    records
}

/// Reconfiguration churn between consecutive epochs of a day timeline.
pub fn day_churn(records: &[DayRecord]) -> Vec<Churn> {
    records
        .windows(2)
        .map(|w| Churn::between(&w[0].active_switch_ids, &w[1].active_switch_ids))
        .collect()
}

/// Total number of switch power toggles (on + off transitions) across a
/// day timeline — the scalar the hysteresis controller is graded on.
pub fn day_churn_count(records: &[DayRecord]) -> usize {
    day_churn(records)
        .iter()
        .map(|c| c.turned_on.len() + c.turned_off.len())
        .sum()
}

/// Total transition energy (joules) a day timeline pays under the given
/// switch transition model (§IV-B's deferred cost: 72.52 s power-on per
/// HPE switch). The paper ignores this with software switches; this
/// accounting quantifies what hardware would add.
pub fn day_transition_energy_j(records: &[DayRecord], model: &TransitionModel) -> f64 {
    day_churn(records)
        .iter()
        .map(|c| model.transition_energy_j(c))
        .sum()
}

/// Writes a day timeline as CSV (for external plotting): one row per
/// epoch with minute, loads, power split, switches, tail, feasibility,
/// plus the failure columns (`;`-joined failed switch ids or `-`, the
/// degradation-ladder rung or `-`, and in-epoch boot energy in joules)
/// and the online-controller columns (deferred/drained megabit-minutes
/// and whether hysteresis held the previous configuration).
pub fn save_day_csv(records: &[DayRecord], path: &std::path::Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "minute,search_load,background_util,server_w,network_w,total_w,active_switches,e2e_p95_ms,feasible,failed_switches,degradation,boot_energy_j,deferred_mbps_min,drained_mbps_min,held"
    )?;
    for r in records {
        let failed = if r.failed_switches.is_empty() {
            "-".to_string()
        } else {
            r.failed_switches
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(";")
        };
        writeln!(
            w,
            "{:.1},{:.4},{:.4},{:.2},{:.2},{:.2},{},{:.3},{},{},{},{:.1},{:.3},{:.3},{}",
            r.minute,
            r.search_load,
            r.background_util,
            r.breakdown.server_w,
            r.breakdown.network_w,
            r.breakdown.total_w(),
            r.active_switches,
            r.e2e_p95_s * 1.0e3,
            r.feasible,
            failed,
            r.degradation.map_or("-", |d| d.label()),
            r.boot_energy_j,
            r.deferred_mbps_min,
            r.drained_mbps_min,
            r.held_by_hysteresis,
        )?;
    }
    w.flush()
}

/// Total energy (joules) a day timeline consumes: each epoch's measured
/// total power held for the epoch length, plus any boot energy the epoch
/// charged for repairs and recoveries. The Fig. 15 currency for
/// comparing strategies over a whole day.
pub fn day_total_energy_j(records: &[DayRecord], day: &DayConfig) -> f64 {
    let epoch_s = day.epoch_minutes as f64 * 60.0;
    records
        .iter()
        .map(|r| r.breakdown.total_w() * epoch_s + r.boot_energy_j)
        .sum()
}

/// Average power breakdown over a day timeline.
pub fn day_average(records: &[DayRecord]) -> PowerBreakdown {
    let n = records.len().max(1) as f64;
    PowerBreakdown {
        server_w: records.iter().map(|r| r.breakdown.server_w).sum::<f64>() / n,
        network_w: records.iter().map(|r| r.breakdown.network_w).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::aggregation_candidates;

    fn quick_day() -> DayConfig {
        DayConfig {
            epoch_minutes: 240, // 6 epochs only, for test speed
            sim_seconds: 2.0,
            peak_utilization: 0.5,
            seed: 99,
            warm_start: true,
            ..DayConfig::default()
        }
    }

    #[test]
    fn day_produces_one_record_per_epoch() {
        let cfg = ClusterConfig::default();
        let recs = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &quick_day());
        assert_eq!(recs.len(), 6);
        assert!(recs.windows(2).all(|w| w[0].minute < w[1].minute));
        // Full network all day.
        assert!(recs.iter().all(|r| r.active_switches == 20));
    }

    #[test]
    fn eprons_day_saves_power_vs_no_pm() {
        let cfg = ClusterConfig::default();
        let day = quick_day();
        let nopm = day_average(&simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day));
        let eprons = day_average(&simulate_day(
            &cfg,
            &DayStrategy::Eprons {
                candidates: aggregation_candidates(),
            },
            &day,
        ));
        let saving = eprons.saving_vs(&nopm);
        assert!(
            saving.total > 0.05,
            "EPRONS should save total power, got {:.1}%",
            saving.total * 100.0
        );
        assert!(saving.network > 0.0, "EPRONS must save DCN power");
    }

    #[test]
    fn timetrader_day_saves_servers_but_not_network() {
        let cfg = ClusterConfig::default();
        // TimeTrader only moves once per 5 s control period, so the epoch
        // sims must span several periods for it to act at all.
        let day = DayConfig {
            epoch_minutes: 480, // 3 epochs
            sim_seconds: 40.0,
            ..quick_day()
        };
        let nopm = day_average(&simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day));
        let tt = day_average(&simulate_day(&cfg, &DayStrategy::TimeTrader, &day));
        let saving = tt.saving_vs(&nopm);
        assert!(saving.server > 0.0, "TimeTrader saves server power");
        assert!(
            saving.network.abs() < 1e-9,
            "TimeTrader saves no DCN power (got {:.2}%)",
            saving.network * 100.0
        );
    }

    #[test]
    fn churn_accounting_over_a_day() {
        let cfg = ClusterConfig::default();
        let day = quick_day();
        // The all-on strategies never reconfigure.
        let nopm = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
        let churn = day_churn(&nopm);
        assert!(churn.iter().all(|c| c.is_empty()), "all-on must not flap");
        assert_eq!(
            day_transition_energy_j(&nopm, &TransitionModel::default()),
            0.0
        );
        // EPRONS reconfigures as load swings; transition energy is finite
        // and small when amortized (the §IV-B discussion).
        let eprons = simulate_day(
            &cfg,
            &DayStrategy::Eprons {
                candidates: aggregation_candidates(),
            },
            &day,
        );
        let e = day_transition_energy_j(&eprons, &TransitionModel::default());
        assert!(e >= 0.0);
        // Even a switch-over every epoch stays below a few watts amortized
        // over the day (6 epochs × 4 h here).
        let day_seconds = 24.0 * 3600.0;
        assert!(e / day_seconds < 20.0, "amortized churn power too high");
    }

    #[test]
    fn day_csv_round_trips_through_disk() {
        let cfg = ClusterConfig::default();
        let recs = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &quick_day());
        let mut path = std::env::temp_dir();
        path.push(format!("eprons-day-{}.csv", std::process::id()));
        save_day_csv(&recs, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), recs.len() + 1, "header + one row per epoch");
        assert!(lines[0].starts_with("minute,"));
        assert!(lines[1].contains(','));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deferral_queue_conserves_every_megabit_minute() {
        let knobs = DeferralConfig::default();
        let mut q = DeferralQueue::new(knobs, 1000.0, 10.0);
        // A peaky then quiet profile: shave during the peak, drain after.
        let profile = [0.6, 0.7, 0.65, 0.1, 0.05, 0.1, 0.6, 0.05, 0.05, 0.05];
        let mut enq = 0.0;
        let mut out = 0.0;
        for (e, &bg) in profile.iter().enumerate() {
            let step = q.step(e, bg, false);
            enq += step.enqueued_mbps_min;
            out += step.drained_mbps_min;
            // Admitted demand conserves the epoch's arrivals.
            let expected = bg - step.enqueued_mbps_min / q.util_to_mbps_min
                + step.drained_mbps_min / q.util_to_mbps_min;
            assert!((step.bg - expected).abs() < 1e-12);
        }
        assert!(enq > 0.0, "peak epochs must defer something");
        assert!(out > 0.0, "trough epochs must drain something");
        // Whatever is still queued is dropped at flush; the books close.
        let leftover = q.depth_mbps_min;
        q.flush(profile.len(), false);
        assert!(q.slabs.is_empty());
        assert!(
            (enq - (out + leftover)).abs() < 1e-9,
            "enqueued {enq} != drained {out} + dropped {leftover}"
        );
    }

    #[test]
    fn deferral_queue_drops_slabs_past_their_slack() {
        let knobs = DeferralConfig {
            slack_epochs: 2,
            ..DeferralConfig::default()
        };
        let mut q = DeferralQueue::new(knobs, 1000.0, 10.0);
        let step = q.step(0, 0.8, false);
        assert!(step.enqueued_mbps_min > 0.0);
        // Epochs 1 and 2 sit in the neutral band (above the drain
        // headroom, below the defer threshold): nothing moves. Epoch 3 is
        // past the deadline 0 + 2, so the slab drops instead of draining.
        q.step(1, 0.32, false);
        q.step(2, 0.32, false);
        let late = q.step(3, 0.0, false);
        assert_eq!(late.drained_mbps_min, 0.0, "expired slab must not drain");
        assert_eq!(q.depth_mbps_min, 0.0);
    }

    #[test]
    fn deferral_queue_respects_cap_and_fraction() {
        let knobs = DeferralConfig {
            queue_cap_mbps_min: 100.0,
            max_defer_fraction: 0.25,
            ..DeferralConfig::default()
        };
        let mut q = DeferralQueue::new(knobs, 1000.0, 10.0);
        // Fraction bound: 0.8 × 0.25 = 0.2 util → 2000 mbps-min wanted,
        // but the cap clamps to 100.
        let step = q.step(0, 0.8, false);
        assert!(step.enqueued_mbps_min <= 100.0 + 1e-9);
        let step2 = q.step(1, 0.8, false);
        assert_eq!(step2.enqueued_mbps_min, 0.0, "queue already at cap");
    }

    #[test]
    fn hysteresis_cooldown_quarantines_for_exactly_cooldown_epochs() {
        let knobs = HysteresisConfig {
            cooldown_epochs: 2,
            ..HysteresisConfig::default()
        };
        let mut h = HysteresisState::new(knobs, TransitionModel::default(), 600.0);
        let toggled = Churn::between(&[1, 2], &[1, 3]);
        // Epoch 0 ends with switches 2 and 3 toggled.
        h.finish_epoch(ConsolidationSpec::AllOn, &[1, 2]);
        h.finish_epoch(ConsolidationSpec::AllOn, &[1, 3]);
        // The next two epoch decisions see the quarantine...
        assert!(h.any_cooling(&toggled));
        h.finish_epoch(ConsolidationSpec::AllOn, &[1, 3]);
        assert!(h.any_cooling(&toggled));
        // ...and the one after does not.
        h.finish_epoch(ConsolidationSpec::AllOn, &[1, 3]);
        assert!(!h.any_cooling(&toggled));
    }

    #[test]
    fn online_day_is_deterministic_and_populates_new_fields() {
        let cfg = ClusterConfig::default();
        let day = DayConfig {
            online: Some(OnlineConfig::enabled()),
            ..quick_day()
        };
        let strategy = DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        };
        let a = simulate_day(&cfg, &strategy, &day);
        let b = simulate_day(&cfg, &strategy, &day);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.breakdown.total_w(), y.breakdown.total_w());
            assert_eq!(x.active_switch_ids, y.active_switch_ids);
            assert_eq!(x.deferred_mbps_min, y.deferred_mbps_min);
            assert_eq!(x.drained_mbps_min, y.drained_mbps_min);
            assert_eq!(x.held_by_hysteresis, y.held_by_hysteresis);
        }
        // Batch mode leaves the online fields inert.
        let batch = simulate_day(&cfg, &strategy, &quick_day());
        assert!(batch
            .iter()
            .all(|r| r.deferred_mbps_min == 0.0 && !r.held_by_hysteresis));
    }

    #[test]
    fn online_churn_never_exceeds_batch_on_the_same_day() {
        let cfg = ClusterConfig::default();
        let strategy = DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        };
        let batch = simulate_day(&cfg, &strategy, &quick_day());
        let online = simulate_day(
            &cfg,
            &strategy,
            &DayConfig {
                online: Some(OnlineConfig {
                    hysteresis: Some(HysteresisConfig::default()),
                    deferral: None,
                }),
                ..quick_day()
            },
        );
        assert!(
            day_churn_count(&online) <= day_churn_count(&batch),
            "hysteresis must not add churn: online {} vs batch {}",
            day_churn_count(&online),
            day_churn_count(&batch)
        );
    }

    #[test]
    fn diurnal_load_shows_in_power_timeline() {
        let cfg = ClusterConfig::default();
        let recs = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &quick_day());
        // Load varies across epochs, so (CPU) power must vary too.
        let powers: Vec<f64> = recs.iter().map(|r| r.breakdown.server_w).collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 5.0,
            "diurnal swing should move power: {powers:?}"
        );
    }
}
