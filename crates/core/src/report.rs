//! Plain-text table output shared by the figure harnesses.
//!
//! Every `fig*` binary prints its series through [`Table`] so the output
//! format (aligned columns, one header row, optional caption) is uniform
//! and easy to diff against EXPERIMENTS.md.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a caption and column headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: formats each cell with `Display`.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "# {}", self.caption)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:>w$}", h, w = widths[i] + 2)?;
        }
        writeln!(f)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for i in 0..cols {
                write!(f, "{:>w$}", row[i], w = widths[i] + 2)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Tabulates a journal's events by kind (count per event type) — the
/// quick "what happened this run" summary the fig binaries print when
/// `--journal` is active.
pub fn journal_kind_table(entries: &[eprons_obs::JournalEntry]) -> Table {
    journal_kind_table_with_drops(entries, 0)
}

/// [`journal_kind_table`] with the journal's dropped-event count appended
/// as a `(dropped)` row when non-zero, so cap overflow is visible in
/// every `--journal` summary instead of silently truncating the record.
pub fn journal_kind_table_with_drops(entries: &[eprons_obs::JournalEntry], dropped: u64) -> Table {
    let mut counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for e in entries {
        *counts.entry(e.event.kind()).or_insert(0) += 1;
    }
    let mut t = Table::new("journal events", &["event", "count"]);
    for (kind, n) in counts {
        t.row(&[kind.to_string(), n.to_string()]);
    }
    if dropped > 0 {
        t.row(&["(dropped)".to_string(), dropped.to_string()]);
    }
    t
}

/// Tabulates the per-epoch snapshots of a journal: one row per
/// `EpochSnapshot` event, mirroring the Fig. 15 timeline columns.
pub fn journal_epoch_table(entries: &[eprons_obs::JournalEntry]) -> Table {
    let mut t = Table::new(
        "epoch snapshots",
        &[
            "epoch",
            "minute",
            "choice",
            "server_w",
            "network_w",
            "total_w",
            "boot_j",
            "p95_ms",
            "ok",
        ],
    );
    for e in entries {
        if let eprons_obs::Event::EpochSnapshot(s) = &e.event {
            t.row(&[
                s.epoch.to_string(),
                format!("{:.0}", s.minute),
                s.choice.clone(),
                watts(s.server_w),
                watts(s.network_w),
                watts(s.total_w()),
                format!("{:.1}", s.boot_energy_j),
                format!("{:.2}", s.e2e_p95_us * 1.0e-3),
                s.feasible.to_string(),
            ]);
        }
    }
    t
}

/// Tabulates the pod-decomposition work of a journal as the `net.pods.*`
/// counter view: every `PodConsolidation` event carries the same fields
/// the consolidator adds to the registry counters, so summing them over
/// the journal reproduces the counters a live process would report.
/// Empty (no rows) when the run never took the pod-decomposed path.
pub fn journal_pods_table(entries: &[eprons_obs::JournalEntry]) -> Table {
    let mut t = Table::new("pod consolidation (net.pods.*)", &["counter", "value"]);
    let (mut passes, mut solved, mut cached, mut resolves) = (0u64, 0u64, 0u64, 0u64);
    let (mut rounds, mut balanced, mut fallbacks) = (0u64, 0u64, 0u64);
    for e in entries {
        if let eprons_obs::Event::PodConsolidation {
            solved: s,
            cached: c,
            resolves: r,
            rounds: ro,
            balanced: b,
            fallback,
            ..
        } = &e.event
        {
            passes += 1;
            solved += s;
            cached += c;
            resolves += r;
            rounds += ro;
            balanced += b;
            fallbacks += u64::from(*fallback);
        }
    }
    if passes == 0 {
        return t;
    }
    for (name, v) in [
        ("passes", passes),
        ("net.pods.solved", solved),
        ("net.pods.cache_hits", cached),
        ("net.pods.resolves", resolves),
        ("net.pods.balanced_stitches", balanced),
        ("net.pods.fallbacks", fallbacks),
        ("stitch rounds", rounds),
    ] {
        t.row(&[name.to_string(), v.to_string()]);
    }
    t
}

/// Tabulates the day-scoped cache reports of a journal: one row per
/// [`eprons_obs::Event::DayCacheReport`] with the cache's day-long
/// hit/miss/eviction counters, its hit rate, and the approximate bytes
/// it held when the day closed. Empty (no rows) when the run never
/// used day-scoped incremental evaluation.
pub fn journal_daycache_table(entries: &[eprons_obs::JournalEntry]) -> Table {
    let mut t = Table::new(
        "day-scope caches",
        &["cache", "hits", "misses", "evictions", "hit rate", "bytes"],
    );
    for e in entries {
        if let eprons_obs::Event::DayCacheReport {
            cache,
            hits,
            misses,
            evictions,
            bytes,
        } = &e.event
        {
            let total = hits + misses;
            let rate = if total > 0 {
                format!("{:.1}%", *hits as f64 / total as f64 * 100.0)
            } else {
                "-".to_string()
            };
            t.row(&[
                cache.clone(),
                hits.to_string(),
                misses.to_string(),
                evictions.to_string(),
                rate,
                bytes.to_string(),
            ]);
        }
    }
    t
}

/// Tabulates the online-controller activity of a journal: hysteresis
/// holds (with the transition energy they avoided paying) and the
/// deferral queue's megabit-minute ledger (enqueued, drained, dropped).
/// Empty (no rows) when the run never used the online controller.
pub fn journal_online_table(entries: &[eprons_obs::JournalEntry]) -> Table {
    let mut t = Table::new("online controller", &["counter", "value"]);
    let (mut holds, mut avoided_j) = (0u64, 0.0f64);
    let (mut enq_n, mut enq, mut drained, mut dropped) = (0u64, 0.0f64, 0.0f64, 0.0f64);
    for e in entries {
        match &e.event {
            eprons_obs::Event::HysteresisHold { transition_j, .. } => {
                holds += 1;
                avoided_j += transition_j;
            }
            eprons_obs::Event::DeferralEnqueued { mbps_min, .. } => {
                enq_n += 1;
                enq += mbps_min;
            }
            eprons_obs::Event::DeferralDrained {
                drained_mbps_min,
                dropped_mbps_min,
                ..
            } => {
                drained += drained_mbps_min;
                dropped += dropped_mbps_min;
            }
            _ => {}
        }
    }
    if holds == 0 && enq_n == 0 && drained == 0.0 && dropped == 0.0 {
        return t;
    }
    t.row(&["hysteresis holds".to_string(), holds.to_string()]);
    t.row(&[
        "transition energy avoided (J)".to_string(),
        format!("{avoided_j:.1}"),
    ]);
    t.row(&["deferral enqueues".to_string(), enq_n.to_string()]);
    t.row(&["deferred (mbps-min)".to_string(), format!("{enq:.1}")]);
    t.row(&["drained (mbps-min)".to_string(), format!("{drained:.1}")]);
    t.row(&["dropped (mbps-min)".to_string(), format!("{dropped:.1}")]);
    t
}

/// Tabulates a metrics snapshot: counters, gauges, then histograms (with
/// count/mean/max) in one name-sorted table.
pub fn metrics_table(snap: &eprons_obs::MetricsSnapshot) -> Table {
    let mut t = Table::new("metrics", &["name", "kind", "value"]);
    for (name, v) in &snap.counters {
        t.row(&[name.clone(), "counter".into(), v.to_string()]);
    }
    for (name, v) in &snap.gauges {
        t.row(&[name.clone(), "gauge".into(), format!("{v:.3}")]);
    }
    for (name, h) in &snap.histograms {
        t.row(&[
            name.clone(),
            "histogram".into(),
            format!("n={} mean={:.3e} max={:.3e}", h.count, h.mean(), h.max),
        ]);
    }
    t
}

/// Formats a watts value with 1 decimal.
pub fn watts(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a milliseconds value (input seconds) with 2 decimals.
pub fn ms(v_s: f64) -> String {
    format!("{:.2}", v_s * 1.0e3)
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(&["1".into(), "10.0".into()]);
        t.row(&["200".into(), "3.5".into()]);
        let s = t.to_string();
        assert!(s.contains("# demo"));
        assert!(s.contains("value"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(watts(12.345), "12.3");
        assert_eq!(ms(0.02574), "25.74");
        assert_eq!(pct(0.3125), "31.2");
    }

    #[test]
    fn journal_tables_render() {
        let journal = eprons_obs::Journal::with_capacity(100);
        journal.record(eprons_obs::Event::DayStart {
            strategy: "eprons".into(),
            epochs: 2,
        });
        journal.record(eprons_obs::Event::EpochSnapshot(eprons_obs::Snapshot {
            epoch: 0,
            minute: 120.0,
            strategy: "eprons".into(),
            choice: "agg2".into(),
            server_w: 700.0,
            network_w: 500.0,
            active_switches: 15,
            e2e_p95_us: 21_500.0,
            feasible: true,
            boot_energy_j: 0.0,
        }));
        journal.record(eprons_obs::Event::EpochSnapshot(eprons_obs::Snapshot {
            epoch: 1,
            minute: 360.0,
            strategy: "eprons".into(),
            choice: "agg3".into(),
            server_w: 650.0,
            network_w: 470.0,
            active_switches: 13,
            e2e_p95_us: 24_000.0,
            feasible: true,
            boot_energy_j: 2610.7,
        }));
        let entries = journal.snapshot();
        let kinds = journal_kind_table(&entries);
        assert_eq!(kinds.len(), 2, "DayStart + EpochSnapshot rows");
        assert!(kinds.to_string().contains("EpochSnapshot"));
        let epochs = journal_epoch_table(&entries);
        assert_eq!(epochs.len(), 2);
        let s = epochs.to_string();
        assert!(s.contains("agg2") && s.contains("1200.0"), "{s}");
    }

    #[test]
    fn metrics_table_renders_all_kinds() {
        let reg = eprons_obs::Registry::new();
        reg.counter("a.count").add(3);
        reg.gauge("b.level").set(1.5);
        reg.histogram("c.dur_s", eprons_obs::DURATION_EDGES_S)
            .observe(0.01);
        let t = metrics_table(&reg.snapshot());
        assert_eq!(t.len(), 3);
        let s = t.to_string();
        assert!(s.contains("a.count") && s.contains("counter"));
        assert!(s.contains("histogram") && s.contains("n=1"));
    }
}
