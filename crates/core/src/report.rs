//! Plain-text table output shared by the figure harnesses.
//!
//! Every `fig*` binary prints its series through [`Table`] so the output
//! format (aligned columns, one header row, optional caption) is uniform
//! and easy to diff against EXPERIMENTS.md.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a caption and column headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: formats each cell with `Display`.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "# {}", self.caption)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:>w$}", h, w = widths[i] + 2)?;
        }
        writeln!(f)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for i in 0..cols {
                write!(f, "{:>w$}", row[i], w = widths[i] + 2)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a watts value with 1 decimal.
pub fn watts(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a milliseconds value (input seconds) with 2 decimals.
pub fn ms(v_s: f64) -> String {
    format!("{:.2}", v_s * 1.0e3)
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(&["1".into(), "10.0".into()]);
        t.row(&["200".into(), "3.5".into()]);
        let s = t.to_string();
        assert!(s.contains("# demo"));
        assert!(s.contains("value"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(watts(12.345), "12.3");
        assert_eq!(ms(0.02574), "25.74");
        assert_eq!(pct(0.3125), "31.2");
    }
}
