//! The joint server+network power optimizer (paper §IV).
//!
//! EPRONS "minimizes the entire data center's power consumption through
//! dynamically searching the optimal parameter K … while guaranteeing the
//! latency constraints". Concretely: evaluate each candidate network
//! configuration (scale factor `K` or aggregation preset), keep those that
//! meet the end-to-end SLA, and choose the one with the lowest *total*
//! power. When nothing is feasible the optimizer "turns on a minimal
//! number of additional network links and switches": it falls back to the
//! candidate with the lowest measured tail latency.
//!
//! Both search strategies run on the staged pipeline: candidates share one
//! [`ScenarioContext`], so the per-candidate cost is consolidation +
//! latency sampling + DVFS simulation, never a workload rebuild. Use
//! [`optimize_in_context`] / [`adaptive_k_in_context`] directly when a
//! context is already in hand (the day controller builds one per epoch);
//! the template-taking entry points build it for you.

use std::collections::{HashMap, HashSet};

use eprons_topo::{AggregationLevel, LinkId, MultipathTopology, NodeId};

use crate::cluster::{ClusterError, ClusterRun, ClusterRunResult, ConsolidationSpec};
use crate::config::ClusterConfig;
use crate::scenario::{scheme_idle_floor_w, ScenarioContext};

/// The optimizer's selection.
#[derive(Debug, Clone)]
pub struct JointChoice {
    /// The chosen network configuration.
    pub spec: ConsolidationSpec,
    /// Its measured run.
    pub result: ClusterRunResult,
    /// Whether the choice met the SLA (false = least-bad fallback).
    pub feasible: bool,
    /// Candidates actually measured before committing (the optimizer's
    /// cost currency — [`adaptive_k`] exists to make this smaller than
    /// the full ladder's).
    pub evaluated: u64,
}

/// Journals one measured candidate's verdict (no-op when telemetry is
/// off). Shared by both search strategies so the trace schema cannot
/// drift between them.
fn journal_candidate(spec: ConsolidationSpec, result: &ClusterRunResult, feasible: bool) {
    if eprons_obs::enabled() {
        eprons_obs::record(eprons_obs::Event::OptimizerCandidate {
            k: spec.label(),
            total_w: result.breakdown.total_w(),
            p95_us: result.e2e_latency.p95_s * 1.0e6,
            feasible,
        });
    }
}

/// Journals a candidate that failed to evaluate at all.
fn journal_failure(spec: ConsolidationSpec, err: &ClusterError) {
    if eprons_obs::enabled() {
        eprons_obs::record(eprons_obs::Event::CandidateFailed {
            k: spec.label(),
            error: err.to_string(),
        });
    }
}

/// Journals the committed choice and returns it.
fn journal_choice(choice: JointChoice) -> JointChoice {
    if eprons_obs::enabled() {
        eprons_obs::record(eprons_obs::Event::OptimizerChoice {
            k: choice.spec.label(),
            total_w: choice.result.breakdown.total_w(),
            p95_us: choice.result.e2e_latency.p95_s * 1.0e6,
            feasible: choice.feasible,
            evaluated: choice.evaluated,
        });
    }
    choice
}

/// Evaluates `candidates` (in parallel) under the given run template and
/// returns the minimum-total-power feasible choice, or the lowest-latency
/// candidate if none is feasible. Returns `None` only if every candidate
/// fails outright (e.g. consolidation cannot place the traffic anywhere).
///
/// Convenience wrapper over [`optimize_total_power_traced`] that drops the
/// per-candidate failure reasons.
pub fn optimize_total_power(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    candidates: &[ConsolidationSpec],
) -> Option<JointChoice> {
    optimize_total_power_traced(cfg, template, candidates).0
}

/// [`optimize_total_power`] with full decision tracing: every candidate's
/// verdict is journaled (when telemetry is on) as an `OptimizerCandidate`
/// or `CandidateFailed` event, the commit as an `OptimizerChoice`, and the
/// failures are returned alongside the choice so callers can report *why*
/// candidates dropped out instead of silently swallowing their errors.
///
/// Builds one [`ScenarioContext`] from the template and delegates to
/// [`optimize_in_context`].
pub fn optimize_total_power_traced(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    candidates: &[ConsolidationSpec],
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    if candidates.is_empty() {
        return (None, Vec::new());
    }
    let ctx = ScenarioContext::for_template(cfg, template);
    optimize_in_context(&ctx, template.scheme, candidates)
}

/// The exhaustive search against an already-built scenario: evaluates
/// every candidate (fanning out over the thread budget), journals each
/// verdict, and commits the minimum-total-power feasible candidate (or
/// the lowest-tail fallback).
pub fn optimize_in_context(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    candidates: &[ConsolidationSpec],
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    optimize_in_context_masked(ctx, scheme, candidates, &[])
}

/// [`optimize_in_context`] with a failed-switch mask: every candidate is
/// consolidated with `excluded` switches forced off, so the ladder an
/// epoch searches after a failure never routes through dead hardware
/// (the next-epoch half of the degradation ladder, §IV-B).
pub fn optimize_in_context_masked(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    candidates: &[ConsolidationSpec],
    excluded: &[eprons_topo::NodeId],
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    let cfg = ctx.cfg();
    let mut search_span = eprons_obs::Span::enter("optimizer.search");
    if eprons_obs::enabled() {
        search_span.note(format!("mode=exhaustive candidates={}", candidates.len()));
    }
    let results = ctx.evaluate_candidates_masked(scheme, candidates, excluded);
    let mut ok: Vec<(ConsolidationSpec, ClusterRunResult, bool)> = Vec::new();
    let mut failures: Vec<(ConsolidationSpec, ClusterError)> = Vec::new();
    for (spec, res) in results {
        match res {
            Ok(r) => {
                let feasible = r.is_feasible(cfg);
                journal_candidate(spec, &r, feasible);
                ok.push((spec, r, feasible));
            }
            Err(e) => {
                journal_failure(spec, &e);
                failures.push((spec, e));
            }
        }
    }
    if ok.is_empty() {
        return (None, failures);
    }
    let evaluated = ok.len() as u64;
    // Feasible set → min total power.
    let feasible = ok
        .iter()
        .filter(|(_, _, feasible)| *feasible)
        .min_by(|a, b| {
            a.1.breakdown
                .total_w()
                .partial_cmp(&b.1.breakdown.total_w())
                .expect("power is finite")
        });
    let choice = if let Some((spec, result, _)) = feasible {
        JointChoice {
            spec: *spec,
            result: result.clone(),
            feasible: true,
            evaluated,
        }
    } else {
        // Fallback: least-bad latency (most generous network).
        let (spec, result, _) = ok
            .iter()
            .min_by(|a, b| {
                a.1.e2e_latency
                    .p95_s
                    .partial_cmp(&b.1.e2e_latency.p95_s)
                    .expect("latency is finite")
            })
            .expect("non-empty");
        JointChoice {
            spec: *spec,
            result: result.clone(),
            feasible: false,
            evaluated,
        }
    };
    (Some(journal_choice(choice)), failures)
}

/// A provably-sound lower bound on the total power any evaluation of
/// `spec` can report, computed without simulating anything.
///
/// Two summands, both floors of what the accounting stage later adds up:
///
/// * **Network.** For the aggregation presets the active set is known in
///   advance — the preset switches minus the mask, links on iff both
///   endpoints are on — so the bound is the *exact* DCN power the plan
///   will report. For `GreedyK` the bound counts only the *mandatory*
///   elements: nodes/links present in every candidate path of a flow must
///   be powered by any assignment that routes it, and greedy never powers
///   a link it does not use.
/// * **Servers.** Every simulated core draws at least its policy's idle
///   floor at every instant ([`scheme_idle_floor_w`] is the same floor
///   stage 3 integrates through trailing idle), so each server reports at
///   least `server_w(floor)`.
///
/// Soundness (`bound ≤ measured total`) is what lets the ladder skip a
/// candidate whose bound exceeds a feasible incumbent's measured power
/// without changing which candidate wins.
pub fn candidate_power_floor_w(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    spec: ConsolidationSpec,
    excluded: &[NodeId],
) -> f64 {
    let cfg = ctx.cfg();
    let d = &*ctx.data;
    let topo = d.ft.topology();
    let masked: HashSet<NodeId> = excluded.iter().copied().collect();
    let server_floor =
        ctx.num_servers() as f64 * cfg.cpu.server_w(scheme_idle_floor_w(cfg, scheme));
    let net_floor = match spec {
        ConsolidationSpec::AllOn | ConsolidationSpec::Level(_) => {
            let level = match spec {
                ConsolidationSpec::Level(l) => l,
                _ => AggregationLevel::Agg0,
            };
            let on: HashSet<NodeId> = level
                .active_switches(&d.ft)
                .into_iter()
                .filter(|n| !masked.contains(n))
                .collect();
            let is_on = |n: NodeId| !topo.node(n).kind.is_switch() || on.contains(&n);
            let links = topo
                .links()
                .filter(|(_, l)| is_on(l.a) && is_on(l.b))
                .count();
            cfg.net_power.power_w_for_counts(on.len(), links)
        }
        ConsolidationSpec::GreedyK(_) => {
            let mut m_sw: HashSet<NodeId> = HashSet::new();
            let mut m_ln: HashSet<LinkId> = HashSet::new();
            let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
            // In the shared-segment arena a pair's interior candidates
            // are a pure function of its ordered (access-src, access-dst)
            // switch pair, so the candidate intersection collapses to one
            // walk per access class (O((k²/2)²) classes) instead of one
            // per host pair (O(hosts²) — the dominant cost of every bound
            // at k ≥ 16). The per-pair leftovers are exactly the two host
            // links, mandatory in any candidate of a single-homed fabric.
            // A per-pair store has no class structure: keep the direct
            // walk there (and for the no-candidate degenerate pair).
            let shared = d.arena.is_shared();
            let mut class: HashMap<(NodeId, NodeId), (Vec<NodeId>, Vec<LinkId>)> = HashMap::new();
            let mut nodes_buf: Vec<NodeId> = Vec::new();
            let mut links_buf: Vec<LinkId> = Vec::new();
            for fl in d.flows.flows() {
                if !seen.insert((fl.src, fl.dst)) {
                    continue; // same pair ⇒ same candidate paths
                }
                if shared
                    && d.arena
                        .nth_candidate_into(fl.src, fl.dst, 0, &mut nodes_buf, &mut links_buf)
                    && nodes_buf.len() >= 3
                {
                    let acc = (nodes_buf[1], nodes_buf[nodes_buf.len() - 2]);
                    let (csw, cln) = class.entry(acc).or_insert_with(|| {
                        let mut sw: Vec<NodeId> = Vec::new();
                        let mut ln: Vec<LinkId> = Vec::new();
                        let mut first = true;
                        d.arena.for_each_candidate(fl.src, fl.dst, &mut |p| {
                            let interior_ln = &p.links[1..p.links.len() - 1];
                            if first {
                                sw.extend_from_slice(p.interior());
                                ln.extend_from_slice(interior_ln);
                                first = false;
                            } else {
                                let psw: HashSet<NodeId> = p.interior().iter().copied().collect();
                                let pln: HashSet<LinkId> = interior_ln.iter().copied().collect();
                                sw.retain(|x| psw.contains(x));
                                ln.retain(|x| pln.contains(x));
                            }
                        });
                        (sw, ln)
                    });
                    m_sw.extend(csw.iter().copied());
                    m_ln.extend(cln.iter().copied());
                    m_ln.insert(links_buf[0]);
                    m_ln.insert(links_buf[links_buf.len() - 1]);
                    continue;
                }
                // Intersect interior switches / links across the pair's
                // candidates without materializing them (borrowed walk
                // straight out of the arena's segment store).
                let mut sw: HashSet<NodeId> = HashSet::new();
                let mut ln: HashSet<LinkId> = HashSet::new();
                let mut first = true;
                d.arena.for_each_candidate(fl.src, fl.dst, &mut |p| {
                    if first {
                        sw.extend(p.interior().iter().copied());
                        ln.extend(p.hops().map(|(_, _, l)| l));
                        first = false;
                    } else {
                        let psw: HashSet<NodeId> = p.interior().iter().copied().collect();
                        let pln: HashSet<LinkId> = p.hops().map(|(_, _, l)| l).collect();
                        sw.retain(|x| psw.contains(x));
                        ln.retain(|x| pln.contains(x));
                    }
                });
                m_sw.extend(sw);
                m_ln.extend(ln);
            }
            // Masked elements can never be powered (a flow whose mandatory
            // hardware is dead makes the candidate fail instead).
            m_sw.retain(|n| !masked.contains(n));
            m_ln.retain(|&l| {
                let lk = topo.link(l);
                !masked.contains(&lk.a) && !masked.contains(&lk.b)
            });
            cfg.net_power.power_w_for_counts(m_sw.len(), m_ln.len())
        }
    };
    server_floor + net_floor
}

/// [`optimize_in_context_masked`] with lower-bound pruning and
/// best-first candidate ordering — same winner, fewer simulations.
///
/// Candidates are evaluated cheapest-bound-first (`warm_hint`, typically
/// the previous epoch's winner, jumps the queue), and once a feasible
/// incumbent exists every remaining candidate whose
/// [`candidate_power_floor_w`] *strictly* exceeds the incumbent's
/// measured total is skipped: its measurement could only come in above
/// its bound, so it cannot tie or beat the incumbent. Skips are journaled
/// as `CandidatePruned` events and counted under
/// `core.optimizer.pruned`; they do not count toward
/// [`JointChoice::evaluated`].
///
/// **Bit-identity.** The returned choice equals the exhaustive sweep's
/// bit for bit: bounds are sound, ties are never pruned (strict
/// inequality), and the final selection re-ranks the measured survivors
/// in original candidate order, reproducing the exhaustive `min_by`
/// tie-breaking. When nothing is feasible, no pruning has happened (an
/// incumbent is a precondition), so the least-bad fallback also matches.
/// The hint affects evaluation order only, never the result.
pub fn optimize_in_context_pruned(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    candidates: &[ConsolidationSpec],
    excluded: &[eprons_topo::NodeId],
    warm_hint: Option<ConsolidationSpec>,
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    let cfg = ctx.cfg();
    let obs_on = eprons_obs::enabled();
    let mut search_span = eprons_obs::Span::enter("optimizer.search");
    if obs_on {
        search_span.note(format!(
            "mode=pruned candidates={} warm={}",
            candidates.len(),
            warm_hint.is_some()
        ));
    }
    // Leaf span: bound computation is the search's only serial work of
    // note, so give the flame view a frame for it.
    let bounds_span = eprons_obs::Span::enter("optimizer.bounds");
    // The GreedyK bound counts mandatory elements only, so it does not
    // depend on K: every rung of a K ladder shares one computation.
    let mut greedy_floor: Option<f64> = None;
    let floors: Vec<f64> = candidates
        .iter()
        .map(|&spec| match spec {
            ConsolidationSpec::GreedyK(_) => *greedy_floor
                .get_or_insert_with(|| ctx.floor_cached(scheme, spec, excluded)),
            _ => ctx.floor_cached(scheme, spec, excluded),
        })
        .collect();
    drop(bounds_span);
    // Cheapest bound first: the likely winner is measured early, so the
    // incumbent that powers the pruning exists as soon as possible.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&i, &j| {
        floors[i]
            .partial_cmp(&floors[j])
            .expect("power bounds are finite")
            .then(i.cmp(&j))
    });
    if let Some(hint) = warm_hint {
        if let Some(pos) = order.iter().position(|&i| candidates[i] == hint) {
            let i = order.remove(pos);
            order.insert(0, i);
        }
    }

    let mut measured: Vec<Option<(ClusterRunResult, bool)>> =
        (0..candidates.len()).map(|_| None).collect();
    let mut failures: Vec<(ConsolidationSpec, ClusterError)> = Vec::new();
    let mut incumbent_w: Option<f64> = None;
    let mut evaluated = 0u64;
    for &i in &order {
        let spec = candidates[i];
        if let Some(best_w) = incumbent_w {
            if floors[i] > best_w {
                if obs_on {
                    eprons_obs::registry()
                        .counter("core.optimizer.pruned")
                        .inc();
                    eprons_obs::record(eprons_obs::Event::CandidatePruned {
                        k: spec.label(),
                        bound_w: floors[i],
                        incumbent_w: best_w,
                    });
                }
                continue;
            }
        }
        let mut cand_span = eprons_obs::Span::enter("optimizer.candidate");
        if obs_on {
            cand_span.note(format!("spec={}", spec.label()));
        }
        match ctx.evaluate_masked(scheme, spec, excluded) {
            Ok(r) => {
                evaluated += 1;
                let feasible = r.is_feasible(cfg);
                journal_candidate(spec, &r, feasible);
                if feasible {
                    let w = r.breakdown.total_w();
                    incumbent_w = Some(incumbent_w.map_or(w, |b| b.min(w)));
                }
                measured[i] = Some((r, feasible));
            }
            Err(e) => {
                journal_failure(spec, &e);
                failures.push((spec, e));
            }
        }
    }
    // Re-rank the survivors in original candidate order so tie-breaking
    // matches the exhaustive sweep exactly.
    let ok: Vec<(ConsolidationSpec, &ClusterRunResult, bool)> = measured
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.as_ref().map(|(r, f)| (candidates[i], r, *f)))
        .collect();
    if ok.is_empty() {
        return (None, failures);
    }
    let feasible = ok
        .iter()
        .filter(|(_, _, feasible)| *feasible)
        .min_by(|a, b| {
            a.1.breakdown
                .total_w()
                .partial_cmp(&b.1.breakdown.total_w())
                .expect("power is finite")
        });
    let choice = if let Some(&(spec, result, _)) = feasible {
        JointChoice {
            spec,
            result: result.clone(),
            feasible: true,
            evaluated,
        }
    } else {
        let &(spec, result, _) = ok
            .iter()
            .min_by(|a, b| {
                a.1.e2e_latency
                    .p95_s
                    .partial_cmp(&b.1.e2e_latency.p95_s)
                    .expect("latency is finite")
            })
            .expect("non-empty");
        JointChoice {
            spec,
            result: result.clone(),
            feasible: false,
            evaluated,
        }
    };
    (Some(journal_choice(choice)), failures)
}

/// The paper's candidate ladder: the four Fig. 9 aggregation presets.
pub fn aggregation_candidates() -> Vec<ConsolidationSpec> {
    eprons_topo::AggregationLevel::ALL
        .iter()
        .map(|&l| ConsolidationSpec::Level(l))
        .collect()
}

/// A scale-factor ladder for `K`-based consolidation (Fig. 11's sweep).
pub fn scale_factor_candidates(k_max: usize) -> Vec<ConsolidationSpec> {
    (1..=k_max)
        .map(|k| ConsolidationSpec::GreedyK(k as f64))
        .collect()
}

/// The §II feedback variant: "latency-aware traffic consolidation
/// dynamically adjusts the scale factor K to control the network latency".
/// Starting at `K = 1` (maximum consolidation, minimum DCN power), the
/// controller raises K — reserving more headroom and thereby activating
/// more switches — until the measured end-to-end tail meets the SLA, and
/// returns the first feasible configuration. Unlike
/// [`optimize_total_power`] it does not evaluate the whole ladder, so it
/// converges with fewer measurements at the cost of possibly stopping one
/// step early on non-monotone instances.
pub fn adaptive_k(cfg: &ClusterConfig, template: &ClusterRun, k_max: usize) -> Option<JointChoice> {
    let ctx = ScenarioContext::for_template(cfg, template);
    adaptive_k_in_context(&ctx, template.scheme, k_max)
}

/// [`adaptive_k`] against an already-built scenario. The sequential K
/// ladder shares the context too: each step re-runs only consolidation,
/// latency sampling, and the DVFS sweep.
pub fn adaptive_k_in_context(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    k_max: usize,
) -> Option<JointChoice> {
    adaptive_k_in_context_hinted(ctx, scheme, k_max, None)
}

/// [`adaptive_k_in_context`] with the previous epoch's winning `K` as an
/// ordering hint: the hinted rung is measured *first* — when demand
/// barely moved since the last epoch, that single evaluation is the
/// eventual commit, in hand before the confirmation walk runs — and the
/// usual ascending walk then resumes from `K = 1`, reusing the hinted
/// measurement when it reaches that rung instead of re-simulating it.
///
/// The committed choice is identical to the unhinted walk bit for bit
/// (still the smallest feasible `K`; every rung below a feasible hint is
/// still checked, and fallback tie-breaking happens in walk order). Only
/// [`JointChoice::evaluated`] can differ: a hint above the true winner
/// costs one extra measurement.
pub fn adaptive_k_in_context_hinted(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    k_max: usize,
    hint_k: Option<usize>,
) -> Option<JointChoice> {
    let cfg = ctx.cfg();
    let mut search_span = eprons_obs::Span::enter("optimizer.search");
    if eprons_obs::enabled() {
        search_span.note(format!("mode=adaptive-k k_max={k_max}"));
    }
    let mut evaluated = 0u64;
    let measure =
        |spec: ConsolidationSpec, evaluated: &mut u64| -> Option<(ClusterRunResult, bool)> {
            let mut cand_span = eprons_obs::Span::enter("optimizer.candidate");
            if eprons_obs::enabled() {
                cand_span.note(format!("spec={}", spec.label()));
            }
            match ctx.evaluate(scheme, spec) {
                Ok(r) => {
                    *evaluated += 1;
                    let feasible = r.is_feasible(cfg);
                    journal_candidate(spec, &r, feasible);
                    Some((r, feasible))
                }
                Err(e) => {
                    journal_failure(spec, &e); // K too large for the capacity
                    None
                }
            }
        };
    let mut prefetched: Option<(usize, Option<(ClusterRunResult, bool)>)> = None;
    if let Some(h) = hint_k {
        if h > 1 && h <= k_max {
            let spec = ConsolidationSpec::GreedyK(h as f64);
            prefetched = Some((h, measure(spec, &mut evaluated)));
        }
    }
    let mut best_fallback: Option<(f64, JointChoice)> = None;
    for k in 1..=k_max {
        let spec = ConsolidationSpec::GreedyK(k as f64);
        let measured = match &prefetched {
            Some((h, res)) if *h == k => res.clone(),
            _ => measure(spec, &mut evaluated),
        };
        let Some((result, feasible)) = measured else {
            continue;
        };
        let choice = JointChoice {
            spec,
            result,
            feasible,
            evaluated,
        };
        if feasible {
            return Some(journal_choice(choice));
        }
        let tail = choice.result.e2e_latency.p95_s;
        if best_fallback.as_ref().is_none_or(|(t, _)| tail < *t) {
            best_fallback = Some((tail, choice));
        }
    }
    best_fallback.map(|(_, mut c)| {
        c.evaluated = evaluated;
        journal_choice(c)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ServerScheme;

    fn template() -> ClusterRun {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn, // overwritten per candidate
            server_utilization: 0.3,
            background_util: 0.1,
            duration_s: 4.0,
            warmup_s: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn picks_a_feasible_minimum_power_candidate() {
        let cfg = ClusterConfig::default();
        let choice = optimize_total_power(&cfg, &template(), &aggregation_candidates()).unwrap();
        assert!(choice.feasible, "30 ms SLA at light load must be feasible");
        assert_eq!(choice.evaluated, 4, "the full ladder is always measured");
        // With light background and a 30 ms SLA, an aggressive aggregation
        // should win (fewer switches than Agg0's 20).
        assert!(
            choice.result.active_switches < 20,
            "expected consolidation to pay off, kept {}",
            choice.result.active_switches
        );
    }

    #[test]
    fn tight_sla_forces_more_switches_on() {
        let mut cfg = ClusterConfig::default();
        let loose = optimize_total_power(&cfg, &template(), &aggregation_candidates()).unwrap();
        // Tighten the SLA drastically: the optimizer must react by
        // selecting a configuration with at least as many switches.
        cfg.sla = cfg.sla.with_total(9.0e-3);
        let tight = optimize_total_power(&cfg, &template(), &aggregation_candidates()).unwrap();
        assert!(
            tight.result.active_switches >= loose.result.active_switches,
            "tight SLA kept {} switches, loose kept {}",
            tight.result.active_switches,
            loose.result.active_switches
        );
    }

    #[test]
    fn candidate_builders() {
        assert_eq!(aggregation_candidates().len(), 4);
        let ks = scale_factor_candidates(5);
        assert_eq!(ks.len(), 5);
        assert!(matches!(ks[0], ConsolidationSpec::GreedyK(k) if k == 1.0));
        assert!(matches!(ks[4], ConsolidationSpec::GreedyK(k) if k == 5.0));
    }

    #[test]
    fn adaptive_k_finds_a_feasible_configuration() {
        let cfg = ClusterConfig::default();
        let choice = adaptive_k(&cfg, &template(), 5).unwrap();
        assert!(choice.feasible, "30 ms SLA at light load must be reachable");
        assert!(matches!(choice.spec, ConsolidationSpec::GreedyK(_)));
        // Feedback stops at the first feasible K — the most consolidated
        // network that meets the SLA.
        assert!(choice.result.active_switches <= 20);
    }

    #[test]
    fn adaptive_k_measures_fewer_candidates_than_the_full_ladder() {
        // The whole point of the feedback variant: on a feasible instance
        // it commits after the first feasible K instead of measuring the
        // entire ladder.
        let cfg = ClusterConfig::default();
        let ctx = ScenarioContext::for_template(&cfg, &template());
        let full = optimize_in_context(
            &ctx,
            ServerScheme::EpronsServer,
            &scale_factor_candidates(5),
        )
        .0
        .unwrap();
        let adaptive = adaptive_k_in_context(&ctx, ServerScheme::EpronsServer, 5).unwrap();
        assert!(adaptive.feasible);
        assert_eq!(full.evaluated, 5);
        assert!(
            adaptive.evaluated < full.evaluated,
            "adaptive measured {} of {} candidates",
            adaptive.evaluated,
            full.evaluated
        );
        // And the configuration it stops at is feasible under the same
        // scenario the exhaustive search measured.
        assert!(adaptive.result.is_feasible(&cfg));
    }

    #[test]
    fn adaptive_k_falls_back_to_least_bad_when_impossible() {
        let mut cfg = ClusterConfig::default();
        cfg.sla = cfg.sla.with_total(7.0e-3); // nothing meets 7 ms
        let choice = adaptive_k(&cfg, &template(), 3).unwrap();
        assert!(!choice.feasible);
        assert_eq!(choice.evaluated, 3, "infeasible ladders are fully measured");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let cfg = ClusterConfig::default();
        let (choice, failures) = optimize_total_power_traced(&cfg, &template(), &[]);
        assert!(choice.is_none());
        assert!(failures.is_empty());
    }

    #[test]
    fn traced_surfaces_failure_reasons() {
        let cfg = ClusterConfig::default();
        // An absurd K makes every latency-sensitive reservation exceed link
        // capacity: that candidate must fail with a reported reason while
        // the sane candidate still wins.
        let cands = [
            ConsolidationSpec::GreedyK(1.0),
            ConsolidationSpec::GreedyK(1.0e6),
        ];
        let (choice, failures) = optimize_total_power_traced(&cfg, &template(), &cands);
        let choice = choice.expect("K=1 evaluates");
        assert!(matches!(choice.spec, ConsolidationSpec::GreedyK(k) if k == 1.0));
        assert_eq!(choice.evaluated, 1, "only the sane candidate measured");
        assert_eq!(failures.len(), 1);
        let (spec, err) = &failures[0];
        assert!(matches!(spec, ConsolidationSpec::GreedyK(k) if *k == 1.0e6));
        assert!(err.to_string().contains("consolidation failed"));
    }
}
