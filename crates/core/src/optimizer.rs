//! The joint server+network power optimizer (paper §IV).
//!
//! EPRONS "minimizes the entire data center's power consumption through
//! dynamically searching the optimal parameter K … while guaranteeing the
//! latency constraints". Concretely: evaluate each candidate network
//! configuration (scale factor `K` or aggregation preset), keep those that
//! meet the end-to-end SLA, and choose the one with the lowest *total*
//! power. When nothing is feasible the optimizer "turns on a minimal
//! number of additional network links and switches": it falls back to the
//! candidate with the lowest measured tail latency.

use crate::cluster::{run_cluster, ClusterRun, ClusterRunResult, ConsolidationSpec};
use crate::config::ClusterConfig;
use crate::parallel::parallel_map;

/// The optimizer's selection.
#[derive(Debug, Clone)]
pub struct JointChoice {
    /// The chosen network configuration.
    pub spec: ConsolidationSpec,
    /// Its measured run.
    pub result: ClusterRunResult,
    /// Whether the choice met the SLA (false = least-bad fallback).
    pub feasible: bool,
}

/// Evaluates `candidates` (in parallel) under the given run template and
/// returns the minimum-total-power feasible choice, or the lowest-latency
/// candidate if none is feasible. Returns `None` only if every candidate
/// fails outright (e.g. consolidation cannot place the traffic anywhere).
pub fn optimize_total_power(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    candidates: &[ConsolidationSpec],
) -> Option<JointChoice> {
    let results = parallel_map(candidates, |spec| {
        let mut run = template.clone();
        run.consolidation = *spec;
        run_cluster(cfg, &run).ok().map(|r| (*spec, r))
    });
    let ok: Vec<(ConsolidationSpec, ClusterRunResult)> =
        results.into_iter().flatten().collect();
    if ok.is_empty() {
        return None;
    }
    // Feasible set → min total power.
    let feasible = ok
        .iter()
        .filter(|(_, r)| r.is_feasible(cfg))
        .min_by(|a, b| {
            a.1.breakdown
                .total_w()
                .partial_cmp(&b.1.breakdown.total_w())
                .expect("power is finite")
        });
    if let Some((spec, result)) = feasible {
        return Some(JointChoice {
            spec: *spec,
            result: result.clone(),
            feasible: true,
        });
    }
    // Fallback: least-bad latency (most generous network).
    let (spec, result) = ok
        .iter()
        .min_by(|a, b| {
            a.1.e2e_latency
                .p95_s
                .partial_cmp(&b.1.e2e_latency.p95_s)
                .expect("latency is finite")
        })
        .expect("non-empty");
    Some(JointChoice {
        spec: *spec,
        result: result.clone(),
        feasible: false,
    })
}

/// The paper's candidate ladder: the four Fig. 9 aggregation presets.
pub fn aggregation_candidates() -> Vec<ConsolidationSpec> {
    eprons_topo::AggregationLevel::ALL
        .iter()
        .map(|&l| ConsolidationSpec::Level(l))
        .collect()
}

/// A scale-factor ladder for `K`-based consolidation (Fig. 11's sweep).
pub fn scale_factor_candidates(k_max: usize) -> Vec<ConsolidationSpec> {
    (1..=k_max)
        .map(|k| ConsolidationSpec::GreedyK(k as f64))
        .collect()
}

/// The §II feedback variant: "latency-aware traffic consolidation
/// dynamically adjusts the scale factor K to control the network latency".
/// Starting at `K = 1` (maximum consolidation, minimum DCN power), the
/// controller raises K — reserving more headroom and thereby activating
/// more switches — until the measured end-to-end tail meets the SLA, and
/// returns the first feasible configuration. Unlike
/// [`optimize_total_power`] it does not evaluate the whole ladder, so it
/// converges with fewer measurements at the cost of possibly stopping one
/// step early on non-monotone instances.
pub fn adaptive_k(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    k_max: usize,
) -> Option<JointChoice> {
    let mut best_fallback: Option<(f64, JointChoice)> = None;
    for k in 1..=k_max {
        let mut run = template.clone();
        run.consolidation = ConsolidationSpec::GreedyK(k as f64);
        let Ok(result) = run_cluster(cfg, &run) else {
            continue; // K too large for the capacity: skip
        };
        let feasible = result.is_feasible(cfg);
        let choice = JointChoice {
            spec: run.consolidation,
            result: result.clone(),
            feasible,
        };
        if feasible {
            return Some(choice);
        }
        let tail = result.e2e_latency.p95_s;
        if best_fallback.as_ref().is_none_or(|(t, _)| tail < *t) {
            best_fallback = Some((tail, choice));
        }
    }
    best_fallback.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ServerScheme;

    fn template() -> ClusterRun {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn, // overwritten per candidate
            server_utilization: 0.3,
            background_util: 0.1,
            duration_s: 4.0,
            warmup_s: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn picks_a_feasible_minimum_power_candidate() {
        let cfg = ClusterConfig::default();
        let choice =
            optimize_total_power(&cfg, &template(), &aggregation_candidates()).unwrap();
        assert!(choice.feasible, "30 ms SLA at light load must be feasible");
        // With light background and a 30 ms SLA, an aggressive aggregation
        // should win (fewer switches than Agg0's 20).
        assert!(
            choice.result.active_switches < 20,
            "expected consolidation to pay off, kept {}",
            choice.result.active_switches
        );
    }

    #[test]
    fn tight_sla_forces_more_switches_on() {
        let mut cfg = ClusterConfig::default();
        let loose = optimize_total_power(&cfg, &template(), &aggregation_candidates())
            .unwrap();
        // Tighten the SLA drastically: the optimizer must react by
        // selecting a configuration with at least as many switches.
        cfg.sla = cfg.sla.with_total(9.0e-3);
        let tight = optimize_total_power(&cfg, &template(), &aggregation_candidates())
            .unwrap();
        assert!(
            tight.result.active_switches >= loose.result.active_switches,
            "tight SLA kept {} switches, loose kept {}",
            tight.result.active_switches,
            loose.result.active_switches
        );
    }

    #[test]
    fn candidate_builders() {
        assert_eq!(aggregation_candidates().len(), 4);
        let ks = scale_factor_candidates(5);
        assert_eq!(ks.len(), 5);
        assert!(matches!(ks[0], ConsolidationSpec::GreedyK(k) if k == 1.0));
        assert!(matches!(ks[4], ConsolidationSpec::GreedyK(k) if k == 5.0));
    }

    #[test]
    fn adaptive_k_finds_a_feasible_configuration() {
        let cfg = ClusterConfig::default();
        let choice = adaptive_k(&cfg, &template(), 5).unwrap();
        assert!(choice.feasible, "30 ms SLA at light load must be reachable");
        assert!(matches!(choice.spec, ConsolidationSpec::GreedyK(_)));
        // Feedback stops at the first feasible K — the most consolidated
        // network that meets the SLA.
        assert!(choice.result.active_switches <= 20);
    }

    #[test]
    fn adaptive_k_falls_back_to_least_bad_when_impossible() {
        let mut cfg = ClusterConfig::default();
        cfg.sla = cfg.sla.with_total(7.0e-3); // nothing meets 7 ms
        let choice = adaptive_k(&cfg, &template(), 3).unwrap();
        assert!(!choice.feasible);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let cfg = ClusterConfig::default();
        assert!(optimize_total_power(&cfg, &template(), &[]).is_none());
    }
}
