//! The joint server+network power optimizer (paper §IV).
//!
//! EPRONS "minimizes the entire data center's power consumption through
//! dynamically searching the optimal parameter K … while guaranteeing the
//! latency constraints". Concretely: evaluate each candidate network
//! configuration (scale factor `K` or aggregation preset), keep those that
//! meet the end-to-end SLA, and choose the one with the lowest *total*
//! power. When nothing is feasible the optimizer "turns on a minimal
//! number of additional network links and switches": it falls back to the
//! candidate with the lowest measured tail latency.
//!
//! Both search strategies run on the staged pipeline: candidates share one
//! [`ScenarioContext`], so the per-candidate cost is consolidation +
//! latency sampling + DVFS simulation, never a workload rebuild. Use
//! [`optimize_in_context`] / [`adaptive_k_in_context`] directly when a
//! context is already in hand (the day controller builds one per epoch);
//! the template-taking entry points build it for you.

use crate::cluster::{
    ClusterError, ClusterRun, ClusterRunResult, ConsolidationSpec,
};
use crate::config::ClusterConfig;
use crate::scenario::{ScenarioContext, ScenarioSpec};

/// The optimizer's selection.
#[derive(Debug, Clone)]
pub struct JointChoice {
    /// The chosen network configuration.
    pub spec: ConsolidationSpec,
    /// Its measured run.
    pub result: ClusterRunResult,
    /// Whether the choice met the SLA (false = least-bad fallback).
    pub feasible: bool,
    /// Candidates actually measured before committing (the optimizer's
    /// cost currency — [`adaptive_k`] exists to make this smaller than
    /// the full ladder's).
    pub evaluated: u64,
}

/// Journals one measured candidate's verdict (no-op when telemetry is
/// off). Shared by both search strategies so the trace schema cannot
/// drift between them.
fn journal_candidate(spec: ConsolidationSpec, result: &ClusterRunResult, feasible: bool) {
    if eprons_obs::enabled() {
        eprons_obs::record(eprons_obs::Event::OptimizerCandidate {
            k: spec.label(),
            total_w: result.breakdown.total_w(),
            p95_us: result.e2e_latency.p95_s * 1.0e6,
            feasible,
        });
    }
}

/// Journals a candidate that failed to evaluate at all.
fn journal_failure(spec: ConsolidationSpec, err: &ClusterError) {
    if eprons_obs::enabled() {
        eprons_obs::record(eprons_obs::Event::CandidateFailed {
            k: spec.label(),
            error: err.to_string(),
        });
    }
}

/// Journals the committed choice and returns it.
fn journal_choice(choice: JointChoice) -> JointChoice {
    if eprons_obs::enabled() {
        eprons_obs::record(eprons_obs::Event::OptimizerChoice {
            k: choice.spec.label(),
            total_w: choice.result.breakdown.total_w(),
            p95_us: choice.result.e2e_latency.p95_s * 1.0e6,
            feasible: choice.feasible,
            evaluated: choice.evaluated,
        });
    }
    choice
}

/// Evaluates `candidates` (in parallel) under the given run template and
/// returns the minimum-total-power feasible choice, or the lowest-latency
/// candidate if none is feasible. Returns `None` only if every candidate
/// fails outright (e.g. consolidation cannot place the traffic anywhere).
///
/// Convenience wrapper over [`optimize_total_power_traced`] that drops the
/// per-candidate failure reasons.
pub fn optimize_total_power(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    candidates: &[ConsolidationSpec],
) -> Option<JointChoice> {
    optimize_total_power_traced(cfg, template, candidates).0
}

/// [`optimize_total_power`] with full decision tracing: every candidate's
/// verdict is journaled (when telemetry is on) as an `OptimizerCandidate`
/// or `CandidateFailed` event, the commit as an `OptimizerChoice`, and the
/// failures are returned alongside the choice so callers can report *why*
/// candidates dropped out instead of silently swallowing their errors.
///
/// Builds one [`ScenarioContext`] from the template and delegates to
/// [`optimize_in_context`].
pub fn optimize_total_power_traced(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    candidates: &[ConsolidationSpec],
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    if candidates.is_empty() {
        return (None, Vec::new());
    }
    let ctx = ScenarioContext::build(cfg, &ScenarioSpec::of_run(template));
    optimize_in_context(&ctx, template.scheme, candidates)
}

/// The exhaustive search against an already-built scenario: evaluates
/// every candidate (fanning out over the thread budget), journals each
/// verdict, and commits the minimum-total-power feasible candidate (or
/// the lowest-tail fallback).
pub fn optimize_in_context(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    candidates: &[ConsolidationSpec],
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    optimize_in_context_masked(ctx, scheme, candidates, &[])
}

/// [`optimize_in_context`] with a failed-switch mask: every candidate is
/// consolidated with `excluded` switches forced off, so the ladder an
/// epoch searches after a failure never routes through dead hardware
/// (the next-epoch half of the degradation ladder, §IV-B).
pub fn optimize_in_context_masked(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    candidates: &[ConsolidationSpec],
    excluded: &[eprons_topo::NodeId],
) -> (Option<JointChoice>, Vec<(ConsolidationSpec, ClusterError)>) {
    let cfg = ctx.cfg();
    let results = ctx.evaluate_candidates_masked(scheme, candidates, excluded);
    let mut ok: Vec<(ConsolidationSpec, ClusterRunResult, bool)> = Vec::new();
    let mut failures: Vec<(ConsolidationSpec, ClusterError)> = Vec::new();
    for (spec, res) in results {
        match res {
            Ok(r) => {
                let feasible = r.is_feasible(cfg);
                journal_candidate(spec, &r, feasible);
                ok.push((spec, r, feasible));
            }
            Err(e) => {
                journal_failure(spec, &e);
                failures.push((spec, e));
            }
        }
    }
    if ok.is_empty() {
        return (None, failures);
    }
    let evaluated = ok.len() as u64;
    // Feasible set → min total power.
    let feasible = ok
        .iter()
        .filter(|(_, _, feasible)| *feasible)
        .min_by(|a, b| {
            a.1.breakdown
                .total_w()
                .partial_cmp(&b.1.breakdown.total_w())
                .expect("power is finite")
        });
    let choice = if let Some((spec, result, _)) = feasible {
        JointChoice {
            spec: *spec,
            result: result.clone(),
            feasible: true,
            evaluated,
        }
    } else {
        // Fallback: least-bad latency (most generous network).
        let (spec, result, _) = ok
            .iter()
            .min_by(|a, b| {
                a.1.e2e_latency
                    .p95_s
                    .partial_cmp(&b.1.e2e_latency.p95_s)
                    .expect("latency is finite")
            })
            .expect("non-empty");
        JointChoice {
            spec: *spec,
            result: result.clone(),
            feasible: false,
            evaluated,
        }
    };
    (Some(journal_choice(choice)), failures)
}

/// The paper's candidate ladder: the four Fig. 9 aggregation presets.
pub fn aggregation_candidates() -> Vec<ConsolidationSpec> {
    eprons_topo::AggregationLevel::ALL
        .iter()
        .map(|&l| ConsolidationSpec::Level(l))
        .collect()
}

/// A scale-factor ladder for `K`-based consolidation (Fig. 11's sweep).
pub fn scale_factor_candidates(k_max: usize) -> Vec<ConsolidationSpec> {
    (1..=k_max)
        .map(|k| ConsolidationSpec::GreedyK(k as f64))
        .collect()
}

/// The §II feedback variant: "latency-aware traffic consolidation
/// dynamically adjusts the scale factor K to control the network latency".
/// Starting at `K = 1` (maximum consolidation, minimum DCN power), the
/// controller raises K — reserving more headroom and thereby activating
/// more switches — until the measured end-to-end tail meets the SLA, and
/// returns the first feasible configuration. Unlike
/// [`optimize_total_power`] it does not evaluate the whole ladder, so it
/// converges with fewer measurements at the cost of possibly stopping one
/// step early on non-monotone instances.
pub fn adaptive_k(
    cfg: &ClusterConfig,
    template: &ClusterRun,
    k_max: usize,
) -> Option<JointChoice> {
    let ctx = ScenarioContext::build(cfg, &ScenarioSpec::of_run(template));
    adaptive_k_in_context(&ctx, template.scheme, k_max)
}

/// [`adaptive_k`] against an already-built scenario. The sequential K
/// ladder shares the context too: each step re-runs only consolidation,
/// latency sampling, and the DVFS sweep.
pub fn adaptive_k_in_context(
    ctx: &ScenarioContext,
    scheme: crate::cluster::ServerScheme,
    k_max: usize,
) -> Option<JointChoice> {
    let cfg = ctx.cfg();
    let mut evaluated = 0u64;
    let mut best_fallback: Option<(f64, JointChoice)> = None;
    for k in 1..=k_max {
        let spec = ConsolidationSpec::GreedyK(k as f64);
        let result = match ctx.evaluate(scheme, spec) {
            Ok(r) => r,
            Err(e) => {
                journal_failure(spec, &e);
                continue; // K too large for the capacity: skip
            }
        };
        evaluated += 1;
        let feasible = result.is_feasible(cfg);
        journal_candidate(spec, &result, feasible);
        let choice = JointChoice {
            spec,
            result,
            feasible,
            evaluated,
        };
        if feasible {
            return Some(journal_choice(choice));
        }
        let tail = choice.result.e2e_latency.p95_s;
        if best_fallback.as_ref().is_none_or(|(t, _)| tail < *t) {
            best_fallback = Some((tail, choice));
        }
    }
    best_fallback.map(|(_, mut c)| {
        c.evaluated = evaluated;
        journal_choice(c)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ServerScheme;

    fn template() -> ClusterRun {
        ClusterRun {
            scheme: ServerScheme::EpronsServer,
            consolidation: ConsolidationSpec::AllOn, // overwritten per candidate
            server_utilization: 0.3,
            background_util: 0.1,
            duration_s: 4.0,
            warmup_s: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn picks_a_feasible_minimum_power_candidate() {
        let cfg = ClusterConfig::default();
        let choice =
            optimize_total_power(&cfg, &template(), &aggregation_candidates()).unwrap();
        assert!(choice.feasible, "30 ms SLA at light load must be feasible");
        assert_eq!(choice.evaluated, 4, "the full ladder is always measured");
        // With light background and a 30 ms SLA, an aggressive aggregation
        // should win (fewer switches than Agg0's 20).
        assert!(
            choice.result.active_switches < 20,
            "expected consolidation to pay off, kept {}",
            choice.result.active_switches
        );
    }

    #[test]
    fn tight_sla_forces_more_switches_on() {
        let mut cfg = ClusterConfig::default();
        let loose = optimize_total_power(&cfg, &template(), &aggregation_candidates())
            .unwrap();
        // Tighten the SLA drastically: the optimizer must react by
        // selecting a configuration with at least as many switches.
        cfg.sla = cfg.sla.with_total(9.0e-3);
        let tight = optimize_total_power(&cfg, &template(), &aggregation_candidates())
            .unwrap();
        assert!(
            tight.result.active_switches >= loose.result.active_switches,
            "tight SLA kept {} switches, loose kept {}",
            tight.result.active_switches,
            loose.result.active_switches
        );
    }

    #[test]
    fn candidate_builders() {
        assert_eq!(aggregation_candidates().len(), 4);
        let ks = scale_factor_candidates(5);
        assert_eq!(ks.len(), 5);
        assert!(matches!(ks[0], ConsolidationSpec::GreedyK(k) if k == 1.0));
        assert!(matches!(ks[4], ConsolidationSpec::GreedyK(k) if k == 5.0));
    }

    #[test]
    fn adaptive_k_finds_a_feasible_configuration() {
        let cfg = ClusterConfig::default();
        let choice = adaptive_k(&cfg, &template(), 5).unwrap();
        assert!(choice.feasible, "30 ms SLA at light load must be reachable");
        assert!(matches!(choice.spec, ConsolidationSpec::GreedyK(_)));
        // Feedback stops at the first feasible K — the most consolidated
        // network that meets the SLA.
        assert!(choice.result.active_switches <= 20);
    }

    #[test]
    fn adaptive_k_measures_fewer_candidates_than_the_full_ladder() {
        // The whole point of the feedback variant: on a feasible instance
        // it commits after the first feasible K instead of measuring the
        // entire ladder.
        let cfg = ClusterConfig::default();
        let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template()));
        let full = optimize_in_context(
            &ctx,
            ServerScheme::EpronsServer,
            &scale_factor_candidates(5),
        )
        .0
        .unwrap();
        let adaptive = adaptive_k_in_context(&ctx, ServerScheme::EpronsServer, 5).unwrap();
        assert!(adaptive.feasible);
        assert_eq!(full.evaluated, 5);
        assert!(
            adaptive.evaluated < full.evaluated,
            "adaptive measured {} of {} candidates",
            adaptive.evaluated,
            full.evaluated
        );
        // And the configuration it stops at is feasible under the same
        // scenario the exhaustive search measured.
        assert!(adaptive.result.is_feasible(&cfg));
    }

    #[test]
    fn adaptive_k_falls_back_to_least_bad_when_impossible() {
        let mut cfg = ClusterConfig::default();
        cfg.sla = cfg.sla.with_total(7.0e-3); // nothing meets 7 ms
        let choice = adaptive_k(&cfg, &template(), 3).unwrap();
        assert!(!choice.feasible);
        assert_eq!(choice.evaluated, 3, "infeasible ladders are fully measured");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let cfg = ClusterConfig::default();
        let (choice, failures) = optimize_total_power_traced(&cfg, &template(), &[]);
        assert!(choice.is_none());
        assert!(failures.is_empty());
    }

    #[test]
    fn traced_surfaces_failure_reasons() {
        let cfg = ClusterConfig::default();
        // An absurd K makes every latency-sensitive reservation exceed link
        // capacity: that candidate must fail with a reported reason while
        // the sane candidate still wins.
        let cands = [
            ConsolidationSpec::GreedyK(1.0),
            ConsolidationSpec::GreedyK(1.0e6),
        ];
        let (choice, failures) = optimize_total_power_traced(&cfg, &template(), &cands);
        let choice = choice.expect("K=1 evaluates");
        assert!(matches!(choice.spec, ConsolidationSpec::GreedyK(k) if k == 1.0));
        assert_eq!(choice.evaluated, 1, "only the sane candidate measured");
        assert_eq!(failures.len(), 1);
        let (spec, err) = &failures[0];
        assert!(matches!(spec, ConsolidationSpec::GreedyK(k) if *k == 1.0e6));
        assert!(err.to_string().contains("consolidation failed"));
    }
}
