//! EPRONS — joint server and network energy saving for latency-sensitive
//! data-center applications (IPDPS 2018).
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: the full data-center model (16-server
//! partition–aggregate search on a 4-ary fat-tree), the cross-layer slack
//! transfer, the joint optimizer over the scale factor `K` / aggregation
//! level, and the SDN-controller epoch loop of Fig. 7.
//!
//! * [`config`] — one [`config::ClusterConfig`] holding every calibrated
//!   parameter (SLA split, power models, latency knee, DVFS ladder…).
//! * [`cluster`] — the end-to-end cluster simulator: consolidation →
//!   per-query network latency sampling → per-ISN DVFS simulation →
//!   power/latency accounting. The workhorse behind Figs. 10–13 and 15.
//! * [`optimizer`] — the joint power optimizer: evaluate candidate
//!   consolidation configurations, keep the SLA-feasible ones, pick the
//!   minimum-total-power one (§IV).
//! * [`controller`] — the SDN-controller epoch loop over a 24 h diurnal
//!   day (10-minute optimization period, §IV-B), producing the Fig. 15
//!   power timeline.
//! * [`scenario`] — the staged evaluation pipeline: build a
//!   [`scenario::ScenarioContext`] once per (config, seed, load) point,
//!   then evaluate many candidate configurations against it.
//! * [`accounting`] — power breakdowns and savings arithmetic, plus the
//!   pipeline's final accounting stage.
//! * [`parallel`] — a scoped-thread parallel map for parameter sweeps.
//! * [`report`] — plain-text table output shared by the figure harnesses.

#![warn(missing_docs)]

pub mod accounting;
pub mod cluster;
pub mod config;
pub mod controller;
pub mod optimizer;
pub mod parallel;
pub mod report;
pub mod scenario;

pub use accounting::PowerBreakdown;
pub use cluster::ClusterError;
pub use cluster::{run_cluster, ClusterRun, ClusterRunResult, ConsolidationSpec, ServerScheme};
pub use config::{
    ClusterConfig, ConsolidateStrategy, DayScopeConfig, DeferralConfig, FailurePolicyConfig,
    HysteresisConfig, OnlineConfig,
};
pub use controller::{
    day_churn, day_churn_count, day_total_energy_j, day_transition_energy_j, simulate_day,
    simulate_day_with_failures, DayConfig, DayRecord, DayStrategy,
};
pub use eprons_net::failure::{DegradationStage, FailureEvent, FailureEventKind, FailureSchedule};
pub use eprons_workload::adversarial::{FlashCrowd, StepLoad, TraceScenario};
pub use eprons_workload::replay::ReplayTrace;
pub use optimizer::{
    adaptive_k, adaptive_k_in_context, adaptive_k_in_context_hinted, candidate_power_floor_w,
    optimize_in_context, optimize_in_context_masked, optimize_in_context_pruned,
    optimize_total_power, optimize_total_power_traced, JointChoice,
};
pub use parallel::{parallel_map, parallel_map_range, set_thread_budget, thread_budget};
pub use scenario::{
    eval_cache_enabled, plan_cache_enabled, set_eval_cache_enabled, set_plan_cache_enabled,
    DayCacheStats, DayContext, NetworkPlan, ScenarioContext, ScenarioSpec, ServerEvaluation,
};
