//! Parallel == serial, bit for bit.
//!
//! The sharded cluster simulator and the parallel optimizer must produce
//! byte-identical results no matter how many worker threads the budget
//! grants: per-server RNG seeds are drawn serially before the fan-out,
//! shards share no mutable state, and reductions fold shard results in
//! index order. These tests pin that contract by running every entry
//! point under `set_thread_budget(Some(1))` and `Some(4)` and comparing
//! float *bits*, not approximate values.
//!
//! This file is its own test binary (own process), so overriding the
//! process-wide budget here cannot race the unit tests in the library.
//! CI machines with any core count exercise both paths: budget 4 still
//! spawns helper threads on a single-core runner.

use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{
    optimize_total_power, run_cluster, set_thread_budget, ClusterConfig, ClusterRun,
    ClusterRunResult, ConsolidationSpec, ServerScheme,
};
use eprons_server::clear_equiv_cache;
use eprons_topo::AggregationLevel;

fn short_run(scheme: ServerScheme, consolidation: ConsolidationSpec) -> ClusterRun {
    ClusterRun {
        scheme,
        consolidation,
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 1.0,
        warmup_s: 0.0,
        seed: 7,
    }
}

/// Every float in the result, as exact bits.
fn result_bits(r: &ClusterRunResult) -> Vec<u64> {
    let mut v = vec![
        r.breakdown.server_w.to_bits(),
        r.breakdown.network_w.to_bits(),
        r.cpu_power_w.to_bits(),
        r.active_switches as u64,
        r.max_link_utilization.to_bits(),
        r.query_count as u64,
        r.e2e_miss_rate.to_bits(),
        r.server_miss_rate.to_bits(),
    ];
    for s in [
        &r.net_latency,
        &r.server_latency,
        &r.e2e_latency,
        &r.query_e2e_latency,
    ] {
        v.extend([s.mean_s.to_bits(), s.p95_s.to_bits(), s.p99_s.to_bits()]);
    }
    v.extend(r.active_switch_ids.iter().map(|&id| id as u64));
    v
}

fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    set_thread_budget(Some(budget));
    let r = f();
    set_thread_budget(None);
    r
}

#[test]
fn run_cluster_is_bit_identical_serial_vs_parallel() {
    let cfg = ClusterConfig::default();
    for (scheme, consolidation) in [
        (ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0)),
        (
            ServerScheme::Rubik,
            ConsolidationSpec::Level(AggregationLevel::Agg2),
        ),
        (ServerScheme::TimeTrader, ConsolidationSpec::AllOn),
    ] {
        let run = short_run(scheme, consolidation);
        let serial = with_budget(1, || run_cluster(&cfg, &run).unwrap());
        let parallel = with_budget(4, || run_cluster(&cfg, &run).unwrap());
        assert_eq!(
            result_bits(&serial),
            result_bits(&parallel),
            "{} / {} diverged between 1 and 4 threads",
            scheme.name(),
            consolidation.label()
        );
    }
}

#[test]
fn optimizer_is_bit_identical_serial_vs_parallel() {
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let candidates = [
        ConsolidationSpec::AllOn,
        ConsolidationSpec::Level(AggregationLevel::Agg1),
        ConsolidationSpec::Level(AggregationLevel::Agg2),
        ConsolidationSpec::Level(AggregationLevel::Agg3),
    ];
    let serial = with_budget(1, || {
        optimize_total_power(&cfg, &template, &candidates).unwrap()
    });
    let parallel = with_budget(4, || {
        optimize_total_power(&cfg, &template, &candidates).unwrap()
    });
    assert_eq!(serial.spec, parallel.spec, "candidate choice diverged");
    assert_eq!(serial.feasible, parallel.feasible);
    assert_eq!(result_bits(&serial.result), result_bits(&parallel.result));
}

#[test]
fn staged_pipeline_matches_run_cluster_bit_for_bit() {
    // The golden equality pin for the staged refactor: evaluating any
    // (scheme, consolidation) pair against one shared ScenarioContext must
    // reproduce the one-shot `run_cluster` wrapper (which builds a fresh
    // context per call) exactly — every scheme, every aggregation level,
    // every float bit. Context reuse can never leak into the numbers.
    let cfg = ClusterConfig::default();
    let schemes = [
        ServerScheme::NoPowerManagement,
        ServerScheme::Rubik,
        ServerScheme::RubikPlus,
        ServerScheme::TimeTrader,
        ServerScheme::EpronsServer,
        ServerScheme::DeepSleep,
    ];
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    for scheme in schemes {
        for level in AggregationLevel::ALL {
            let spec = ConsolidationSpec::Level(level);
            let run = short_run(scheme, spec);
            let monolithic = run_cluster(&cfg, &run).unwrap();
            let staged = ctx.evaluate(scheme, spec).unwrap();
            assert_eq!(
                result_bits(&monolithic),
                result_bits(&staged),
                "{} / {} diverged between fresh and shared context",
                scheme.name(),
                spec.label()
            );
        }
    }
    // GreedyK and the serial/parallel axis too: a shared context under
    // budget 1 equals a fresh build under budget 4.
    let spec = ConsolidationSpec::GreedyK(2.0);
    let run = short_run(ServerScheme::EpronsServer, spec);
    let fresh = with_budget(4, || run_cluster(&cfg, &run).unwrap());
    let shared = with_budget(1, || {
        ctx.evaluate(ServerScheme::EpronsServer, spec).unwrap()
    });
    assert_eq!(result_bits(&fresh), result_bits(&shared));
}

#[test]
fn with_sla_reuses_the_build_without_changing_the_physics() {
    // `with_sla` swaps the SLA without rebuilding: the cached state
    // (topology, service model, workloads, RNG snapshots) is
    // SLA-independent, so evaluating under the swapped SLA must equal a
    // from-scratch build under that SLA, bit for bit.
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    let mut tight_cfg = cfg.clone();
    tight_cfg.sla = tight_cfg.sla.with_total(9.0e-3);
    let tight_ctx = ctx.with_sla(tight_cfg.sla.clone());
    let spec = ConsolidationSpec::Level(AggregationLevel::Agg2);
    let run = short_run(ServerScheme::EpronsServer, spec);
    let fresh = run_cluster(&tight_cfg, &run).unwrap();
    let reused = tight_ctx.evaluate(ServerScheme::EpronsServer, spec).unwrap();
    assert_eq!(result_bits(&fresh), result_bits(&reused));
}

#[test]
fn shared_equiv_cache_is_invisible_to_results() {
    // Cold cache (first run computes the convolution ladder) and warm
    // cache (second run inherits the published prefix) must agree exactly:
    // each ladder level is a pure function of the previous one, so where
    // the level came from can never leak into the numbers.
    let cfg = ClusterConfig::default();
    let run = short_run(ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0));
    clear_equiv_cache();
    let cold = run_cluster(&cfg, &run).unwrap();
    let warm = run_cluster(&cfg, &run).unwrap();
    assert_eq!(result_bits(&cold), result_bits(&warm));
}
