//! Parallel == serial, bit for bit.
//!
//! The sharded cluster simulator and the parallel optimizer must produce
//! byte-identical results no matter how many worker threads the budget
//! grants: per-server RNG seeds are drawn serially before the fan-out,
//! shards share no mutable state, and reductions fold shard results in
//! index order. These tests pin that contract by running every entry
//! point under `set_thread_budget(Some(1))` and `Some(4)` and comparing
//! float *bits*, not approximate values.
//!
//! This file is its own test binary (own process), so overriding the
//! process-wide budget here cannot race the unit tests in the library.
//! CI machines with any core count exercise both paths: budget 4 still
//! spawns helper threads on a single-core runner.

use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{
    candidate_power_floor_w, optimize_in_context_masked, optimize_in_context_pruned,
    optimize_total_power, run_cluster, set_plan_cache_enabled, set_thread_budget, ClusterConfig,
    ClusterRun, ClusterRunResult, ConsolidationSpec, ServerScheme,
};
use eprons_server::clear_equiv_cache;
use eprons_topo::AggregationLevel;

fn short_run(scheme: ServerScheme, consolidation: ConsolidationSpec) -> ClusterRun {
    ClusterRun {
        scheme,
        consolidation,
        server_utilization: 0.3,
        background_util: 0.2,
        duration_s: 1.0,
        warmup_s: 0.0,
        seed: 7,
    }
}

/// Every float in the result, as exact bits.
fn result_bits(r: &ClusterRunResult) -> Vec<u64> {
    let mut v = vec![
        r.breakdown.server_w.to_bits(),
        r.breakdown.network_w.to_bits(),
        r.cpu_power_w.to_bits(),
        r.active_switches as u64,
        r.max_link_utilization.to_bits(),
        r.query_count as u64,
        r.e2e_miss_rate.to_bits(),
        r.server_miss_rate.to_bits(),
    ];
    for s in [
        &r.net_latency,
        &r.server_latency,
        &r.e2e_latency,
        &r.query_e2e_latency,
    ] {
        v.extend([s.mean_s.to_bits(), s.p95_s.to_bits(), s.p99_s.to_bits()]);
    }
    v.extend(r.active_switch_ids.iter().map(|&id| id as u64));
    v
}

fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    set_thread_budget(Some(budget));
    let r = f();
    set_thread_budget(None);
    r
}

#[test]
fn run_cluster_is_bit_identical_serial_vs_parallel() {
    let cfg = ClusterConfig::default();
    for (scheme, consolidation) in [
        (ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0)),
        (
            ServerScheme::Rubik,
            ConsolidationSpec::Level(AggregationLevel::Agg2),
        ),
        (ServerScheme::TimeTrader, ConsolidationSpec::AllOn),
    ] {
        let run = short_run(scheme, consolidation);
        let serial = with_budget(1, || run_cluster(&cfg, &run).unwrap());
        let parallel = with_budget(4, || run_cluster(&cfg, &run).unwrap());
        assert_eq!(
            result_bits(&serial),
            result_bits(&parallel),
            "{} / {} diverged between 1 and 4 threads",
            scheme.name(),
            consolidation.label()
        );
    }
}

#[test]
fn optimizer_is_bit_identical_serial_vs_parallel() {
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let candidates = [
        ConsolidationSpec::AllOn,
        ConsolidationSpec::Level(AggregationLevel::Agg1),
        ConsolidationSpec::Level(AggregationLevel::Agg2),
        ConsolidationSpec::Level(AggregationLevel::Agg3),
    ];
    let serial = with_budget(1, || {
        optimize_total_power(&cfg, &template, &candidates).unwrap()
    });
    let parallel = with_budget(4, || {
        optimize_total_power(&cfg, &template, &candidates).unwrap()
    });
    assert_eq!(serial.spec, parallel.spec, "candidate choice diverged");
    assert_eq!(serial.feasible, parallel.feasible);
    assert_eq!(result_bits(&serial.result), result_bits(&parallel.result));
}

#[test]
fn staged_pipeline_matches_run_cluster_bit_for_bit() {
    // The golden equality pin for the staged refactor: evaluating any
    // (scheme, consolidation) pair against one shared ScenarioContext must
    // reproduce the one-shot `run_cluster` wrapper (which builds a fresh
    // context per call) exactly — every scheme, every aggregation level,
    // every float bit. Context reuse can never leak into the numbers.
    let cfg = ClusterConfig::default();
    let schemes = [
        ServerScheme::NoPowerManagement,
        ServerScheme::Rubik,
        ServerScheme::RubikPlus,
        ServerScheme::TimeTrader,
        ServerScheme::EpronsServer,
        ServerScheme::DeepSleep,
    ];
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    for scheme in schemes {
        for level in AggregationLevel::ALL {
            let spec = ConsolidationSpec::Level(level);
            let run = short_run(scheme, spec);
            let monolithic = run_cluster(&cfg, &run).unwrap();
            let staged = ctx.evaluate(scheme, spec).unwrap();
            assert_eq!(
                result_bits(&monolithic),
                result_bits(&staged),
                "{} / {} diverged between fresh and shared context",
                scheme.name(),
                spec.label()
            );
        }
    }
    // GreedyK and the serial/parallel axis too: a shared context under
    // budget 1 equals a fresh build under budget 4.
    let spec = ConsolidationSpec::GreedyK(2.0);
    let run = short_run(ServerScheme::EpronsServer, spec);
    let fresh = with_budget(4, || run_cluster(&cfg, &run).unwrap());
    let shared = with_budget(1, || {
        ctx.evaluate(ServerScheme::EpronsServer, spec).unwrap()
    });
    assert_eq!(result_bits(&fresh), result_bits(&shared));
}

#[test]
fn with_sla_reuses_the_build_without_changing_the_physics() {
    // `with_sla` swaps the SLA without rebuilding: the cached state
    // (topology, service model, workloads, RNG snapshots) is
    // SLA-independent, so evaluating under the swapped SLA must equal a
    // from-scratch build under that SLA, bit for bit.
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    let mut tight_cfg = cfg.clone();
    tight_cfg.sla = tight_cfg.sla.with_total(9.0e-3);
    let tight_ctx = ctx.with_sla(tight_cfg.sla.clone());
    let spec = ConsolidationSpec::Level(AggregationLevel::Agg2);
    let run = short_run(ServerScheme::EpronsServer, spec);
    let fresh = run_cluster(&tight_cfg, &run).unwrap();
    let reused = tight_ctx
        .evaluate(ServerScheme::EpronsServer, spec)
        .unwrap();
    assert_eq!(result_bits(&fresh), result_bits(&reused));
}

#[test]
fn pruned_warm_sweep_matches_exhaustive_cold_sweep_bit_for_bit() {
    // The PR-5 golden pin: the warm path (shared context, plan cache on,
    // bound-ordered pruned sweep, optional ordering hint) must pick the
    // same candidate with the same float bits as the cold pre-PR path
    // (plan cache off, exhaustive sweep) — for every server scheme over
    // the full aggregation ladder, and for a GreedyK ladder. Pruning may
    // only skip candidates whose *sound* power lower bound strictly
    // exceeds a feasible incumbent's measured total, and hints only
    // reorder evaluation, so the chosen spec, feasibility flag, and every
    // number in the winning result must be identical.
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ladder: Vec<ConsolidationSpec> = std::iter::once(ConsolidationSpec::AllOn)
        .chain(AggregationLevel::ALL.map(ConsolidationSpec::Level))
        .collect();
    let greedy: Vec<ConsolidationSpec> = [1.0, 2.0, 3.0].map(ConsolidationSpec::GreedyK).to_vec();
    let schemes = [
        ServerScheme::NoPowerManagement,
        ServerScheme::Rubik,
        ServerScheme::RubikPlus,
        ServerScheme::TimeTrader,
        ServerScheme::EpronsServer,
        ServerScheme::DeepSleep,
    ];
    for candidates in [&ladder, &greedy] {
        for scheme in schemes {
            let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
            set_plan_cache_enabled(false);
            let (cold, cold_fail) = optimize_in_context_masked(&ctx, scheme, candidates, &[]);
            set_plan_cache_enabled(true);
            // Hints are ordering advice: correct, wrong, and absent hints
            // must all reproduce the cold sweep exactly.
            let hints = [None, Some(candidates[0]), cold.as_ref().map(|c| c.spec)];
            for hint in hints {
                let (warm, warm_fail) =
                    optimize_in_context_pruned(&ctx, scheme, candidates, &[], hint);
                match (&cold, &warm) {
                    (Some(c), Some(w)) => {
                        assert_eq!(c.spec, w.spec, "{}: spec diverged", scheme.name());
                        assert_eq!(c.feasible, w.feasible, "{}: feasibility", scheme.name());
                        assert_eq!(
                            result_bits(&c.result),
                            result_bits(&w.result),
                            "{}: result bits diverged warm vs cold",
                            scheme.name()
                        );
                    }
                    (None, None) => {}
                    _ => panic!(
                        "{}: warm and cold disagree on having a choice",
                        scheme.name()
                    ),
                }
                assert_eq!(cold_fail.len(), warm_fail.len());
            }
        }
    }
}

#[test]
fn candidate_power_floor_never_exceeds_measured_total() {
    // Pruning is only sound if the analytic floor really is a lower
    // bound: for every candidate the ladder can see, the bound computed
    // without simulation must sit at or below the simulated total power.
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    let candidates: Vec<ConsolidationSpec> = std::iter::once(ConsolidationSpec::AllOn)
        .chain(AggregationLevel::ALL.map(ConsolidationSpec::Level))
        .chain([1.0, 2.0, 3.0].map(ConsolidationSpec::GreedyK))
        .collect();
    for scheme in [
        ServerScheme::NoPowerManagement,
        ServerScheme::EpronsServer,
        ServerScheme::DeepSleep,
    ] {
        for &spec in &candidates {
            let floor = candidate_power_floor_w(&ctx, scheme, spec, &[]);
            let measured = ctx.evaluate(scheme, spec).unwrap();
            assert!(
                floor <= measured.breakdown.total_w() + 1e-9,
                "{} / {}: floor {floor:.3} W exceeds measured {:.3} W",
                scheme.name(),
                spec.label(),
                measured.breakdown.total_w()
            );
        }
    }
}

#[test]
fn pruning_skips_dominated_candidates_at_light_load() {
    // At very light load the server draw sits near its idle floor, so the
    // expensive network presets' bounds exceed the aggressive preset's
    // measured total and the pruned sweep must evaluate strictly fewer
    // candidates than the exhaustive one — while choosing identically.
    let cfg = ClusterConfig::default();
    let mut template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    template.server_utilization = 0.05;
    template.background_util = 0.05;
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    let candidates: Vec<ConsolidationSpec> = std::iter::once(ConsolidationSpec::AllOn)
        .chain(AggregationLevel::ALL.map(ConsolidationSpec::Level))
        .collect();
    let (cold, _) = optimize_in_context_masked(&ctx, ServerScheme::EpronsServer, &candidates, &[]);
    let (warm, _) =
        optimize_in_context_pruned(&ctx, ServerScheme::EpronsServer, &candidates, &[], None);
    let (cold, warm) = (cold.unwrap(), warm.unwrap());
    assert_eq!(cold.spec, warm.spec);
    assert_eq!(result_bits(&cold.result), result_bits(&warm.result));
    assert_eq!(cold.evaluated, candidates.len() as u64);
    assert!(
        warm.evaluated < cold.evaluated,
        "pruned sweep evaluated {} of {} — expected at least one prune at light load",
        warm.evaluated,
        cold.evaluated
    );
}

#[test]
fn plan_cache_hits_are_bit_identical_to_rebuilds() {
    // A cached NetworkPlan must be indistinguishable from a rebuilt one:
    // the consolidation RNG fork is stored unconsumed and cloned per
    // build, so the plan is a pure function of (context, spec, mask).
    let cfg = ClusterConfig::default();
    let template = short_run(ServerScheme::EpronsServer, ConsolidationSpec::AllOn);
    let ctx = ScenarioContext::build(&cfg, &ScenarioSpec::of_run(&template));
    let spec = ConsolidationSpec::Level(AggregationLevel::Agg2);
    set_plan_cache_enabled(false);
    let rebuilt = ctx.evaluate(ServerScheme::EpronsServer, spec).unwrap();
    set_plan_cache_enabled(true);
    ctx.clear_plan_cache();
    let miss = ctx.evaluate(ServerScheme::EpronsServer, spec).unwrap();
    assert!(
        ctx.plan_cache_len() >= 1,
        "miss path must populate the cache"
    );
    let hit = ctx.evaluate(ServerScheme::EpronsServer, spec).unwrap();
    assert_eq!(result_bits(&rebuilt), result_bits(&miss));
    assert_eq!(result_bits(&miss), result_bits(&hit));
    ctx.clear_plan_cache();
    assert_eq!(ctx.plan_cache_len(), 0);
}

#[test]
fn shared_equiv_cache_is_invisible_to_results() {
    // Cold cache (first run computes the convolution ladder) and warm
    // cache (second run inherits the published prefix) must agree exactly:
    // each ladder level is a pure function of the previous one, so where
    // the level came from can never leak into the numbers.
    let cfg = ClusterConfig::default();
    let run = short_run(ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0));
    clear_equiv_cache();
    let cold = run_cluster(&cfg, &run).unwrap();
    let warm = run_cluster(&cfg, &run).unwrap();
    assert_eq!(result_bits(&cold), result_bits(&warm));
}
