//! End-to-end pod-masked repair: a failure day run under the
//! pod-decomposed strategy routes mid-epoch reconsolidation through the
//! epoch's shared `PodSolveCache`, so a single-pod switch failure
//! re-solves exactly the owning pod while every other pod's round-0
//! decisions are reused from cache — byte-identical by construction
//! (the cached `PodSolve` is the same object). The `net.pods.*`
//! counters observe this from outside the consolidator, which is what
//! makes the contract testable at the controller layer.
//!
//! Own test binary: the counter deltas are process-global, and no other
//! test in this binary may emit `net.pods.*` (they would race the
//! arithmetic).

use eprons_core::controller::DayConfig;
use eprons_core::{
    simulate_day, simulate_day_with_failures, ClusterConfig, ConsolidateStrategy,
    ConsolidationSpec, DayStrategy, FailureEvent, FailureEventKind, FailureSchedule,
};
use eprons_topo::FatTree;

fn pod_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        fat_tree_k: 4,
        // k=4 is below the Auto threshold; pin the strategy so the whole
        // day — epoch plans and mid-epoch reconsolidation — runs the
        // hierarchical path.
        consolidate_strategy: ConsolidateStrategy::PodDecomposed,
        ..ClusterConfig::default()
    };
    // Skip rung 1 (in-place victim re-route): the contract under test is
    // rung 2, the pod-masked reconsolidation.
    cfg.failure.attempt_repair = false;
    cfg
}

fn quick_day() -> DayConfig {
    DayConfig {
        epoch_minutes: 240,
        sim_seconds: 2.0,
        peak_utilization: 0.5,
        seed: 99,
        warm_start: true,
        ..DayConfig::default()
    }
}

fn eprons() -> DayStrategy {
    DayStrategy::Eprons {
        // A single GreedyK candidate: every epoch consolidates through
        // the pod decomposition (the aggregation presets would bypass
        // it and muddy the counter arithmetic).
        candidates: vec![ConsolidationSpec::GreedyK(2.0)],
    }
}

fn pods_counters() -> (u64, u64, u64) {
    let reg = eprons_obs::registry();
    (
        reg.counter("net.pods.solved").get(),
        reg.counter("net.pods.cache_hits").get(),
        reg.counter("net.pods.fallbacks").get(),
    )
}

#[test]
fn single_pod_failure_resolves_only_the_owning_pod() {
    let cfg = pod_cfg();
    let day = quick_day();
    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    // Fail one agg of pod 1 mid-epoch: the mask lands in exactly one
    // pod, and the pod keeps its second agg, so the masked re-solve is
    // feasible without any push-back round. The failure hits a low-load
    // epoch ([240, 480), morning trough) on purpose — at the midday
    // peak, losing half of one pod's agg capacity makes `GreedyK(2)`
    // genuinely infeasible and the ladder correctly drops to the all-on
    // rung, which is the wrong fixture for a cache-arithmetic test.
    let agg = ft.agg(1, 0);
    let schedule = FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 250.0,
            switch: agg.0,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 290.0,
            switch: agg.0,
            kind: FailureEventKind::Recover,
        },
    ]);

    eprons_obs::set_enabled(true);
    let before_clean = pods_counters();
    let baseline = simulate_day(&cfg, &eprons(), &day);
    let after_clean = pods_counters();
    let degraded = simulate_day_with_failures(&cfg, &eprons(), &day, &schedule);
    let after_failed = pods_counters();
    eprons_obs::set_enabled(false);

    let clean_solved = after_clean.0 - before_clean.0;
    let clean_hits = after_clean.1 - before_clean.1;
    let failed_solved = after_failed.0 - after_clean.0;
    let failed_hits = after_failed.1 - after_clean.1;
    assert_eq!(after_failed.2, 0, "no pass may fall back to monolithic");
    assert!(clean_solved > 0, "the clean day must run the decomposition");

    // The failure day does everything the clean day does, plus one
    // mid-epoch reconsolidation. Its mask covers one agg of pod 1, so
    // that replan solves exactly one pod fresh...
    assert_eq!(
        failed_solved,
        clean_solved + 1,
        "a single-pod failure must re-solve exactly the owning pod"
    );
    // ...and serves the other three pods from the epoch's cache — the
    // same `Arc<PodSolve>` the epoch-start plan computed, which is the
    // byte-identity guarantee (no recomputation to diverge).
    assert_eq!(
        failed_hits,
        clean_hits + 3,
        "the foreign pods must reuse their cached round-0 solves"
    );

    // End-to-end sanity on the records themselves: the dead agg never
    // appears active once failed, exactly one epoch degrades, and the
    // epochs the failure never touches are bit-identical to the clean
    // day (breakdown bits and active sets).
    let hit: Vec<_> = degraded
        .iter()
        .filter(|r| !r.failed_switches.is_empty())
        .collect();
    assert_eq!(hit.len(), 1, "the scripted failure spans exactly one epoch");
    let r = hit[0];
    assert!(
        !r.active_switch_ids.contains(&agg.0),
        "the failed agg must be masked out of the active set"
    );
    assert!(
        r.degradation.is_some(),
        "rung 2 must mark the epoch as reconsolidated"
    );
    for (b, d) in baseline.iter().zip(&degraded) {
        if d.failed_switches.is_empty() {
            assert_eq!(
                b.breakdown.total_w().to_bits(),
                d.breakdown.total_w().to_bits(),
                "untouched epoch at minute {} diverged",
                d.minute
            );
            assert_eq!(b.active_switch_ids, d.active_switch_ids);
        }
    }
}
