//! `controller::simulate_day` contracts: seeded determinism of the whole
//! epoch timeline, and the paper's headline outcome — a full EPRONS day
//! consumes less energy than a no-power-management day (Fig. 15).
//!
//! Own test binary: the determinism check overrides the process-wide
//! thread budget, which must not race the library's unit tests.

use eprons_core::controller::{day_total_energy_j, DayConfig};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::{set_thread_budget, simulate_day, ClusterConfig, DayRecord, DayStrategy};

fn quick_day() -> DayConfig {
    DayConfig {
        epoch_minutes: 240, // 6 epochs, for test speed
        sim_seconds: 2.0,
        peak_utilization: 0.5,
        seed: 99,
        warm_start: true,
        ..DayConfig::default()
    }
}

/// Every number in a day record, as exact bits.
fn record_bits(r: &DayRecord) -> Vec<u64> {
    let mut v = vec![
        r.minute.to_bits(),
        r.search_load.to_bits(),
        r.background_util.to_bits(),
        r.breakdown.server_w.to_bits(),
        r.breakdown.network_w.to_bits(),
        r.active_switches as u64,
        r.e2e_p95_s.to_bits(),
        r.feasible as u64,
    ];
    v.extend(r.active_switch_ids.iter().map(|&id| id as u64));
    v
}

#[test]
fn day_timeline_is_deterministic_given_seed() {
    let cfg = ClusterConfig::default();
    let day = quick_day();
    let strategy = DayStrategy::Eprons {
        candidates: aggregation_candidates(),
    };
    let a = simulate_day(&cfg, &strategy, &day);
    // Same seed, different thread budget: the timeline (every epoch's
    // choice, power split, switch set, and tail) must be bit-identical.
    set_thread_budget(Some(1));
    let b = simulate_day(&cfg, &strategy, &day);
    set_thread_budget(None);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            record_bits(x),
            record_bits(y),
            "epoch at minute {} diverged across runs",
            x.minute
        );
    }
}

#[test]
fn warm_started_day_matches_cold_day_bit_for_bit() {
    // PR-5 golden pin: epoch-to-epoch warm starting is an evaluation-order
    // hint, never a result change. A day simulated with `warm_start: true`
    // (sequential epochs, previous winner hinted forward) must reproduce
    // the cold day (`warm_start: false`, parallel epochs, no hints) in
    // every record bit and in total energy.
    let cfg = ClusterConfig::default();
    let strategy = DayStrategy::Eprons {
        candidates: aggregation_candidates(),
    };
    let warm_day = quick_day();
    let cold_day = DayConfig {
        warm_start: false,
        ..quick_day()
    };
    let warm = simulate_day(&cfg, &strategy, &warm_day);
    let cold = simulate_day(&cfg, &strategy, &cold_day);
    assert_eq!(warm.len(), cold.len());
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(
            record_bits(w),
            record_bits(c),
            "epoch at minute {} diverged between warm and cold days",
            w.minute
        );
    }
    let warm_j = day_total_energy_j(&warm, &warm_day);
    let cold_j = day_total_energy_j(&cold, &cold_day);
    assert_eq!(warm_j.to_bits(), cold_j.to_bits());
}

#[test]
fn eprons_day_uses_less_energy_than_no_power_management() {
    let cfg = ClusterConfig::default();
    let day = quick_day();
    let nopm = simulate_day(&cfg, &DayStrategy::NoPowerManagement, &day);
    let eprons = simulate_day(
        &cfg,
        &DayStrategy::Eprons {
            candidates: aggregation_candidates(),
        },
        &day,
    );
    let nopm_j = day_total_energy_j(&nopm, &day);
    let eprons_j = day_total_energy_j(&eprons, &day);
    assert!(nopm_j > 0.0);
    assert!(
        eprons_j < nopm_j,
        "EPRONS day {eprons_j:.0} J must undercut no-PM day {nopm_j:.0} J"
    );
}
