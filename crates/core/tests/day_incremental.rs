//! Day-scoped incremental evaluation: golden bit-identity and cache
//! counter arithmetic.
//!
//! The incremental machinery (the [`DayContext`] LRU, demand rebinds,
//! the process-wide server-evaluation memo) must be invisible in
//! results: a day run with `DayScopeConfig { incremental: true }` is
//! bit-for-bit the day run with `incremental: false` (the per-epoch
//! rebuild baseline), including under mid-day failures and across every
//! consolidation strategy. The constant-trace test then pins the cache
//! arithmetic exactly: a constant day has one operating point, so the
//! day cache misses once and hits every remaining epoch, and the server
//! memo replays the first epoch's evaluations verbatim.
//!
//! Own test binary: the serveval memo and the obs counters are
//! process-global, so tests serialize on a static mutex and no other
//! test binary's counters can race the arithmetic.

use std::sync::Mutex;

use eprons_core::controller::{day_total_energy_j, DayConfig};
use eprons_core::optimizer::scale_factor_candidates;
use eprons_core::{
    simulate_day, simulate_day_with_failures, ClusterConfig, ConsolidateStrategy,
    ConsolidationSpec, DayScopeConfig, DayStrategy, FailureEvent, FailureEventKind,
    FailureSchedule, OnlineConfig, ReplayTrace, TraceScenario,
};
use eprons_topo::FatTree;

/// Serializes the tests in this binary: the server memo and the obs
/// counter registry are process-global.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

fn core_failure(cfg: &ClusterConfig) -> FailureSchedule {
    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let core = ft.core(0, 0).0;
    FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 730.0,
            switch: core,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 770.0,
            switch: core,
            kind: FailureEventKind::Recover,
        },
    ])
}

fn assert_days_bit_identical(
    label: &str,
    baseline: &[eprons_core::controller::DayRecord],
    incremental: &[eprons_core::controller::DayRecord],
    baseline_day: &DayConfig,
    incremental_day: &DayConfig,
) {
    assert_eq!(baseline.len(), incremental.len(), "{label}: epoch count");
    for (b, i) in baseline.iter().zip(incremental) {
        assert_eq!(
            b.breakdown.total_w().to_bits(),
            i.breakdown.total_w().to_bits(),
            "{label}: power diverged at minute {}",
            b.minute
        );
        assert_eq!(
            b.active_switch_ids, i.active_switch_ids,
            "{label}: active set diverged at minute {}",
            b.minute
        );
        assert_eq!(
            b.e2e_p95_s.to_bits(),
            i.e2e_p95_s.to_bits(),
            "{label}: latency diverged at minute {}",
            b.minute
        );
        assert_eq!(b.feasible, i.feasible, "{label}: feasibility diverged");
    }
    assert_eq!(
        day_total_energy_j(baseline, baseline_day).to_bits(),
        day_total_energy_j(incremental, incremental_day).to_bits(),
        "{label}: day total energy diverged"
    );
}

/// Cold-rebuild vs incremental on a correlated-failure day, across all
/// three consolidation strategies: the caches must be invisible.
#[test]
fn incremental_day_is_bit_identical_across_strategies() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    for strategy in [
        ConsolidateStrategy::Monolithic,
        ConsolidateStrategy::PodDecomposed,
        ConsolidateStrategy::Auto,
    ] {
        let cfg = ClusterConfig {
            fat_tree_k: 4,
            consolidate_strategy: strategy,
            ..ClusterConfig::default()
        };
        let baseline_day = DayConfig {
            epoch_minutes: 480,
            sim_seconds: 1.0,
            peak_utilization: 0.5,
            seed: 7777,
            warm_start: true,
            online: Some(OnlineConfig::enabled()),
            day_scope: Some(DayScopeConfig {
                incremental: false,
                ..DayScopeConfig::default()
            }),
            ..DayConfig::default()
        };
        let incremental_day = DayConfig {
            day_scope: Some(DayScopeConfig::default()),
            ..baseline_day.clone()
        };
        let candidates = DayStrategy::Eprons {
            candidates: vec![ConsolidationSpec::GreedyK(1.0), ConsolidationSpec::GreedyK(2.0)],
        };
        let schedule = core_failure(&cfg);

        let baseline = simulate_day_with_failures(&cfg, &candidates, &baseline_day, &schedule);
        let incremental =
            simulate_day_with_failures(&cfg, &candidates, &incremental_day, &schedule);
        assert_days_bit_identical(
            strategy.name(),
            &baseline,
            &incremental,
            &baseline_day,
            &incremental_day,
        );
    }
}

/// A constant replay day has exactly one operating point, which pins
/// the cache counters: the day cache misses once (the first epoch's
/// build) and hits every other epoch; the server memo replays the first
/// epoch's evaluations on every later epoch; and a single-pod failure
/// still re-solves exactly the owning pod against the shared pod cache.
#[test]
fn constant_day_pins_cache_counter_arithmetic() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ClusterConfig {
        fat_tree_k: 4,
        consolidate_strategy: ConsolidateStrategy::PodDecomposed,
        ..ClusterConfig::default()
    };
    // Skip rung 1 (in-place victim re-route): the pod-counter contract
    // under test is rung 2, the pod-masked reconsolidation.
    cfg.failure.attempt_repair = false;
    let day = DayConfig {
        epoch_minutes: 240,
        sim_seconds: 1.0,
        peak_utilization: 0.5,
        seed: 99,
        warm_start: true,
        // Constant demand at the morning-trough level: low enough that
        // the masked single-pod re-solve stays feasible (see the
        // failure_pod_decomp fixture), constant so the whole day is one
        // operating point.
        search_trace: TraceScenario::Replay(ReplayTrace::constant(0.3)),
        background_trace: TraceScenario::Replay(ReplayTrace::constant(0.2)),
        day_scope: Some(DayScopeConfig::default()),
        ..DayConfig::default()
    };
    let epochs = 1440 / day.epoch_minutes;
    // A single GreedyK candidate: every consolidation runs the pod
    // decomposition, keeping the pod-counter arithmetic exact.
    let strategy = DayStrategy::Eprons {
        candidates: vec![ConsolidationSpec::GreedyK(2.0)],
    };
    // Fail one agg of pod 1 mid-epoch: the mask lands in exactly one
    // pod, and the pod keeps its second agg, so the masked re-solve is
    // feasible without a push-back round.
    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let agg = ft.agg(1, 0);
    let schedule = FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 250.0,
            switch: agg.0,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 290.0,
            switch: agg.0,
            kind: FailureEventKind::Recover,
        },
    ]);

    let counters = || {
        let reg = eprons_obs::registry();
        (
            reg.counter("core.daycache.hits").get(),
            reg.counter("core.daycache.misses").get(),
            reg.counter("core.serveval.hits").get(),
            reg.counter("core.serveval.misses").get(),
            reg.counter("net.pods.solved").get(),
            reg.counter("net.pods.cache_hits").get(),
            reg.counter("core.evalcache.hits").get(),
            reg.counter("core.evalcache.misses").get(),
        )
    };
    eprons_obs::set_enabled(true);
    let c0 = counters();
    let clean = simulate_day(&cfg, &strategy, &day);
    let c1 = counters();
    let failed = simulate_day_with_failures(&cfg, &strategy, &day, &schedule);
    let c2 = counters();
    eprons_obs::set_enabled(false);

    // Day cache: one build, then every epoch revives the same slot.
    assert_eq!(c1.1 - c0.1, 1, "clean day must build exactly one context");
    assert_eq!(
        c1.0 - c0.0,
        (epochs - 1) as u64,
        "clean day must revive the slot on every later epoch"
    );
    assert_eq!(c2.1 - c1.1, 1, "failure day must build exactly one context");
    assert_eq!(
        c2.0 - c1.0,
        (epochs - 1) as u64,
        "failure day must revive the slot on every later epoch"
    );

    // Result memo: one evaluation per epoch (a single candidate, no
    // hysteresis re-pricing), so the clean day computes the operating
    // point once and serves every later epoch from the cache. The
    // failure day adds exactly one more distinct point — the masked
    // evaluation of the failure window.
    let ec_hits = c1.6 - c0.6;
    let ec_misses = c1.7 - c0.7;
    assert_eq!(ec_misses, 1, "a constant day is one operating point");
    assert_eq!(
        ec_hits,
        (epochs - 1) as u64,
        "later epochs must serve the memoized result"
    );
    assert_eq!(
        c2.7 - c1.7,
        2,
        "the failure day evaluates exactly one extra (masked) point"
    );
    assert_eq!(
        c2.6 - c1.6,
        (epochs - 1) as u64,
        "failure-day repeats must still serve the memoized result"
    );

    // Server memo: with the result memo answering the repeat epochs,
    // stage 3 runs only on result-memo misses — each ISN is simulated
    // exactly once per distinct operating point (16 servers at k = 4),
    // and nothing ever asks the server memo twice. (Its hits come from
    // *partial* overlap between distinct operating points — the replay
    // harness's territory, not a constant day's.)
    let n_servers = (cfg.fat_tree_k * cfg.fat_tree_k * cfg.fat_tree_k) as u64 / 4;
    let sv_hits = c1.2 - c0.2;
    let sv_misses = c1.3 - c0.3;
    assert_eq!(
        sv_misses, n_servers,
        "the clean day's one stage-3 run must simulate each ISN once"
    );
    assert_eq!(sv_hits, 0, "no repeat lookups reach the server memo");
    assert_eq!(
        c2.3 - c1.3,
        2 * n_servers,
        "the failure day's two stage-3 runs must simulate each ISN twice"
    );

    // Pod cache: the clean day consolidates once (first epoch; later
    // epochs hit the revived plan cache and never consolidate). The
    // failure day adds exactly one masked reconsolidation: one pod
    // solved fresh, the other three served from the shared pod cache.
    let clean_solved = c1.4 - c0.4;
    let clean_pod_hits = c1.5 - c0.5;
    let failed_solved = c2.4 - c1.4;
    let failed_pod_hits = c2.5 - c1.5;
    assert!(clean_solved > 0, "the clean day must run the decomposition");
    assert_eq!(
        failed_solved,
        clean_solved + 1,
        "a single-pod failure must re-solve exactly the owning pod"
    );
    assert_eq!(
        failed_pod_hits,
        clean_pod_hits + 3,
        "the foreign pods must reuse their cached solves"
    );

    // The constant day really is constant: every untouched epoch of the
    // failure day matches the clean day bit for bit.
    for (b, d) in clean.iter().zip(&failed) {
        if d.failed_switches.is_empty() {
            assert_eq!(
                b.breakdown.total_w().to_bits(),
                d.breakdown.total_w().to_bits(),
                "untouched epoch at minute {} diverged",
                d.minute
            );
        }
    }
}

/// The k=16 bit-identity golden (the replay harness's scale, coarse
/// epochs). Expensive, so ignored by default; CI runs it in release
/// mode via `cargo test --release --test day_incremental -- --ignored`.
#[test]
#[ignore = "k=16 is expensive; CI runs it in release mode"]
fn quick_k16_incremental_day_is_bit_identical() {
    let _guard = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = ClusterConfig {
        fat_tree_k: 16,
        ..ClusterConfig::default()
    };
    let n = cfg.num_servers() as f64;
    cfg.query_flow_mbps = cfg.query_flow_mbps.min(300.0 / (n - 1.0));
    let baseline_day = DayConfig {
        epoch_minutes: 480,
        sim_seconds: 0.5,
        peak_utilization: 0.5,
        seed: 2018,
        warm_start: true,
        online: Some(OnlineConfig::enabled()),
        day_scope: Some(DayScopeConfig {
            incremental: false,
            ..DayScopeConfig::default()
        }),
        ..DayConfig::default()
    };
    let incremental_day = DayConfig {
        day_scope: Some(DayScopeConfig::default()),
        ..baseline_day.clone()
    };
    let strategy = DayStrategy::Eprons {
        candidates: scale_factor_candidates(2),
    };
    let schedule = core_failure(&cfg);

    let baseline = simulate_day_with_failures(&cfg, &strategy, &baseline_day, &schedule);
    let incremental = simulate_day_with_failures(&cfg, &strategy, &incremental_day, &schedule);
    assert_days_bit_identical(
        "k16",
        &baseline,
        &incremental,
        &baseline_day,
        &incremental_day,
    );
}
