//! `controller::simulate_day_with_failures` contracts: the degradation
//! ladder keeps a scripted mid-day switch failure SLA-safe (or says so
//! loudly), charges §IV-B boot energy so the failed day costs more than
//! the clean one, and stays bit-deterministic across thread budgets.
//!
//! Own test binary: the determinism check overrides the process-wide
//! thread budget, which must not race the library's unit tests.

use eprons_core::controller::{day_total_energy_j, DayConfig};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::{
    set_thread_budget, simulate_day, simulate_day_with_failures, ClusterConfig, DayRecord,
    DayStrategy, FailureEvent, FailureEventKind, FailureSchedule,
};
use eprons_topo::FatTree;

fn quick_day() -> DayConfig {
    DayConfig {
        epoch_minutes: 240, // 6 epochs, for test speed
        sim_seconds: 2.0,
        peak_utilization: 0.5,
        seed: 99,
        warm_start: true,
        ..DayConfig::default()
    }
}

/// A core switch dying at 12:10 and coming back at 12:50 — both inside
/// the [720, 960) epoch of the quick day, so exactly one epoch degrades.
fn midday_core_failure(cfg: &ClusterConfig) -> FailureSchedule {
    let ft = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let core = ft.core(0, 0).0;
    FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 730.0,
            switch: core,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 770.0,
            switch: core,
            kind: FailureEventKind::Recover,
        },
    ])
}

fn eprons() -> DayStrategy {
    DayStrategy::Eprons {
        candidates: aggregation_candidates(),
    }
}

/// Every number in a day record, as exact bits (the superset of the
/// clean-day check: failure fields included).
fn record_bits(r: &DayRecord) -> Vec<u64> {
    let mut v = vec![
        r.minute.to_bits(),
        r.search_load.to_bits(),
        r.background_util.to_bits(),
        r.breakdown.server_w.to_bits(),
        r.breakdown.network_w.to_bits(),
        r.active_switches as u64,
        r.e2e_p95_s.to_bits(),
        r.feasible as u64,
        r.boot_energy_j.to_bits(),
        r.degradation.map_or(u64::MAX, |d| d as u64),
    ];
    v.extend(r.active_switch_ids.iter().map(|&id| id as u64));
    v.extend(r.failed_switches.iter().map(|&id| id as u64));
    v
}

#[test]
fn empty_schedule_is_bit_identical_to_simulate_day() {
    let cfg = ClusterConfig::default();
    let day = quick_day();
    let a = simulate_day(&cfg, &eprons(), &day);
    let b = simulate_day_with_failures(&cfg, &eprons(), &day, &FailureSchedule::none());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(record_bits(x), record_bits(y));
        assert!(x.failed_switches.is_empty());
        assert_eq!(x.boot_energy_j, 0.0);
        assert!(x.degradation.is_none());
    }
}

#[test]
fn scripted_failure_day_is_deterministic_across_thread_budgets() {
    let cfg = ClusterConfig::default();
    let day = quick_day();
    let schedule = midday_core_failure(&cfg);
    let a = simulate_day_with_failures(&cfg, &eprons(), &day, &schedule);
    set_thread_budget(Some(1));
    let b = simulate_day_with_failures(&cfg, &eprons(), &day, &schedule);
    set_thread_budget(None);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            record_bits(x),
            record_bits(y),
            "epoch at minute {} diverged across runs",
            x.minute
        );
    }
}

#[test]
fn degraded_epoch_stays_protected_and_costs_boot_energy() {
    let cfg = ClusterConfig::default();
    let day = quick_day();
    let schedule = midday_core_failure(&cfg);
    let baseline = simulate_day(&cfg, &eprons(), &day);
    let degraded = simulate_day_with_failures(&cfg, &eprons(), &day, &schedule);

    // Exactly one epoch carries the failure (fail + recover both land in
    // [720, 960)), and it must be handled by a ladder rung — never a
    // silent SLA violation: each record is feasible, or flags its
    // degradation, or the clean baseline missed that epoch too.
    let hit: Vec<&DayRecord> = degraded
        .iter()
        .filter(|r| !r.failed_switches.is_empty())
        .collect();
    assert_eq!(hit.len(), 1, "the failure spans exactly one epoch");
    let r = hit[0];
    assert!(720.0 <= r.minute && r.minute < 960.0);
    assert!(
        r.degradation.is_some(),
        "a mid-epoch failure must mark its ladder rung"
    );
    assert!(
        r.boot_energy_j > 0.0,
        "repair/recovery must charge §IV-B boot energy"
    );
    for (b, d) in baseline.iter().zip(&degraded) {
        assert!(
            d.feasible || d.degradation.is_some() || !b.feasible,
            "minute {}: silent SLA violation",
            d.minute
        );
    }

    // Dead-draw accounting: the crashed switch burns power without
    // forwarding, and woken backups boot at 36 W for 72.52 s, so the
    // failed day costs strictly more energy than the clean one.
    let base_j = day_total_energy_j(&baseline, &day);
    let deg_j = day_total_energy_j(&degraded, &day);
    assert!(
        deg_j > base_j,
        "failure day {deg_j:.0} J must exceed clean day {base_j:.0} J"
    );

    // Epochs the failure never touches are bit-identical to the clean
    // run — the schedule is pure data consulted per epoch.
    for (b, d) in baseline.iter().zip(&degraded) {
        if d.failed_switches.is_empty() {
            assert_eq!(record_bits(b), record_bits(d));
        }
    }
}
