//! Golden pin: `optimize_total_power` is bit-identical across substrate
//! refactors.
//!
//! The flat-CSR topology, arena segment store, and visitor-based
//! consolidators are all designed to be *invisible* to results. This test
//! pins the full joint-optimizer output (chosen spec, active switches,
//! exact `f64` bits of total power) at k=4 and k=8 so any accidental
//! behavioral drift in the substrate fails loudly rather than skewing
//! figures. Run with `--nocapture` to print current values when
//! regenerating.

use eprons_core::cluster::{ClusterRun, ConsolidationSpec, ServerScheme};
use eprons_core::config::ClusterConfig;
use eprons_core::optimizer::optimize_total_power;

fn probe(k: usize) -> (String, usize, u64) {
    let cfg = ClusterConfig {
        fat_tree_k: k,
        ..ClusterConfig::default()
    };
    let template = ClusterRun {
        scheme: ServerScheme::EpronsServer,
        consolidation: ConsolidationSpec::AllOn, // overwritten per candidate
        server_utilization: 0.3,
        background_util: 0.1,
        duration_s: 0.5,
        warmup_s: 0.0,
        seed: 7,
    };
    let candidates = [ConsolidationSpec::AllOn, ConsolidationSpec::GreedyK(2.0)];
    let choice = optimize_total_power(&cfg, &template, &candidates).expect("candidates exist");
    (
        choice.spec.label(),
        choice.result.active_switches,
        choice.result.breakdown.total_w().to_bits(),
    )
}

#[test]
fn k4_choice_is_bit_identical_to_golden() {
    let (label, switches, bits) = probe(4);
    println!("golden k=4: label={label} switches={switches} total_w_bits={bits:#018x}");
    assert_eq!(label, "k=2");
    assert_eq!(switches, 14);
    assert_eq!(bits, 0x4092796444756c62, "total power drifted at k=4");
}

#[test]
fn k8_choice_is_bit_identical_to_golden() {
    let (label, switches, bits) = probe(8);
    println!("golden k=8: label={label} switches={switches} total_w_bits={bits:#018x}");
    assert_eq!(label, "all-on");
    assert_eq!(switches, 80);
    assert_eq!(bits, 0x40c0714e80ccd63e, "total power drifted at k=8");
}
