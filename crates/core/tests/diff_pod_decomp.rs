//! Differential suite: the pod-decomposed consolidation path against
//! its monolithic oracle.
//!
//! The hierarchical decomposition is a *different packing* of the same
//! model, so it is held to two contracts rather than bit-equality:
//!
//! 1. **Identical feasibility verdicts** — whenever the decomposition
//!    cannot place everything it falls back to the monolithic greedy,
//!    so an instance is rejected by the decomposed path iff the
//!    monolithic path rejects it, with the same error.
//! 2. **Objective within 0.5 % relative** — total power (the joint
//!    optimizer's objective) of a decomposed plan never exceeds the
//!    monolithic plan's by more than 0.5 % on SLA-feasible candidates
//!    over randomized demand matrices at k=4 and k=8 (it is allowed to
//!    be *cheaper*: the floors pack inter-pod traffic less myopically
//!    than the flat greedy). Network-only power obeys the same bound at
//!    the net layer, modulo one switch of granularity.
//!
//! A seed-pinned golden pins the decomposed path's totals outright, so
//! any packing change shows up as an explicit diff here rather than as
//! silent drift in BENCH numbers.

use eprons_core::scenario::{ScenarioContext, ScenarioSpec};
use eprons_core::{ClusterConfig, ConsolidateStrategy, ConsolidationSpec, ServerScheme};
use eprons_net::consolidate::pod::{consolidate_pod_decomposed, PodDecompOptions};
use eprons_net::flow::FlowSet;
use eprons_net::{ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, PathArena};
use eprons_sim::SimRng;
use eprons_topo::FatTree;

/// A randomized demand matrix: a few heavy elephants plus a swarm of
/// latency-sensitive mice between random host pairs. `load` scales the
/// elephant demands toward (and past) link saturation.
fn random_flows(ft: &FatTree, seed: u64, load: f64) -> FlowSet {
    let mut rng = SimRng::seed_from_u64(seed);
    let hosts = ft.hosts();
    let mut fs = FlowSet::new();
    let elephants = hosts.len() / 2;
    let mice = hosts.len() * 2;
    for _ in 0..elephants {
        let a = rng.index(hosts.len());
        let mut b = rng.index(hosts.len());
        if b == a {
            b = (b + 1) % hosts.len();
        }
        let d = rng.uniform_range(100.0, 400.0) * load;
        fs.add(hosts[a], hosts[b], d, FlowClass::LatencyTolerant);
    }
    for _ in 0..mice {
        let a = rng.index(hosts.len());
        let mut b = rng.index(hosts.len());
        if b == a {
            b = (b + 1) % hosts.len();
        }
        let d = rng.uniform_range(5.0, 40.0);
        fs.add(hosts[a], hosts[b], d, FlowClass::LatencySensitive);
    }
    fs
}

/// Net-layer contract over randomized matrices: identical verdicts, and
/// network power within 0.5 % when both place the traffic.
#[test]
fn randomized_matrices_agree_at_k4_and_k8() {
    let mut feasible_checked = 0;
    let mut infeasible_checked = 0;
    for k in [4usize, 8] {
        let ft = FatTree::new(k, 1000.0);
        let arena = PathArena::build(&ft);
        for seed in 0..6u64 {
            // load > 1 overcommits host uplinks often enough to exercise
            // the identical-rejection arm as well.
            for load in [0.6, 1.0, 3.5] {
                let fs = random_flows(&ft, seed * 31 + k as u64, load);
                for scale_k in [1.0f64, 2.0] {
                    let cfg = ConsolidationConfig::with_k(scale_k);
                    let dec = consolidate_pod_decomposed(
                        &ft,
                        &arena,
                        &fs,
                        &cfg,
                        &PodDecompOptions::default(),
                    );
                    let mono = GreedyConsolidator.consolidate(&arena, &fs, &cfg);
                    match (dec, mono) {
                        (Ok(r), Ok(m)) => {
                            r.assignment.validate(&arena, &fs, &cfg).unwrap();
                            let dw = r.assignment.network_power_w(&ft, &cfg.power);
                            let mw = m.network_power_w(&ft, &cfg.power);
                            // One-sided: the decomposition may pack
                            // *better* than the order-myopic monolithic
                            // greedy (floors concentrate inter traffic),
                            // but must never cost more than 0.5 % — plus
                            // one switch of slack, since network-only
                            // power is switch-granular (the cluster-level
                            // test below holds the strict 0.5 % on the
                            // actual optimization objective, total power).
                            assert!(
                                dw - mw <= 0.005 * mw + 40.0,
                                "k={k} seed={seed} load={load} K={scale_k}: \
                                 decomposed {dw:.1} W vs monolithic {mw:.1} W"
                            );
                            feasible_checked += 1;
                        }
                        (Err(de), Err(me)) => {
                            assert_eq!(
                                de, me,
                                "k={k} seed={seed} load={load} K={scale_k}: verdicts \
                                 disagree in error detail"
                            );
                            infeasible_checked += 1;
                        }
                        (dec, mono) => panic!(
                            "k={k} seed={seed} load={load} K={scale_k}: feasibility \
                             diverged (decomposed ok={}, monolithic ok={})",
                            dec.is_ok(),
                            mono.is_ok()
                        ),
                    }
                }
            }
        }
    }
    // The sweep must actually exercise both arms.
    assert!(
        feasible_checked >= 20,
        "only {feasible_checked} feasible cases"
    );
    assert!(
        infeasible_checked >= 5,
        "only {infeasible_checked} infeasible cases"
    );
}

fn scenario_ctx(k: usize, strategy: ConsolidateStrategy, seed: u64) -> ScenarioContext {
    let mut cfg = ClusterConfig {
        fat_tree_k: k,
        consolidate_strategy: strategy,
        ..ClusterConfig::default()
    };
    // Every host talks to every other host; keep the aggregate query
    // traffic per uplink bounded as the mesh grows (the failure_day
    // convention), or nothing beyond k=4 is consolidatable.
    let n = cfg.num_servers() as f64;
    cfg.query_flow_mbps = cfg.query_flow_mbps.min(300.0 / (n - 1.0));
    let spec = ScenarioSpec {
        server_utilization: 0.3,
        background_util: 0.1,
        duration_s: 0.5,
        warmup_s: 0.0,
        seed,
    };
    ScenarioContext::build(&cfg, &spec)
}

/// Full-pipeline contract: total power (the optimizer's objective) and
/// the SLA feasibility verdict of every `GreedyK` candidate agree
/// between strategies within 0.5 %.
#[test]
fn cluster_objective_within_half_percent() {
    let mut compared = 0;
    for (k, seed) in [(4usize, 11u64), (8, 12)] {
        let mono = scenario_ctx(k, ConsolidateStrategy::Monolithic, seed);
        let pod = scenario_ctx(k, ConsolidateStrategy::PodDecomposed, seed);
        for scale_k in [1.0f64, 1.25, 1.5] {
            let spec = ConsolidationSpec::GreedyK(scale_k);
            let rm = mono.evaluate(ServerScheme::EpronsServer, spec);
            let rp = pod.evaluate(ServerScheme::EpronsServer, spec);
            match (rm, rp) {
                (Ok(rm), Ok(rp)) => {
                    assert_eq!(
                        rp.is_feasible(pod.cfg()),
                        rm.is_feasible(mono.cfg()),
                        "k={k} K={scale_k}: SLA verdicts diverged"
                    );
                    // The optimizer's objective only ever reads total
                    // power off SLA-feasible candidates; infeasible ones
                    // are discarded by both strategies alike, so their
                    // power is free to differ.
                    if rm.is_feasible(mono.cfg()) {
                        let (tm, tp) = (rm.breakdown.total_w(), rp.breakdown.total_w());
                        // One-sided: the decomposition may find a cheaper
                        // plan than the order-myopic greedy, but must not
                        // cost more than 0.5 % of the objective.
                        assert!(
                            tp - tm <= 0.005 * tm,
                            "k={k} K={scale_k}: decomposed total {tp:.2} W vs monolithic {tm:.2} W"
                        );
                        compared += 1;
                    }
                }
                // A `K` too aggressive for the fabric must be rejected by
                // both strategies with the same consolidation error.
                (Err(em), Err(ep)) => assert_eq!(em, ep, "k={k} K={scale_k}"),
                (rm, rp) => panic!(
                    "k={k} K={scale_k}: feasibility diverged (monolithic ok={}, \
                     decomposed ok={})",
                    rm.is_ok(),
                    rp.is_ok()
                ),
            }
        }
    }
    assert!(compared >= 4, "only {compared} feasible comparisons");
}

/// Seed-pinned goldens for the decomposed path itself. These values
/// were produced by this test's own configuration (k=4, seed 4242,
/// `GreedyK(2)`); a change here means the decomposition's packing
/// changed and every committed BENCH number needs re-deriving.
#[test]
fn decomposed_goldens_are_pinned() {
    let ctx = scenario_ctx(4, ConsolidateStrategy::PodDecomposed, 4242);
    let r = ctx
        .evaluate(ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0))
        .expect("decomposed evaluation");
    let golden_total_w = f64::from_bits(GOLDEN_TOTAL_W_BITS);
    let golden_p95_s = f64::from_bits(GOLDEN_E2E_P95_S_BITS);
    assert_eq!(
        r.breakdown.total_w().to_bits(),
        GOLDEN_TOTAL_W_BITS,
        "total power drifted: {} W vs golden {golden_total_w} W",
        r.breakdown.total_w()
    );
    assert_eq!(
        r.e2e_latency.p95_s.to_bits(),
        GOLDEN_E2E_P95_S_BITS,
        "e2e p95 drifted: {} s vs golden {golden_p95_s} s",
        r.e2e_latency.p95_s
    );
    assert_eq!(r.active_switches, GOLDEN_ACTIVE_SWITCHES);
}

// `cargo test -p eprons-core --test diff_pod_decomp -- --nocapture print_goldens --ignored`
// regenerates these.
const GOLDEN_TOTAL_W_BITS: u64 = 0x4091e541e02b5a18; // 1145.3143317006816 W
const GOLDEN_E2E_P95_S_BITS: u64 = 0x3f9a1d23bbe0e75b; // 0.02550178369731469 s
const GOLDEN_ACTIVE_SWITCHES: usize = 14;

#[test]
#[ignore = "golden regeneration helper, not a check"]
fn print_goldens() {
    let ctx = scenario_ctx(4, ConsolidateStrategy::PodDecomposed, 4242);
    let r = ctx
        .evaluate(ServerScheme::EpronsServer, ConsolidationSpec::GreedyK(2.0))
        .expect("decomposed evaluation");
    println!(
        "GOLDEN_TOTAL_W_BITS: u64 = 0x{:016x}; // {} W",
        r.breakdown.total_w().to_bits(),
        r.breakdown.total_w()
    );
    println!(
        "GOLDEN_E2E_P95_S_BITS: u64 = 0x{:016x}; // {} s",
        r.e2e_latency.p95_s.to_bits(),
        r.e2e_latency.p95_s
    );
    println!("GOLDEN_ACTIVE_SWITCHES: usize = {};", r.active_switches);
}
