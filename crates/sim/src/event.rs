//! A time-ordered event queue with deterministic FIFO tie-breaking.
//!
//! `BinaryHeap` alone is not stable for equal keys, which would make
//! simulations with simultaneous events (e.g. an aggregator broadcasting 15
//! sub-queries at the same instant) non-deterministic across runs. Every
//! pushed event therefore also carries a monotonically increasing sequence
//! number used as a tie-breaker.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: min-heap by `(time, seq)`.
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: events are popped in non-decreasing time order;
/// events at identical times pop in insertion order.
///
/// ```
/// use eprons_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.now(), 1.0);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time `0.0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or earlier than the current clock (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past (now={}, t={})",
            self.now,
            time
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` seconds from the current clock.
    ///
    /// # Panics
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Discards all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(2.5, ());
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        assert_eq!(q.pop(), Some((1.5, "second")));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((4.0, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_leaves_clock() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.pop();
        q.schedule(9.0, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 1.0);
    }
}
