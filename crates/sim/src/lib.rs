//! Discrete-event simulation kernel for the EPRONS reproduction.
//!
//! The paper evaluates EPRONS on MiniNet with a *search-engine simulator*
//! inside each virtual host (§V-A). This crate is the equivalent substrate:
//! a small, deterministic discrete-event engine that the network and server
//! simulators build on.
//!
//! * [`event`] — a time-ordered event queue with stable FIFO tie-breaking.
//! * [`rng`] — seeded random-variate generation (exponential, log-normal,
//!   …) so every experiment is reproducible from a single `u64` seed.
//! * [`recorder`] — measurement plumbing: time-weighted integrators (power
//!   → energy), tail-latency sample recorders, and windowed monitors used
//!   by the TimeTrader feedback baseline.

#![warn(missing_docs)]

pub mod event;
pub mod recorder;
pub mod rng;

pub use event::EventQueue;
pub use recorder::{ClockSkewError, EnergyMeter, TailRecorder, TimeWeighted};
pub use rng::SimRng;
