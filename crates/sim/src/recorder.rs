//! Measurement plumbing for the simulators.
//!
//! * [`TimeWeighted`] — integrates a piecewise-constant signal over
//!   simulated time (utilization, queue length, instantaneous power).
//! * [`EnergyMeter`] — a `TimeWeighted` specialized to power→energy with a
//!   convenience for average watts.
//! * [`TailRecorder`] — collects latency samples and answers percentile
//!   queries, including over a trailing window (the TimeTrader baseline
//!   re-reads the 95th percentile of the last control period every 5 s).

use eprons_num::quantile::percentile;

/// A signal update arrived with a timestamp earlier than the previous one.
///
/// Returned by [`TimeWeighted::try_set`]; carries both instants so the
/// caller can log or journal the skew before deciding how to proceed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSkewError {
    /// The out-of-order timestamp that was offered, seconds.
    pub at_s: f64,
    /// The integrator's latest accepted timestamp, seconds.
    pub last_s: f64,
}

impl std::fmt::Display for ClockSkewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time must not go backwards: update at {} s precedes last update at {} s",
            self.at_s, self.last_s
        )
    }
}

impl std::error::Error for ClockSkewError {}

/// Integrates a piecewise-constant signal over time.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Starts integrating `initial` at time `t0`.
    pub fn new(t0: f64, initial: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            value: initial,
            integral: 0.0,
        }
    }

    /// Records that the signal changed to `value` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the last update. Use
    /// [`TimeWeighted::try_set`] for the non-panicking variant.
    pub fn set(&mut self, t: f64, value: f64) {
        assert!(t >= self.last_t, "time must not go backwards");
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = value;
    }

    /// Non-panicking [`TimeWeighted::set`]: on a backwards timestamp the
    /// integrator is left untouched and a [`ClockSkewError`] describing
    /// the skew is returned, so callers can report the anomaly instead of
    /// aborting a long simulation.
    pub fn try_set(&mut self, t: f64, value: f64) -> Result<(), ClockSkewError> {
        if t < self.last_t {
            return Err(ClockSkewError {
                at_s: t,
                last_s: self.last_t,
            });
        }
        self.integral += self.value * (t - self.last_t);
        self.last_t = t;
        self.value = value;
        Ok(())
    }

    /// The current signal value.
    #[inline]
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Integral of the signal from start through time `t` (the signal is
    /// assumed to hold its current value up to `t`).
    pub fn integral_until(&self, t: f64) -> f64 {
        assert!(t >= self.last_t, "time must not go backwards");
        self.integral + self.value * (t - self.last_t)
    }

    /// Time-weighted average over `[start, t]`.
    pub fn average_until(&self, t: f64) -> f64 {
        let span = t - self.start;
        if span <= 0.0 {
            self.value
        } else {
            self.integral_until(t) / span
        }
    }
}

/// Integrates instantaneous power (watts) into energy (joules).
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    inner: TimeWeighted,
}

impl EnergyMeter {
    /// Starts metering `initial_watts` at time `t0` (seconds).
    pub fn new(t0: f64, initial_watts: f64) -> Self {
        EnergyMeter {
            inner: TimeWeighted::new(t0, initial_watts),
        }
    }

    /// Records a power change.
    ///
    /// A backwards timestamp does **not** abort the run: the skew is
    /// journaled as a [`eprons_obs::Event::ClockSkew`] event (when
    /// telemetry is enabled), counted under `sim.meter.clock_skews`, and
    /// the new wattage is applied at the meter's current time instead, so
    /// energy accounting never runs backwards.
    pub fn set_power(&mut self, t: f64, watts: f64) {
        if let Err(skew) = self.inner.try_set(t, watts) {
            if eprons_obs::enabled() {
                eprons_obs::registry()
                    .counter("sim.meter.clock_skews")
                    .inc();
                eprons_obs::record(eprons_obs::Event::ClockSkew {
                    at_s: skew.at_s,
                    last_s: skew.last_s,
                });
            }
            // Hold time still and take the new level from "now" onwards.
            let now = self.inner.last_t;
            self.inner
                .try_set(now, watts)
                .expect("setting at the current instant cannot skew");
        }
    }

    /// Current power draw in watts.
    #[inline]
    pub fn power(&self) -> f64 {
        self.inner.current()
    }

    /// Energy in joules consumed through time `t`.
    pub fn energy_until(&self, t: f64) -> f64 {
        self.inner.integral_until(t)
    }

    /// Average power in watts over the metered interval ending at `t`.
    pub fn average_power_until(&self, t: f64) -> f64 {
        self.inner.average_until(t)
    }
}

/// A timestamped latency sample recorder with percentile queries.
#[derive(Debug, Clone, Default)]
pub struct TailRecorder {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TailRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` observed at time `t`. Times must be non-decreasing.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the previous record.
    pub fn record(&mut self, t: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "records must arrive in time order");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no samples were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All recorded values, in arrival order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Percentile over all samples; `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(percentile(&self.values, p))
        }
    }

    /// Mean over all samples; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Percentile restricted to samples with `t in [t_lo, t_hi]`; `None` if
    /// the window is empty. Used by windowed feedback controllers.
    pub fn percentile_window(&self, t_lo: f64, t_hi: f64, p: f64) -> Option<f64> {
        let lo = self.times.partition_point(|&t| t < t_lo);
        let hi = self.times.partition_point(|&t| t <= t_hi);
        if lo >= hi {
            None
        } else {
            Some(percentile(&self.values[lo..hi], p))
        }
    }

    /// Fraction of samples exceeding `threshold`; `None` if empty. This is
    /// the measured SLA miss rate the EPRONS-Server validation checks
    /// against the 5 % target.
    pub fn miss_rate(&self, threshold: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let misses = self.values.iter().filter(|&&v| v > threshold).count();
        Some(misses as f64 / self.values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_constant_signal() {
        let tw = TimeWeighted::new(0.0, 5.0);
        assert_eq!(tw.integral_until(10.0), 50.0);
        assert_eq!(tw.average_until(10.0), 5.0);
    }

    #[test]
    fn time_weighted_step_changes() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.set(2.0, 3.0); // 1.0 for 2s = 2
        tw.set(4.0, 0.0); // 3.0 for 2s = 6
        assert_eq!(tw.integral_until(10.0), 8.0); // 0.0 for 6s = 0
        assert!((tw.average_until(10.0) - 0.8).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(5.0, 1.0);
        tw.set(4.0, 2.0);
    }

    #[test]
    fn try_set_reports_skew_without_mutating() {
        let mut tw = TimeWeighted::new(5.0, 1.0);
        let err = tw.try_set(4.0, 2.0).unwrap_err();
        assert_eq!(
            err,
            ClockSkewError {
                at_s: 4.0,
                last_s: 5.0
            }
        );
        // Integrator untouched: still 1.0 from t=5.
        assert_eq!(tw.current(), 1.0);
        assert_eq!(tw.integral_until(6.0), 1.0);
        // And the error formats usefully.
        assert!(err.to_string().contains("backwards"));
        // A forward update still works afterwards.
        tw.try_set(7.0, 0.0).unwrap();
        assert_eq!(tw.integral_until(7.0), 2.0);
    }

    #[test]
    fn energy_meter_survives_clock_skew() {
        let mut m = EnergyMeter::new(0.0, 100.0);
        m.set_power(10.0, 50.0);
        // Out-of-order update: applied at t=10 (held time), not t=5.
        m.set_power(5.0, 80.0);
        assert_eq!(m.power(), 80.0);
        // 100 W for 10 s, then 80 W for 10 s (the 50 W level was replaced
        // at the same instant it was set).
        assert_eq!(m.energy_until(20.0), 1800.0);
    }

    #[test]
    fn energy_meter_joules_and_watts() {
        let mut m = EnergyMeter::new(0.0, 100.0);
        m.set_power(60.0, 50.0);
        // 100 W for 60 s + 50 W for 60 s = 9000 J
        assert_eq!(m.energy_until(120.0), 9000.0);
        assert_eq!(m.average_power_until(120.0), 75.0);
        assert_eq!(m.power(), 50.0);
    }

    #[test]
    fn tail_recorder_percentiles() {
        let mut r = TailRecorder::new();
        for i in 1..=100 {
            r.record(i as f64, i as f64);
        }
        assert_eq!(r.len(), 100);
        assert!((r.percentile(0.95).unwrap() - 95.05).abs() < 0.1);
        assert_eq!(r.mean(), Some(50.5));
    }

    #[test]
    fn tail_recorder_window() {
        let mut r = TailRecorder::new();
        for i in 0..10 {
            r.record(i as f64, (i * 10) as f64);
        }
        // window [3, 6] contains values 30,40,50,60
        let med = r.percentile_window(3.0, 6.0, 0.5).unwrap();
        assert!((med - 45.0).abs() < 1e-9);
        assert!(r.percentile_window(100.0, 200.0, 0.5).is_none());
    }

    #[test]
    fn tail_recorder_miss_rate() {
        let mut r = TailRecorder::new();
        for i in 0..20 {
            r.record(i as f64, i as f64);
        }
        // values 0..19; threshold 14.5 → 5 misses (15..19) of 20
        assert_eq!(r.miss_rate(14.5), Some(0.25));
        assert_eq!(TailRecorder::new().miss_rate(1.0), None);
    }

    #[test]
    fn empty_recorder_yields_none() {
        let r = TailRecorder::new();
        assert!(r.percentile(0.5).is_none());
        assert!(r.mean().is_none());
        assert!(r.is_empty());
    }
}
