//! Seeded random-variate generation.
//!
//! Every stochastic component of the reproduction (arrivals, service times,
//! per-hop queueing draws) pulls from a [`SimRng`] seeded from a single
//! `u64`, so every figure regenerates bit-identically. Both the generator
//! (xoshiro256++ seeded through SplitMix64) and the variate
//! transformations (exponential, log-normal, …) are implemented in-repo so
//! the whole workspace builds without any external crates — the build
//! environment has no registry access, and the dependency policy
//! (DESIGN.md) keeps everything from-scratch anyway.

/// SplitMix64 step: used to expand a 64-bit seed into generator state and
/// nothing else (its weak low bits never reach consumers directly).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic simulation RNG with the variate transformations the
/// workloads need. The core generator is xoshiro256++ (Blackman & Vigna),
/// a 256-bit-state, 2^256−1-period generator that passes BigCrush; the
/// seed is stretched into the four state words with SplitMix64, per the
/// reference seeding recipe.
///
/// ```
/// use eprons_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.uniform(), b.uniform()); // same seed, same stream
/// assert!(a.exponential(10.0) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro's one forbidden state is all-zeros; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        SimRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler + state step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child RNG; used to give each server / link
    /// its own stream so adding a component never perturbs the draws of
    /// the others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s: u64 = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of mantissa entropy.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift reduction; the
    /// ≤ 2⁻⁵³-scale modulo bias is far below anything a simulation with
    /// fewer than 2⁵⁰ draws can observe).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Exponential variate with the given `rate` (mean `1/rate`): the
    /// inter-arrival time of a Poisson process.
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -u.ln() / rate
    }

    /// Standard normal variate (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma < 0`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        mu + sigma * self.standard_normal()
    }

    /// Log-normal variate: `exp(N(mu, sigma))`. The synthetic Xapian-like
    /// service-time distribution is log-normal (DESIGN.md substitution
    /// table).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.uniform() < p
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha`; used for
    /// heavy-tailed background-flow sizes.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo, "invalid Pareto params");
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(99);
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        for _ in 0..50 {
            assert_eq!(c1.uniform(), c2.uniform());
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from_u64(43);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance was {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SimRng::seed_from_u64(44);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal(1.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        // median of lognormal(mu, sigma) = e^mu
        assert!(
            (median - 1.0f64.exp()).abs() / 1.0f64.exp() < 0.03,
            "median was {median}"
        );
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::seed_from_u64(45);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq was {freq}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(46);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.2, 1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(47);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::seed_from_u64(48);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all indices should be hit");
    }
}
