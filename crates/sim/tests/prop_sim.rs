//! Property-based tests for the discrete-event kernel (deterministic
//! seeded cases via `eprons-proplite`).

use eprons_proplite::cases;
use eprons_sim::{EventQueue, SimRng, TailRecorder, TimeWeighted};

#[test]
fn events_pop_in_time_order() {
    cases(256, |g, case| {
        let n = g.usize_in(1, 199);
        let times = g.vec_f64(n, 0.0, 1.0e6);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev, "case {case}");
            prev = t;
            count += 1;
        }
        assert_eq!(count, times.len(), "case {case}");
    });
}

#[test]
fn simultaneous_events_keep_insertion_order() {
    cases(256, |g, case| {
        let n = g.usize_in(1, 99);
        let t = g.f64_in(0.0, 100.0);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(t, i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some((t, i)), "case {case}");
        }
    });
}

#[test]
fn time_weighted_integral_is_additive() {
    cases(256, |g, case| {
        let n = g.usize_in(1, 39);
        let changes: Vec<(f64, f64)> = (0..n)
            .map(|_| (g.f64_in(0.0, 10.0), g.f64_in(-5.0, 5.0)))
            .collect();
        // Apply the same change sequence to one integrator and to two
        // half-range queries; the integral must split additively.
        let mut tw = TimeWeighted::new(0.0, 1.0);
        let mut t = 0.0;
        let mut schedule = Vec::new();
        for (dt, v) in changes {
            t += dt;
            schedule.push((t, v));
        }
        for &(at, v) in &schedule {
            tw.set(at, v);
        }
        let end = t + 1.0;
        let mid = end / 2.0;
        // Rebuild to query at mid.
        let mut tw2 = TimeWeighted::new(0.0, 1.0);
        let mut part1 = None;
        for &(at, v) in &schedule {
            if at > mid && part1.is_none() {
                part1 = Some(tw2.integral_until(mid));
            }
            tw2.set(at, v);
        }
        let part1 = part1.unwrap_or_else(|| tw2.integral_until(mid));
        let whole = tw.integral_until(end);
        let second = whole - part1;
        // Integral over [mid, end] computed independently must agree.
        assert!((part1 + second - whole).abs() < 1e-9, "case {case}");
        // And average lies within the value hull.
        let values: Vec<f64> = std::iter::once(1.0)
            .chain(schedule.iter().map(|&(_, v)| v))
            .collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = tw.average_until(end);
        assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "case {case}");
    });
}

#[test]
fn rng_is_deterministic_per_seed() {
    cases(256, |g, case| {
        let seed = g.u64();
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits(), "case {case}");
        }
    });
}

#[test]
fn exponential_is_positive() {
    cases(256, |g, case| {
        let seed = g.u64();
        let rate = g.f64_in(0.01, 100.0);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..64 {
            assert!(rng.exponential(rate) > 0.0, "case {case}");
        }
    });
}

#[test]
fn tail_recorder_miss_rate_matches_manual_count() {
    cases(256, |g, case| {
        let n = g.usize_in(1, 99);
        let vals = g.vec_f64(n, 0.0, 10.0);
        let threshold = g.f64_in(0.0, 10.0);
        let mut r = TailRecorder::new();
        for (i, &v) in vals.iter().enumerate() {
            r.record(i as f64, v);
        }
        let manual = vals.iter().filter(|&&v| v > threshold).count() as f64 / vals.len() as f64;
        assert_eq!(r.miss_rate(threshold), Some(manual), "case {case}");
        // Percentile endpoints.
        let p0 = r.percentile(0.0).unwrap();
        let p100 = r.percentile(1.0).unwrap();
        assert!(vals.iter().all(|&v| v >= p0 && v <= p100), "case {case}");
    });
}
