//! Property-based tests for the discrete-event kernel.

use eprons_sim::{EventQueue, SimRng, TailRecorder, TimeWeighted};
use proptest::prelude::*;

proptest! {
    #[test]
    fn events_pop_in_time_order(times in prop::collection::vec(0.0..1.0e6f64, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn simultaneous_events_keep_insertion_order(
        n in 1usize..100, t in 0.0..100.0f64
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn time_weighted_integral_is_additive(
        changes in prop::collection::vec((0.0..10.0f64, -5.0..5.0f64), 1..40)
    ) {
        // Apply the same change sequence to one integrator and to two
        // half-range queries; the integral must split additively.
        let mut tw = TimeWeighted::new(0.0, 1.0);
        let mut t = 0.0;
        let mut schedule = Vec::new();
        for (dt, v) in changes {
            t += dt;
            schedule.push((t, v));
        }
        for &(at, v) in &schedule {
            tw.set(at, v);
        }
        let end = t + 1.0;
        let mid = end / 2.0;
        // Rebuild to query at mid.
        let mut tw2 = TimeWeighted::new(0.0, 1.0);
        let mut part1 = None;
        for &(at, v) in &schedule {
            if at > mid && part1.is_none() {
                part1 = Some(tw2.integral_until(mid));
            }
            tw2.set(at, v);
        }
        let part1 = part1.unwrap_or_else(|| tw2.integral_until(mid));
        let whole = tw.integral_until(end);
        let second = whole - part1;
        // Integral over [mid, end] computed independently must agree.
        prop_assert!((part1 + second - whole).abs() < 1e-9);
        // And average lies within the value hull.
        let values: Vec<f64> = std::iter::once(1.0)
            .chain(schedule.iter().map(|&(_, v)| v))
            .collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = tw.average_until(end);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
    }

    #[test]
    fn rng_is_deterministic_per_seed(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn exponential_is_positive(seed in any::<u64>(), rate in 0.01..100.0f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.exponential(rate) > 0.0);
        }
    }

    #[test]
    fn tail_recorder_miss_rate_matches_manual_count(
        vals in prop::collection::vec(0.0..10.0f64, 1..100),
        threshold in 0.0..10.0f64
    ) {
        let mut r = TailRecorder::new();
        for (i, &v) in vals.iter().enumerate() {
            r.record(i as f64, v);
        }
        let manual = vals.iter().filter(|&&v| v > threshold).count() as f64
            / vals.len() as f64;
        prop_assert_eq!(r.miss_rate(threshold), Some(manual));
        // Percentile endpoints.
        let p0 = r.percentile(0.0).unwrap();
        let p100 = r.percentile(1.0).unwrap();
        prop_assert!(vals.iter().all(|&v| v >= p0 && v <= p100));
    }
}
