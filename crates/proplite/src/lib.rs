//! A minimal, fully deterministic property-test harness.
//!
//! The workspace builds with zero external crates (DESIGN.md dependency
//! policy; the build environment has no registry access), so the property
//! suites that used to ride on `proptest` run on this instead: a seeded
//! case loop over a small random-value generator. Shrinking is traded away
//! for exact reproducibility — every failure message carries the case
//! index, and re-running the same test binary replays the identical
//! sequence, so a failing case is already a fixed regression input.
//!
//! ```
//! eprons_proplite::cases(64, |g, _case| {
//!     let x = g.f64_in(-10.0, 10.0);
//!     assert!((x.abs()).sqrt().powi(2) <= x.abs() + 1e-9);
//! });
//! ```

/// SplitMix64: tiny, seedable, passes SmallCrush — more than enough to
/// drive test-case generation (statistical quality requirements here are
/// "varied coverage", not "simulation-grade randomness").
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "f64_in requires lo <= hi");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive bounds, like proptest's
    /// `lo..=hi` ranges the suites previously used).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "usize_in requires lo <= hi");
        let span = (hi - lo) as u128 + 1;
        lo + ((self.u64() as u128 * span) >> 64) as usize
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose requires a non-empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }
}

/// Runs `n` deterministic cases. Each case gets a fresh [`Gen`] seeded
/// from the case index, plus the index itself for failure messages. The
/// same `(n, closure)` always replays the same inputs.
pub fn cases(n: u64, mut f: impl FnMut(&mut Gen, u64)) {
    for case in 0..n {
        // Distinct, well-mixed seed per case; the constant keeps case 0
        // from being the trivial all-zeros stream.
        let mut g = Gen::from_seed(case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xEB70_15D1);
        f(&mut g, case);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Gen::from_seed(9);
        let mut b = Gen::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Gen::from_seed(1);
        for _ in 0..10_000 {
            let x = g.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_in_hits_inclusive_bounds() {
        let mut g = Gen::from_seed(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[g.usize_in(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Degenerate range is allowed.
        assert_eq!(g.usize_in(3, 3), 3);
    }

    #[test]
    fn cases_replays_identically() {
        let mut first = Vec::new();
        cases(8, |g, _| first.push(g.u64()));
        let mut second = Vec::new();
        cases(8, |g, _| second.push(g.u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn choose_covers_all_items() {
        let mut g = Gen::from_seed(3);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*g.choose(&items) / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
