//! Property suite for the journal wire format (deterministic seeded
//! cases via `eprons-proplite`): every [`Event`] variant, filled with
//! adversarial payloads — arbitrary finite `f64` bit patterns, u64s up
//! to the 2^53 integer-exactness limit the JSON number model guarantees,
//! strings with quotes/backslashes/control bytes/multi-byte UTF-8 —
//! must survive `to_json_line` → `from_json_line` bit for bit.
//!
//! `obsctl diff`'s exact mode and `obsctl audit`'s energy reconciliation
//! both assume this losslessness; a float that moved by one ulp through
//! the journal would show up as a phantom conservation violation.

use eprons_obs::{parse_jsonl, Event, Journal, JournalEntry, Snapshot};
use eprons_proplite::{cases, Gen};

/// Any finite `f64`, drawn from raw bit patterns so subnormals, huge
/// exponents, and negative zero all appear.
fn arb_f64(g: &mut Gen) -> f64 {
    loop {
        let v = f64::from_bits(g.u64());
        if v.is_finite() {
            return v;
        }
    }
}

/// Journal integers are carried as JSON numbers, exact up to 2^53.
fn arb_u64(g: &mut Gen) -> u64 {
    g.u64() & ((1 << 53) - 1)
}

/// A string over a palette that exercises every escape path of the
/// writer: quotes, backslashes, control characters, and multi-byte
/// UTF-8.
fn arb_string(g: &mut Gen) -> String {
    const PALETTE: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\r', '\u{0}', '\u{1f}', '/', 'é', '愛', '🦀',
    ];
    let len = g.usize_in(0, 12);
    (0..len).map(|_| *g.choose(PALETTE)).collect()
}

/// One instance of every `Event` variant with randomized payloads.
/// Extend this alongside the enum — the round trip must stay total.
fn all_variants(g: &mut Gen) -> Vec<Event> {
    vec![
        Event::DayStart {
            strategy: arb_string(g),
            epochs: arb_u64(g),
        },
        Event::EpochStart {
            epoch: arb_u64(g),
            minute: arb_f64(g),
            search_load: arb_f64(g),
            background_util: arb_f64(g),
        },
        Event::EpochSnapshot(Snapshot {
            epoch: arb_u64(g),
            minute: arb_f64(g),
            strategy: arb_string(g),
            choice: arb_string(g),
            server_w: arb_f64(g),
            network_w: arb_f64(g),
            active_switches: arb_u64(g),
            e2e_p95_us: arb_f64(g),
            feasible: g.bool(),
            boot_energy_j: arb_f64(g),
        }),
        Event::OptimizerCandidate {
            k: arb_string(g),
            total_w: arb_f64(g),
            p95_us: arb_f64(g),
            feasible: g.bool(),
        },
        Event::CandidateFailed {
            k: arb_string(g),
            error: arb_string(g),
        },
        Event::CandidatePruned {
            k: arb_string(g),
            bound_w: arb_f64(g),
            incumbent_w: arb_f64(g),
        },
        Event::WarmStartApplied {
            epoch: arb_u64(g),
            hint: arb_string(g),
        },
        Event::OptimizerChoice {
            k: arb_string(g),
            total_w: arb_f64(g),
            p95_us: arb_f64(g),
            feasible: g.bool(),
            evaluated: arb_u64(g),
        },
        Event::LpSolve {
            rows: arb_u64(g),
            cols: arb_u64(g),
            iters: arb_u64(g),
            binding_constraints: (0..g.usize_in(0, 4)).map(|_| arb_string(g)).collect(),
        },
        Event::FreqTransition {
            policy: arb_string(g),
            transitions: arb_u64(g),
            decisions: arb_u64(g),
            final_ghz: arb_f64(g),
        },
        Event::LinkStateChange {
            links_on: arb_u64(g),
            links_off: arb_u64(g),
            switches_on: arb_u64(g),
            switches_off: arb_u64(g),
        },
        Event::ConsolidationPass {
            algo: arb_string(g),
            flows: arb_u64(g),
            placed: arb_u64(g),
            active_switches: arb_u64(g),
        },
        Event::PodConsolidation {
            pods: arb_u64(g),
            solved: arb_u64(g),
            cached: arb_u64(g),
            resolves: arb_u64(g),
            rounds: arb_u64(g),
            balanced: arb_u64(g),
            fallback: g.bool(),
        },
        Event::ClockSkew {
            at_s: arb_f64(g),
            last_s: arb_f64(g),
        },
        Event::RunTag {
            scheme: arb_string(g),
            consolidation: arb_string(g),
            seed: arb_u64(g),
        },
        Event::ScenarioBuilt {
            seed: arb_u64(g),
            queries: arb_u64(g),
            flows: arb_u64(g),
            servers: arb_u64(g),
        },
        Event::FailureInjected {
            switch: arb_u64(g),
            minute: arb_f64(g),
            kind: arb_string(g),
        },
        Event::RepairOutcome {
            switch: arb_u64(g),
            minute: arb_f64(g),
            outcome: arb_string(g),
            rerouted: arb_u64(g),
            woken: arb_u64(g),
            boot_energy_j: arb_f64(g),
        },
        Event::DegradedEpoch {
            epoch: arb_u64(g),
            reason: arb_string(g),
            fallback: arb_string(g),
        },
        Event::SpanStart {
            id: arb_u64(g),
            parent: arb_u64(g),
            thread: arb_u64(g),
            name: arb_string(g),
            start_s: arb_f64(g),
        },
        Event::SpanEnd {
            id: arb_u64(g),
            name: arb_string(g),
            elapsed_s: arb_f64(g),
            detail: arb_string(g),
        },
        Event::PowerSegment {
            epoch: arb_u64(g),
            from_min: arb_f64(g),
            to_min: arb_f64(g),
            server_w: arb_f64(g),
            network_w: arb_f64(g),
        },
        Event::DayEnergy {
            strategy: arb_string(g),
            epochs: arb_u64(g),
            energy_j: arb_f64(g),
            boot_energy_j: arb_f64(g),
        },
        Event::HysteresisHold {
            epoch: arb_u64(g),
            desired: arb_string(g),
            held: arb_string(g),
            saving_w: arb_f64(g),
            transition_j: arb_f64(g),
            reason: arb_string(g),
        },
        Event::DeferralEnqueued {
            epoch: arb_u64(g),
            mbps_min: arb_f64(g),
            queue_mbps_min: arb_f64(g),
            slack_epochs: arb_u64(g),
        },
        Event::DeferralDrained {
            epoch: arb_u64(g),
            drained_mbps_min: arb_f64(g),
            dropped_mbps_min: arb_f64(g),
            queue_mbps_min: arb_f64(g),
        },
    ]
}

#[test]
fn every_variant_round_trips_line_by_line() {
    cases(48, |g, case| {
        for (i, event) in all_variants(g).into_iter().enumerate() {
            let entry = JournalEntry {
                seq: arb_u64(g),
                event,
            };
            let line = entry.to_json_line();
            let back = JournalEntry::from_json_line(&line)
                .unwrap_or_else(|e| panic!("case {case}, variant {i}: {e}\nline: {line}"));
            assert_eq!(
                back, entry,
                "case {case}, variant {i} mutated through JSON:\n{line}"
            );
        }
    });
}

#[test]
fn whole_journals_round_trip_through_jsonl() {
    cases(16, |g, case| {
        let j = Journal::with_capacity(4096);
        // A few shuffled copies of the full variant set, so multi-line
        // parsing, blank-line skipping, and seq assignment are covered.
        for _ in 0..g.usize_in(1, 3) {
            for e in all_variants(g) {
                j.record(e);
            }
        }
        let mut text = j.to_jsonl();
        text.push('\n'); // trailing blank line must be tolerated
        let parsed = parse_jsonl(&text).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(parsed, j.snapshot(), "case {case}");
        assert!(
            parsed.windows(2).all(|w| w[0].seq < w[1].seq),
            "case {case}: seq not monotone"
        );
    });
}

#[test]
fn kind_tags_are_distinct_and_stable() {
    let mut g = Gen::from_seed(7);
    let kinds: Vec<&'static str> = all_variants(&mut g).iter().map(Event::kind).collect();
    let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
    assert_eq!(unique.len(), kinds.len(), "duplicate kind tag");
    // The wire names CI greps for; renaming one is a breaking change to
    // every stored journal.
    for expected in [
        "DayStart",
        "EpochSnapshot",
        "SpanStart",
        "SpanEnd",
        "PowerSegment",
        "DayEnergy",
        "RepairOutcome",
        "HysteresisHold",
        "DeferralEnqueued",
        "DeferralDrained",
    ] {
        assert!(kinds.contains(&expected), "missing kind {expected}");
    }
}
