//! Counter / gauge / histogram registry.
//!
//! Handles are `Arc`-backed: fetch them once per run (a registry lookup
//! takes a read lock) and update them lock-free from hot paths. Metric
//! names follow `crate.subsystem.name` (see README "Observability").

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

/// Monotonic event count. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` value, stored as bits in an atomic.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default bucket upper edges for duration histograms, in seconds: a
/// 1–2–5 ladder from 1 µs to 10 s (covers an LP pivot through a whole
/// figure regeneration).
pub const DURATION_EDGES_S: &[f64] = &[
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
    2e-1, 5e-1, 1.0, 2.0, 5.0, 10.0,
];

#[derive(Debug)]
struct HistogramState {
    /// `edges.len() + 1` buckets; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Fixed-bucket histogram. Observations are lock-free; bucket `i` counts
/// samples with `value <= edges[i]` (first matching edge), and one
/// overflow bucket catches the rest.
#[derive(Clone, Debug)]
pub struct Histogram {
    edges: Arc<[f64]>,
    state: Arc<HistogramState>,
}

impl Histogram {
    /// # Panics
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[f64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            edges: edges.into(),
            state: Arc::new(HistogramState {
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            }),
        }
    }

    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    pub fn observe(&self, value: f64) {
        let idx = self
            .edges
            .partition_point(|&e| e < value)
            .min(self.edges.len());
        self.state.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.state.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.state.sum_bits, |s| s + value);
        atomic_f64_update(&self.state.min_bits, |m| m.min(value));
        atomic_f64_update(&self.state.max_bits, |m| m.max(value));
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.to_vec(),
            counts: self
                .state
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.state.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.state.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.state.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.state.max_bits.load(Ordering::Relaxed)),
        }
    }
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Point-in-time copy of a [`Histogram`], mergeable across shards.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub edges: Vec<f64>,
    /// `edges.len() + 1` entries; last is the overflow bucket.
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    /// `+inf` when empty.
    pub min: f64,
    /// `-inf` when empty.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Folds `other` into `self`.
    ///
    /// # Errors
    /// Fails if bucket edges differ (merging histograms with different
    /// resolutions would silently misbin).
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), String> {
        if self.edges != other.edges {
            return Err(format!(
                "bucket edges differ: {} vs {} edges",
                self.edges.len(),
                other.edges.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the upper edge of the bucket
    /// containing the q-th sample (`max` for the overflow bucket).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.edges.len() {
                    self.edges[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// Snapshot of every metric in a [`Registry`], sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Name → metric map. Lookup takes a short `RwLock` section; the returned
/// handles are lock-free, so hot paths should look up once and reuse.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `edges` on first use. Later calls ignore `edges` (first writer
    /// fixes the resolution).
    pub fn histogram(&self, name: &str, edges: &[f64]) -> Histogram {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges))
            .clone()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drops every registered metric. Outstanding handles keep their cells
    /// alive but detach from future snapshots.
    pub fn reset(&self) {
        self.counters.write().unwrap().clear();
        self.gauges.write().unwrap().clear();
        self.histograms.write().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("a.b.c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b.c").get(), 5);
        let g = r.gauge("a.b.g");
        g.set(-2.5);
        assert_eq!(r.gauge("a.b.g").get(), -2.5);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Edges [1, 10]: bucket 0 is (-inf, 1], bucket 1 is (1, 10],
        // bucket 2 is the overflow (10, inf).
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 1.0001, 10.0, 11.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 11.0);
        assert!((s.sum - 23.5001).abs() < 1e-9);
    }

    #[test]
    fn histogram_exact_edge_lands_in_lower_bucket() {
        let h = Histogram::new(&[1e-3, 1e-2]);
        h.observe(1e-3);
        assert_eq!(h.snapshot().counts, vec![1, 0, 0]);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(3.0);
        b.observe(1.5);
        let mut s = a.snapshot();
        s.merge(&b.snapshot()).unwrap();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 3.0);
        assert!((s.sum - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(&[1.0]).snapshot();
        let b = Histogram::new(&[2.0]).snapshot();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn quantile_tracks_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..10 {
            h.observe(3.0);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1.0);
        assert_eq!(s.quantile(0.95), 4.0);
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(std::panic::catch_unwind(|| Histogram::new(&[])).is_err());
        assert!(std::panic::catch_unwind(|| Histogram::new(&[2.0, 1.0])).is_err());
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let h = Histogram::new(DURATION_EDGES_S);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000 {
                        h.observe(1e-6 * (t * 10_000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(
            h.snapshot().counts.iter().sum::<u64>(),
            40_000,
            "bucket totals must equal the count"
        );
    }
}
