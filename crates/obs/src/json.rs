//! Minimal JSON value, writer, and recursive-descent parser.
//!
//! The journal is exported as JSON-lines and the CI smoke step parses it
//! back; keeping both directions in-crate avoids pulling `serde_json` into
//! the offline-allowed dependency set.

use std::fmt;

/// A JSON value. Objects preserve insertion order (journal lines stay
/// diff-stable across runs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value as `u64` (journal counters are written as integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Inf; journal writers clamp to null.
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("tab\there \"quoted\" \u{1}".into()).to_string();
        assert_eq!(s, r#""tab\there \"quoted\" \u0001""#);
        assert_eq!(
            Json::parse(&s).unwrap().as_str(),
            Some("tab\there \"quoted\" \u{1}")
        );
    }
}
