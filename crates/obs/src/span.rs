//! Hierarchical causal spans: RAII guards that journal `SpanStart` /
//! `SpanEnd` pairs tying every event to the pipeline stage that caused it.
//!
//! A span is one node of a causality tree: `(id, parent, thread)` plus a
//! stage name and a wall-clock interval. The day controller opens a `day`
//! span, each epoch opens an `epoch` span under it, and the staged
//! pipeline (`scenario.build` → `stage.network_plan` →
//! `stage.server_eval` → `stage.accounting`), the optimizer's ladder
//! search, and every LP/MILP solve open children in turn — so a
//! `CandidatePruned` event or an LP pivot count can be attributed offline
//! to the exact epoch, degradation rung, and candidate that produced it
//! (`obsctl summarize` / `obsctl flame` consume the tree).
//!
//! **Parenting.** Within a thread, spans nest automatically through a
//! thread-local stack: [`Span::enter`] parents under the innermost open
//! span of the current thread. Fan-out sites (the epoch fan-out, the
//! per-ISN server shards) cross threads, where the stack is empty — they
//! capture [`current_span_id`] before spawning and open children with
//! [`Span::enter_under`], which re-seeds the worker's stack so deeper
//! spans chain correctly.
//!
//! **Cost.** Like every other instrumentation site, span creation is
//! gated on [`crate::enabled`]: when telemetry is off a guard is an
//! `Option::None` and construction/drop touch no clock, no lock, and no
//! journal. A span created while telemetry was on always journals its
//! end, even if the flag flipped mid-flight, so starts and ends stay
//! paired.

use crate::journal::Event;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Parent id of a root span (and [`current_span_id`]'s answer when no
/// span is open on the calling thread).
pub const NO_SPAN: u64 = 0;

/// Span ids are process-wide and never reused (0 is reserved for "no
/// span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense per-thread ids (std's `ThreadId` is opaque); assigned on a
/// thread's first span.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The process start-of-telemetry instant `SpanStart::start_s` offsets
/// are measured from (first span wins; only deltas are meaningful).
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The innermost open span on the calling thread, or [`NO_SPAN`]. Capture
/// this before fanning work out to other threads and hand it to
/// [`Span::enter_under`] inside the worker closure.
pub fn current_span_id() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(NO_SPAN))
}

struct Armed {
    id: u64,
    name: String,
    start: Instant,
    detail: String,
}

/// RAII causal-span guard: journals `SpanStart` on creation and `SpanEnd`
/// (with the measured duration and an optional detail string) on drop.
///
/// ```
/// use eprons_obs as obs;
/// obs::set_enabled(true);
/// {
///     let mut day = obs::Span::enter("day");
///     let _epoch = obs::Span::enter("epoch"); // parented under `day`
///     day.note("strategy=eprons");
/// } // both ends journaled here
/// assert_eq!(obs::journal().count_kind("SpanStart"), 2);
/// obs::reset();
/// obs::set_enabled(false);
/// ```
#[must_use = "a span closes on drop; binding it to `_` closes immediately"]
pub struct Span {
    armed: Option<Armed>,
}

impl Span {
    /// Opens a span under the current thread's innermost open span (a
    /// root span when none is open). Inert while telemetry is disabled.
    pub fn enter(name: &str) -> Span {
        if !crate::enabled() {
            return Span { armed: None };
        }
        Span::open(name, current_span_id())
    }

    /// Opens a span under an explicit parent id — the cross-thread form
    /// for fan-out sites ([`NO_SPAN`] makes a root). Inert while
    /// telemetry is disabled.
    pub fn enter_under(parent: u64, name: &str) -> Span {
        if !crate::enabled() {
            return Span { armed: None };
        }
        Span::open(name, parent)
    }

    fn open(name: &str, parent: u64) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = THREAD_ID.with(|t| *t);
        STACK.with(|s| s.borrow_mut().push(id));
        let start = Instant::now();
        crate::record_unguarded(Event::SpanStart {
            id,
            parent,
            thread,
            name: name.to_string(),
            start_s: start.duration_since(process_epoch()).as_secs_f64(),
        });
        Span {
            armed: Some(Armed {
                id,
                name: name.to_string(),
                start,
                detail: String::new(),
            }),
        }
    }

    /// Attaches a detail string reported in the span's `SpanEnd` (e.g.
    /// `"pivots=131 warm=true"`). Last call wins; a no-op on an inert
    /// guard.
    pub fn note(&mut self, detail: impl Into<String>) {
        if let Some(a) = &mut self.armed {
            a.detail = detail.into();
        }
    }

    /// This span's id ([`NO_SPAN`] on an inert guard) — hand it to
    /// [`Span::enter_under`] across a thread boundary.
    pub fn id(&self) -> u64 {
        self.armed.as_ref().map_or(NO_SPAN, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.armed.take() {
            let elapsed_s = a.start.elapsed().as_secs_f64();
            STACK.with(|s| {
                let mut st = s.borrow_mut();
                // Guards drop LIFO in correct code; `rposition` keeps a
                // mis-ordered drop from corrupting unrelated frames.
                if let Some(pos) = st.iter().rposition(|&x| x == a.id) {
                    st.remove(pos);
                }
            });
            crate::record_unguarded(Event::SpanEnd {
                id: a.id,
                name: a.name,
                elapsed_s,
                detail: a.detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run against the process-global journal, so they
    // serialize through one #[test] (the crate convention — see lib.rs).
    #[test]
    fn spans_nest_cross_thread_and_stay_cheap_when_disabled() {
        // Disabled: no events, no stack growth.
        assert!(!crate::enabled());
        {
            let mut s = Span::enter("off");
            s.note("ignored");
            assert_eq!(s.id(), NO_SPAN);
        }
        assert_eq!(crate::journal().len(), 0);

        crate::set_enabled(true);
        crate::reset();
        let outer_id;
        {
            let mut outer = Span::enter("outer");
            outer_id = outer.id();
            assert_ne!(outer_id, NO_SPAN);
            assert_eq!(current_span_id(), outer_id);
            {
                let inner = Span::enter("inner");
                assert_eq!(current_span_id(), inner.id());
            }
            assert_eq!(current_span_id(), outer_id);
            // Cross-thread: enter_under re-seeds the worker stack.
            let parent = current_span_id();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    assert_eq!(current_span_id(), NO_SPAN);
                    let shard = Span::enter_under(parent, "shard");
                    assert_eq!(current_span_id(), shard.id());
                    let _leaf = Span::enter("leaf"); // parents under shard
                });
            });
            outer.note("k=2");
        }
        assert_eq!(current_span_id(), NO_SPAN);

        let entries = crate::journal().snapshot();
        let starts: Vec<_> = entries
            .iter()
            .filter_map(|e| match &e.event {
                Event::SpanStart {
                    id,
                    parent,
                    name,
                    thread,
                    ..
                } => Some((*id, *parent, name.clone(), *thread)),
                _ => None,
            })
            .collect();
        let ends: Vec<_> = entries
            .iter()
            .filter_map(|e| match &e.event {
                Event::SpanEnd {
                    id,
                    name,
                    elapsed_s,
                    detail,
                } => Some((*id, name.clone(), *elapsed_s, detail.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 4, "outer, inner, shard, leaf");
        assert_eq!(ends.len(), 4);
        let find = |n: &str| starts.iter().find(|(_, _, name, _)| name == n).unwrap();
        let (outer_s, outer_parent, _, outer_thread) = find("outer");
        let (_, inner_parent, _, _) = find("inner");
        let (shard_id, shard_parent, _, shard_thread) = find("shard");
        let (_, leaf_parent, _, _) = find("leaf");
        assert_eq!(*outer_s, outer_id);
        assert_eq!(*outer_parent, NO_SPAN);
        assert_eq!(*inner_parent, outer_id);
        assert_eq!(*shard_parent, outer_id, "explicit cross-thread parent");
        assert_eq!(*leaf_parent, *shard_id, "worker stack re-seeded");
        assert_ne!(outer_thread, shard_thread, "distinct thread ids");
        for (_, _, elapsed, _) in &ends {
            assert!(*elapsed >= 0.0);
        }
        let outer_end = ends.iter().find(|(id, ..)| *id == outer_id).unwrap();
        assert_eq!(outer_end.3, "k=2", "note lands in SpanEnd detail");

        crate::reset();
        crate::set_enabled(false);
    }
}
