//! RAII scoped timers recording wall-clock durations into histograms.

use crate::metrics::{Registry, DURATION_EDGES_S};
use std::time::Instant;

/// Measures the lifetime of a scope and records it (in seconds) into a
/// duration histogram on drop.
///
/// ```
/// {
///     let _t = eprons_obs::Timer::scoped("lp.solve_s");
///     // ... timed work ...
/// } // recorded here (no-op while telemetry is disabled)
/// ```
#[must_use = "a timer records on drop; binding it to `_` drops immediately"]
pub struct Timer {
    armed: Option<(crate::metrics::Histogram, Instant)>,
}

impl Timer {
    /// Times into the global registry; inert (a single atomic load, no
    /// clock read) while telemetry is disabled.
    pub fn scoped(name: &str) -> Timer {
        if crate::enabled() {
            Timer::scoped_in(crate::registry(), name)
        } else {
            Timer { armed: None }
        }
    }

    /// Times into an explicit registry, unconditionally.
    pub fn scoped_in(registry: &Registry, name: &str) -> Timer {
        Timer {
            armed: Some((registry.histogram(name, DURATION_EDGES_S), Instant::now())),
        }
    }

    /// Discards the measurement (e.g. on an error path that should not
    /// pollute the latency distribution).
    pub fn cancel(mut self) {
        self.armed = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.armed.take() {
            hist.observe(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_timers_record_independently_and_inner_is_shorter() {
        let reg = Registry::new();
        {
            let _outer = Timer::scoped_in(&reg, "outer_s");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Timer::scoped_in(&reg, "inner_s");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let outer = get("outer_s");
        let inner = get("inner_s");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(
            inner.sum < outer.sum,
            "inner scope ({}s) must be shorter than outer ({}s)",
            inner.sum,
            outer.sum
        );
    }

    #[test]
    fn same_name_accumulates() {
        let reg = Registry::new();
        for _ in 0..3 {
            let _t = Timer::scoped_in(&reg, "loop_s");
        }
        assert_eq!(
            reg.histogram("loop_s", DURATION_EDGES_S).snapshot().count,
            3
        );
    }

    #[test]
    fn cancel_discards_measurement() {
        let reg = Registry::new();
        let t = Timer::scoped_in(&reg, "cancelled_s");
        t.cancel();
        assert_eq!(
            reg.histogram("cancelled_s", DURATION_EDGES_S)
                .snapshot()
                .count,
            0
        );
    }

    #[test]
    fn disabled_global_timer_is_inert() {
        // Not using the global enable flag here (other tests own it):
        // a Timer built with armed=None must not record or panic.
        let t = Timer { armed: None };
        drop(t);
    }
}
