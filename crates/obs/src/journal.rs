//! Structured run journal: typed events, in-memory sink, JSON-lines
//! export/import.
//!
//! One journal line is one event object: `{"seq":12,"t":"OptimizerChoice",
//! ...fields}`. `seq` is a process-wide append index so interleaved
//! per-epoch threads can be re-ordered offline; `t` is the event kind.

use crate::json::Json;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-epoch roll-up the controller emits once per control period — the
/// journal's equivalent of one Fig. 15 timeline sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Epoch index within the day run.
    pub epoch: u64,
    /// Minute-of-day at the epoch start.
    pub minute: f64,
    /// Scheme that produced this epoch (e.g. `eprons`, `no-pm`).
    pub strategy: String,
    /// Chosen network configuration (e.g. `k=2`, `agg1`, `all-on`).
    pub choice: String,
    /// Server-side power draw, W.
    pub server_w: f64,
    /// Network-side power draw, W.
    pub network_w: f64,
    /// Switches left powered on.
    pub active_switches: u64,
    /// End-to-end p95 latency, µs.
    pub e2e_p95_us: f64,
    /// Whether the chosen config met the latency SLA.
    pub feasible: bool,
    /// One-shot switch boot/transition energy spent on repairs inside
    /// this epoch, J (0 for clean epochs). Audited against the epoch's
    /// `RepairOutcome` events by `obsctl audit`.
    pub boot_energy_j: f64,
}

impl Snapshot {
    /// Total (server + network) power, W — must reconcile with
    /// `PowerBreakdown::total_w()`.
    pub fn total_w(&self) -> f64 {
        self.server_w + self.network_w
    }
}

/// A typed journal event. Field meanings are documented in README
/// "Observability"; every variant maps onto one arrow of the paper's
/// Fig. 7 control loop (see DESIGN.md).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A `simulate_day` sweep started.
    DayStart { strategy: String, epochs: u64 },
    /// One control epoch began (before the optimizer runs).
    EpochStart {
        epoch: u64,
        minute: f64,
        search_load: f64,
        background_util: f64,
    },
    /// Per-epoch roll-up after the optimizer committed a choice.
    EpochSnapshot(Snapshot),
    /// The joint optimizer evaluated one candidate network config.
    OptimizerCandidate {
        k: String,
        total_w: f64,
        p95_us: f64,
        feasible: bool,
    },
    /// A candidate's cluster evaluation failed outright (no result).
    CandidateFailed { k: String, error: String },
    /// The optimizer skipped a candidate without simulating it: its cheap
    /// power lower bound already exceeded the feasible incumbent's
    /// measured total, so it cannot win.
    CandidatePruned {
        k: String,
        bound_w: f64,
        incumbent_w: f64,
    },
    /// An epoch's ladder search started from the previous epoch's winner
    /// (hint) because the failure mask and demand fingerprint carried
    /// over unchanged.
    WarmStartApplied { epoch: u64, hint: String },
    /// The optimizer committed to a candidate.
    OptimizerChoice {
        k: String,
        total_w: f64,
        p95_us: f64,
        feasible: bool,
        /// How many candidates produced a result this round.
        evaluated: u64,
    },
    /// One LP solve completed (two-phase simplex).
    LpSolve {
        rows: u64,
        cols: u64,
        iters: u64,
        binding_constraints: Vec<String>,
    },
    /// DVFS summary for one simulated core run (per-transition events
    /// would flood the journal at millions per day sweep).
    FreqTransition {
        policy: String,
        transitions: u64,
        decisions: u64,
        final_ghz: f64,
    },
    /// Links/switches toggled between two consecutive network configs.
    LinkStateChange {
        links_on: u64,
        links_off: u64,
        switches_on: u64,
        switches_off: u64,
    },
    /// One consolidation pass over a flow set completed.
    ConsolidationPass {
        algo: String,
        flows: u64,
        placed: u64,
        active_switches: u64,
    },
    /// One pod-decomposed consolidation pass completed: `solved` pods
    /// were solved fresh, `cached` served from the pod-solve cache,
    /// `resolves` re-solved under a tightened uplink budget after core-
    /// stitch push-back, over `rounds` stitch rounds of which `balanced`
    /// took the balanced-floor retry. `fallback` is true when the
    /// decomposition gave up and the monolithic path produced the
    /// assignment instead. The fields mirror the `net.pods.*` counters,
    /// so a journal alone reconstructs the counter view.
    PodConsolidation {
        pods: u64,
        solved: u64,
        cached: u64,
        resolves: u64,
        rounds: u64,
        balanced: u64,
        fallback: bool,
    },
    /// A recorder was driven with a clock that went backwards (recovered,
    /// not fatal — see `TimeWeighted::try_set`).
    ClockSkew { at_s: f64, last_s: f64 },
    /// Identifies one cluster evaluation (scheme × network config × seed).
    RunTag {
        scheme: String,
        consolidation: String,
        seed: u64,
    },
    /// A shared scenario context was built (stage 1 of the staged cluster
    /// pipeline): the per-(config, seed, load) state — topology, service
    /// model, query/background workloads — that every candidate
    /// evaluation against this scenario reuses.
    ScenarioBuilt {
        seed: u64,
        queries: u64,
        flows: u64,
        servers: u64,
    },
    /// Fault injection toggled a switch (kind is `fail` or `recover`).
    FailureInjected {
        switch: u64,
        minute: f64,
        kind: String,
    },
    /// One rung of the degradation ladder ran for a mid-epoch failure:
    /// outcome is `repaired`, `repair-failed`, `reconsolidated`,
    /// `all-on-fallback`, or `unprotected`.
    RepairOutcome {
        switch: u64,
        minute: f64,
        outcome: String,
        rerouted: u64,
        woken: u64,
        boot_energy_j: f64,
    },
    /// An epoch could not be held by in-place repair and fell down the
    /// ladder (or ran unprotected).
    DegradedEpoch {
        epoch: u64,
        reason: String,
        fallback: String,
    },
    /// A causal span opened (see `eprons_obs::Span`). `id` is process-wide
    /// and unique; `parent` is 0 for roots; `thread` is a dense
    /// per-process thread index; `start_s` is seconds since the process
    /// telemetry epoch (only deltas are meaningful).
    SpanStart {
        id: u64,
        parent: u64,
        thread: u64,
        name: String,
        start_s: f64,
    },
    /// The matching span closed after `elapsed_s` wall seconds. `detail`
    /// carries stage-specific stats (e.g. `pivots=131 warm=true`), empty
    /// when unset.
    SpanEnd {
        id: u64,
        name: String,
        elapsed_s: f64,
        detail: String,
    },
    /// One time-weighted power segment of an epoch: total draw was
    /// (`server_w` + `network_w`) over minutes `[from_min, to_min)` of the
    /// day. Clean epochs emit one segment spanning the whole epoch;
    /// epochs with mid-epoch failures emit one per inter-event stretch.
    /// Integrating segments must reproduce the epoch snapshot's average
    /// power exactly (`obsctl audit` checks this).
    PowerSegment {
        epoch: u64,
        from_min: f64,
        to_min: f64,
        server_w: f64,
        network_w: f64,
    },
    /// Day-level energy roll-up emitted once at the end of a
    /// `simulate_day_with_failures` sweep: `energy_j` is the reported
    /// total (time-integrated power + boot energy), `boot_energy_j` the
    /// one-shot repair share included in it.
    DayEnergy {
        strategy: String,
        epochs: u64,
        energy_j: f64,
        boot_energy_j: f64,
    },
    /// The online controller held the previous epoch's configuration
    /// instead of switching to the optimizer's `desired` pick: either the
    /// priced transition would not pay back its energy within the
    /// configured horizon, or a switch it would toggle is still cooling
    /// down. `saving_w` is what switching would have saved per second,
    /// `transition_j` the priced cost of the toggle.
    HysteresisHold {
        epoch: u64,
        desired: String,
        held: String,
        saving_w: f64,
        transition_j: f64,
        reason: String,
    },
    /// The online controller deferred latency-tolerant background demand
    /// into the bounded queue: `mbps_min` megabit-minutes enqueued this
    /// epoch with a drain deadline `slack_epochs` epochs out;
    /// `queue_mbps_min` is the queue depth after the enqueue. `obsctl
    /// audit` conserves deferred bytes: per day, Σ enqueued ==
    /// Σ (drained + dropped).
    DeferralEnqueued {
        epoch: u64,
        mbps_min: f64,
        queue_mbps_min: f64,
        slack_epochs: u64,
    },
    /// The online controller drained deferred background demand into a
    /// trough (`drained_mbps_min`) and/or dropped entries whose slack
    /// budget expired (`dropped_mbps_min`); `queue_mbps_min` is the queue
    /// depth after both.
    DeferralDrained {
        epoch: u64,
        drained_mbps_min: f64,
        dropped_mbps_min: f64,
        queue_mbps_min: f64,
    },
    /// End-of-day report from one cross-epoch cache of a day-scoped
    /// incremental run (`cache` names it: `core.daycache` for the
    /// scenario-context cache, `server.serveval` for the per-ISN
    /// server-evaluation memo). Counters cover the whole day; `bytes` is
    /// the approximate heap held when the day closed. `obsctl summarize`
    /// renders one table row per report.
    DayCacheReport {
        cache: String,
        hits: u64,
        misses: u64,
        evictions: u64,
        bytes: u64,
    },
}

impl Event {
    /// Stable kind tag used as the `t` field of a journal line.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DayStart { .. } => "DayStart",
            Event::EpochStart { .. } => "EpochStart",
            Event::EpochSnapshot(_) => "EpochSnapshot",
            Event::OptimizerCandidate { .. } => "OptimizerCandidate",
            Event::CandidateFailed { .. } => "CandidateFailed",
            Event::CandidatePruned { .. } => "CandidatePruned",
            Event::WarmStartApplied { .. } => "WarmStartApplied",
            Event::OptimizerChoice { .. } => "OptimizerChoice",
            Event::LpSolve { .. } => "LpSolve",
            Event::FreqTransition { .. } => "FreqTransition",
            Event::LinkStateChange { .. } => "LinkStateChange",
            Event::ConsolidationPass { .. } => "ConsolidationPass",
            Event::PodConsolidation { .. } => "PodConsolidation",
            Event::ClockSkew { .. } => "ClockSkew",
            Event::RunTag { .. } => "RunTag",
            Event::ScenarioBuilt { .. } => "ScenarioBuilt",
            Event::FailureInjected { .. } => "FailureInjected",
            Event::RepairOutcome { .. } => "RepairOutcome",
            Event::DegradedEpoch { .. } => "DegradedEpoch",
            Event::SpanStart { .. } => "SpanStart",
            Event::SpanEnd { .. } => "SpanEnd",
            Event::PowerSegment { .. } => "PowerSegment",
            Event::DayEnergy { .. } => "DayEnergy",
            Event::HysteresisHold { .. } => "HysteresisHold",
            Event::DeferralEnqueued { .. } => "DeferralEnqueued",
            Event::DeferralDrained { .. } => "DeferralDrained",
            Event::DayCacheReport { .. } => "DayCacheReport",
        }
    }

    fn fields(&self) -> Vec<(String, Json)> {
        fn s(v: &str) -> Json {
            Json::Str(v.to_string())
        }
        fn n(v: f64) -> Json {
            Json::Num(v)
        }
        fn u(v: u64) -> Json {
            Json::Num(v as f64)
        }
        fn b(v: bool) -> Json {
            Json::Bool(v)
        }
        let f =
            |pairs: Vec<(&str, Json)>| pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        match self {
            Event::DayStart { strategy, epochs } => {
                f(vec![("strategy", s(strategy)), ("epochs", u(*epochs))])
            }
            Event::EpochStart {
                epoch,
                minute,
                search_load,
                background_util,
            } => f(vec![
                ("epoch", u(*epoch)),
                ("minute", n(*minute)),
                ("search_load", n(*search_load)),
                ("background_util", n(*background_util)),
            ]),
            Event::EpochSnapshot(snap) => f(vec![
                ("epoch", u(snap.epoch)),
                ("minute", n(snap.minute)),
                ("strategy", s(&snap.strategy)),
                ("choice", s(&snap.choice)),
                ("server_w", n(snap.server_w)),
                ("network_w", n(snap.network_w)),
                ("active_switches", u(snap.active_switches)),
                ("e2e_p95_us", n(snap.e2e_p95_us)),
                ("feasible", b(snap.feasible)),
                ("boot_energy_j", n(snap.boot_energy_j)),
            ]),
            Event::OptimizerCandidate {
                k,
                total_w,
                p95_us,
                feasible,
            } => f(vec![
                ("k", s(k)),
                ("total_w", n(*total_w)),
                ("p95_us", n(*p95_us)),
                ("feasible", b(*feasible)),
            ]),
            Event::CandidateFailed { k, error } => f(vec![("k", s(k)), ("error", s(error))]),
            Event::CandidatePruned {
                k,
                bound_w,
                incumbent_w,
            } => f(vec![
                ("k", s(k)),
                ("bound_w", n(*bound_w)),
                ("incumbent_w", n(*incumbent_w)),
            ]),
            Event::WarmStartApplied { epoch, hint } => {
                f(vec![("epoch", u(*epoch)), ("hint", s(hint))])
            }
            Event::OptimizerChoice {
                k,
                total_w,
                p95_us,
                feasible,
                evaluated,
            } => f(vec![
                ("k", s(k)),
                ("total_w", n(*total_w)),
                ("p95_us", n(*p95_us)),
                ("feasible", b(*feasible)),
                ("evaluated", u(*evaluated)),
            ]),
            Event::LpSolve {
                rows,
                cols,
                iters,
                binding_constraints,
            } => f(vec![
                ("rows", u(*rows)),
                ("cols", u(*cols)),
                ("iters", u(*iters)),
                (
                    "binding_constraints",
                    Json::Arr(binding_constraints.iter().map(|c| s(c)).collect()),
                ),
            ]),
            Event::FreqTransition {
                policy,
                transitions,
                decisions,
                final_ghz,
            } => f(vec![
                ("policy", s(policy)),
                ("transitions", u(*transitions)),
                ("decisions", u(*decisions)),
                ("final_ghz", n(*final_ghz)),
            ]),
            Event::LinkStateChange {
                links_on,
                links_off,
                switches_on,
                switches_off,
            } => f(vec![
                ("links_on", u(*links_on)),
                ("links_off", u(*links_off)),
                ("switches_on", u(*switches_on)),
                ("switches_off", u(*switches_off)),
            ]),
            Event::ConsolidationPass {
                algo,
                flows,
                placed,
                active_switches,
            } => f(vec![
                ("algo", s(algo)),
                ("flows", u(*flows)),
                ("placed", u(*placed)),
                ("active_switches", u(*active_switches)),
            ]),
            Event::PodConsolidation {
                pods,
                solved,
                cached,
                resolves,
                rounds,
                balanced,
                fallback,
            } => f(vec![
                ("pods", u(*pods)),
                ("solved", u(*solved)),
                ("cached", u(*cached)),
                ("resolves", u(*resolves)),
                ("rounds", u(*rounds)),
                ("balanced", u(*balanced)),
                ("fallback", b(*fallback)),
            ]),
            Event::ClockSkew { at_s, last_s } => {
                f(vec![("at_s", n(*at_s)), ("last_s", n(*last_s))])
            }
            Event::RunTag {
                scheme,
                consolidation,
                seed,
            } => f(vec![
                ("scheme", s(scheme)),
                ("consolidation", s(consolidation)),
                ("seed", u(*seed)),
            ]),
            Event::ScenarioBuilt {
                seed,
                queries,
                flows,
                servers,
            } => f(vec![
                ("seed", u(*seed)),
                ("queries", u(*queries)),
                ("flows", u(*flows)),
                ("servers", u(*servers)),
            ]),
            Event::FailureInjected {
                switch,
                minute,
                kind,
            } => f(vec![
                ("switch", u(*switch)),
                ("minute", n(*minute)),
                ("kind", s(kind)),
            ]),
            Event::RepairOutcome {
                switch,
                minute,
                outcome,
                rerouted,
                woken,
                boot_energy_j,
            } => f(vec![
                ("switch", u(*switch)),
                ("minute", n(*minute)),
                ("outcome", s(outcome)),
                ("rerouted", u(*rerouted)),
                ("woken", u(*woken)),
                ("boot_energy_j", n(*boot_energy_j)),
            ]),
            Event::DegradedEpoch {
                epoch,
                reason,
                fallback,
            } => f(vec![
                ("epoch", u(*epoch)),
                ("reason", s(reason)),
                ("fallback", s(fallback)),
            ]),
            Event::SpanStart {
                id,
                parent,
                thread,
                name,
                start_s,
            } => f(vec![
                ("id", u(*id)),
                ("parent", u(*parent)),
                ("thread", u(*thread)),
                ("name", s(name)),
                ("start_s", n(*start_s)),
            ]),
            Event::SpanEnd {
                id,
                name,
                elapsed_s,
                detail,
            } => f(vec![
                ("id", u(*id)),
                ("name", s(name)),
                ("elapsed_s", n(*elapsed_s)),
                ("detail", s(detail)),
            ]),
            Event::PowerSegment {
                epoch,
                from_min,
                to_min,
                server_w,
                network_w,
            } => f(vec![
                ("epoch", u(*epoch)),
                ("from_min", n(*from_min)),
                ("to_min", n(*to_min)),
                ("server_w", n(*server_w)),
                ("network_w", n(*network_w)),
            ]),
            Event::DayEnergy {
                strategy,
                epochs,
                energy_j,
                boot_energy_j,
            } => f(vec![
                ("strategy", s(strategy)),
                ("epochs", u(*epochs)),
                ("energy_j", n(*energy_j)),
                ("boot_energy_j", n(*boot_energy_j)),
            ]),
            Event::HysteresisHold {
                epoch,
                desired,
                held,
                saving_w,
                transition_j,
                reason,
            } => f(vec![
                ("epoch", u(*epoch)),
                ("desired", s(desired)),
                ("held", s(held)),
                ("saving_w", n(*saving_w)),
                ("transition_j", n(*transition_j)),
                ("reason", s(reason)),
            ]),
            Event::DeferralEnqueued {
                epoch,
                mbps_min,
                queue_mbps_min,
                slack_epochs,
            } => f(vec![
                ("epoch", u(*epoch)),
                ("mbps_min", n(*mbps_min)),
                ("queue_mbps_min", n(*queue_mbps_min)),
                ("slack_epochs", u(*slack_epochs)),
            ]),
            Event::DeferralDrained {
                epoch,
                drained_mbps_min,
                dropped_mbps_min,
                queue_mbps_min,
            } => f(vec![
                ("epoch", u(*epoch)),
                ("drained_mbps_min", n(*drained_mbps_min)),
                ("dropped_mbps_min", n(*dropped_mbps_min)),
                ("queue_mbps_min", n(*queue_mbps_min)),
            ]),
            Event::DayCacheReport {
                cache,
                hits,
                misses,
                evictions,
                bytes,
            } => f(vec![
                ("cache", s(cache)),
                ("hits", u(*hits)),
                ("misses", u(*misses)),
                ("evictions", u(*evictions)),
                ("bytes", u(*bytes)),
            ]),
        }
    }

    /// Rebuilds an event from a parsed journal-line object (without the
    /// `seq` field).
    ///
    /// # Errors
    /// Reports the missing/mistyped field or unknown kind.
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let kind = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or("missing event tag 't'")?;
        let fs = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("{kind}: missing string field '{key}'"))
        };
        let fn_ = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("{kind}: missing numeric field '{key}'"))
        };
        let fu = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("{kind}: missing integer field '{key}'"))
        };
        let fb = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or(format!("{kind}: missing bool field '{key}'"))
        };
        Ok(match kind {
            "DayStart" => Event::DayStart {
                strategy: fs("strategy")?,
                epochs: fu("epochs")?,
            },
            "EpochStart" => Event::EpochStart {
                epoch: fu("epoch")?,
                minute: fn_("minute")?,
                search_load: fn_("search_load")?,
                background_util: fn_("background_util")?,
            },
            "EpochSnapshot" => Event::EpochSnapshot(Snapshot {
                epoch: fu("epoch")?,
                minute: fn_("minute")?,
                strategy: fs("strategy")?,
                choice: fs("choice")?,
                server_w: fn_("server_w")?,
                network_w: fn_("network_w")?,
                active_switches: fu("active_switches")?,
                e2e_p95_us: fn_("e2e_p95_us")?,
                feasible: fb("feasible")?,
                boot_energy_j: fn_("boot_energy_j")?,
            }),
            "OptimizerCandidate" => Event::OptimizerCandidate {
                k: fs("k")?,
                total_w: fn_("total_w")?,
                p95_us: fn_("p95_us")?,
                feasible: fb("feasible")?,
            },
            "CandidateFailed" => Event::CandidateFailed {
                k: fs("k")?,
                error: fs("error")?,
            },
            "CandidatePruned" => Event::CandidatePruned {
                k: fs("k")?,
                bound_w: fn_("bound_w")?,
                incumbent_w: fn_("incumbent_w")?,
            },
            "WarmStartApplied" => Event::WarmStartApplied {
                epoch: fu("epoch")?,
                hint: fs("hint")?,
            },
            "OptimizerChoice" => Event::OptimizerChoice {
                k: fs("k")?,
                total_w: fn_("total_w")?,
                p95_us: fn_("p95_us")?,
                feasible: fb("feasible")?,
                evaluated: fu("evaluated")?,
            },
            "LpSolve" => Event::LpSolve {
                rows: fu("rows")?,
                cols: fu("cols")?,
                iters: fu("iters")?,
                binding_constraints: v
                    .get("binding_constraints")
                    .and_then(Json::as_arr)
                    .ok_or("LpSolve: missing 'binding_constraints'")?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or("LpSolve: non-string constraint name".to_string())
                    })
                    .collect::<Result<_, _>>()?,
            },
            "FreqTransition" => Event::FreqTransition {
                policy: fs("policy")?,
                transitions: fu("transitions")?,
                decisions: fu("decisions")?,
                final_ghz: fn_("final_ghz")?,
            },
            "LinkStateChange" => Event::LinkStateChange {
                links_on: fu("links_on")?,
                links_off: fu("links_off")?,
                switches_on: fu("switches_on")?,
                switches_off: fu("switches_off")?,
            },
            "ConsolidationPass" => Event::ConsolidationPass {
                algo: fs("algo")?,
                flows: fu("flows")?,
                placed: fu("placed")?,
                active_switches: fu("active_switches")?,
            },
            "PodConsolidation" => Event::PodConsolidation {
                pods: fu("pods")?,
                solved: fu("solved")?,
                cached: fu("cached")?,
                resolves: fu("resolves")?,
                rounds: fu("rounds")?,
                balanced: fu("balanced")?,
                fallback: fb("fallback")?,
            },
            "ClockSkew" => Event::ClockSkew {
                at_s: fn_("at_s")?,
                last_s: fn_("last_s")?,
            },
            "ScenarioBuilt" => Event::ScenarioBuilt {
                seed: fu("seed")?,
                queries: fu("queries")?,
                flows: fu("flows")?,
                servers: fu("servers")?,
            },
            "RunTag" => Event::RunTag {
                scheme: fs("scheme")?,
                consolidation: fs("consolidation")?,
                seed: fu("seed")?,
            },
            "FailureInjected" => Event::FailureInjected {
                switch: fu("switch")?,
                minute: fn_("minute")?,
                kind: fs("kind")?,
            },
            "RepairOutcome" => Event::RepairOutcome {
                switch: fu("switch")?,
                minute: fn_("minute")?,
                outcome: fs("outcome")?,
                rerouted: fu("rerouted")?,
                woken: fu("woken")?,
                boot_energy_j: fn_("boot_energy_j")?,
            },
            "DegradedEpoch" => Event::DegradedEpoch {
                epoch: fu("epoch")?,
                reason: fs("reason")?,
                fallback: fs("fallback")?,
            },
            "SpanStart" => Event::SpanStart {
                id: fu("id")?,
                parent: fu("parent")?,
                thread: fu("thread")?,
                name: fs("name")?,
                start_s: fn_("start_s")?,
            },
            "SpanEnd" => Event::SpanEnd {
                id: fu("id")?,
                name: fs("name")?,
                elapsed_s: fn_("elapsed_s")?,
                detail: fs("detail")?,
            },
            "PowerSegment" => Event::PowerSegment {
                epoch: fu("epoch")?,
                from_min: fn_("from_min")?,
                to_min: fn_("to_min")?,
                server_w: fn_("server_w")?,
                network_w: fn_("network_w")?,
            },
            "DayEnergy" => Event::DayEnergy {
                strategy: fs("strategy")?,
                epochs: fu("epochs")?,
                energy_j: fn_("energy_j")?,
                boot_energy_j: fn_("boot_energy_j")?,
            },
            "HysteresisHold" => Event::HysteresisHold {
                epoch: fu("epoch")?,
                desired: fs("desired")?,
                held: fs("held")?,
                saving_w: fn_("saving_w")?,
                transition_j: fn_("transition_j")?,
                reason: fs("reason")?,
            },
            "DeferralEnqueued" => Event::DeferralEnqueued {
                epoch: fu("epoch")?,
                mbps_min: fn_("mbps_min")?,
                queue_mbps_min: fn_("queue_mbps_min")?,
                slack_epochs: fu("slack_epochs")?,
            },
            "DeferralDrained" => Event::DeferralDrained {
                epoch: fu("epoch")?,
                drained_mbps_min: fn_("drained_mbps_min")?,
                dropped_mbps_min: fn_("dropped_mbps_min")?,
                queue_mbps_min: fn_("queue_mbps_min")?,
            },
            "DayCacheReport" => Event::DayCacheReport {
                cache: fs("cache")?,
                hits: fu("hits")?,
                misses: fu("misses")?,
                evictions: fu("evictions")?,
                bytes: fu("bytes")?,
            },
            other => return Err(format!("unknown event kind '{other}'")),
        })
    }
}

/// One journal line: append index + event.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    pub seq: u64,
    pub event: Event,
}

impl JournalEntry {
    /// Serializes to one JSON-lines record (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("t".to_string(), Json::Str(self.event.kind().to_string())),
        ];
        fields.extend(self.event.fields());
        Json::Obj(fields).to_string()
    }

    /// Parses one JSON-lines record.
    ///
    /// # Errors
    /// Fails on malformed JSON, a missing `seq`, or an unknown event.
    pub fn from_json_line(line: &str) -> Result<JournalEntry, String> {
        let v = Json::parse(line)?;
        let seq = v
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or("missing 'seq' field")?;
        Ok(JournalEntry {
            seq,
            event: Event::from_json(&v)?,
        })
    }
}

/// Events a journal holds before dropping new ones (a day sweep with
/// per-core summaries stays well under this; the cap only guards against
/// a runaway instrumentation loop).
pub const DEFAULT_JOURNAL_CAP: usize = 1 << 20;

/// Thread-safe in-memory event sink.
#[derive(Debug)]
pub struct Journal {
    entries: Mutex<Vec<JournalEntry>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_JOURNAL_CAP)
    }
}

impl Journal {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            entries: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cap,
        }
    }

    /// Appends an event, assigning it the next sequence number. Returns
    /// `true` if the event was stored; events past the capacity are
    /// counted in [`Journal::dropped`] instead and return `false` so the
    /// caller can surface the loss (the global sink bumps the
    /// `obs.journal.dropped` counter).
    pub fn record(&self, event: Event) -> bool {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap();
        if entries.len() < self.cap {
            entries.push(JournalEntry { seq, event });
            true
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }

    /// Events discarded because the cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out all entries in append order.
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.entries.lock().unwrap().clone()
    }

    /// Removes and returns all entries (sequence numbering continues).
    pub fn drain(&self) -> Vec<JournalEntry> {
        std::mem::take(&mut *self.entries.lock().unwrap())
    }

    /// Drops all entries and restarts sequence numbering.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Counts entries of one kind (`Event::kind` tag).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count()
    }

    /// Serializes the whole journal as JSON-lines.
    pub fn to_jsonl(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::with_capacity(entries.len() * 96);
        for e in entries.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes the journal as JSON-lines, returning the entry count. If
    /// events were dropped at the cap, warns on stderr — a silently
    /// truncated journal would fail `obsctl audit` in confusing ways.
    ///
    /// # Errors
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        let dropped = self.dropped();
        if dropped > 0 {
            eprintln!(
                "warning: journal dropped {dropped} event(s) at cap {}; {} is incomplete",
                self.cap,
                path.display()
            );
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let entries = self.snapshot();
        for e in &entries {
            writeln!(f, "{}", e.to_json_line())?;
        }
        f.flush()?;
        Ok(entries.len())
    }
}

/// Parses a JSON-lines journal dump (blank lines skipped).
///
/// # Errors
/// Reports the first malformed line with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<JournalEntry>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| JournalEntry::from_json_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::DayStart {
                strategy: "eprons".into(),
                epochs: 144,
            },
            Event::EpochStart {
                epoch: 3,
                minute: 30.0,
                search_load: 0.62,
                background_util: 0.25,
            },
            Event::OptimizerCandidate {
                k: "k=2".into(),
                total_w: 5120.5,
                p95_us: 61_250.0,
                feasible: true,
            },
            Event::CandidateFailed {
                k: "agg3".into(),
                error: "no feasible path for flow 7".into(),
            },
            Event::CandidatePruned {
                k: "agg0".into(),
                bound_w: 1356.8,
                incumbent_w: 1212.4,
            },
            Event::WarmStartApplied {
                epoch: 4,
                hint: "agg3".into(),
            },
            Event::OptimizerChoice {
                k: "k=2".into(),
                total_w: 5120.5,
                p95_us: 61_250.0,
                feasible: true,
                evaluated: 4,
            },
            Event::LpSolve {
                rows: 48,
                cols: 96,
                iters: 131,
                binding_constraints: vec!["cap[e12]".into(), "demand[f3]".into()],
            },
            Event::FreqTransition {
                policy: "eprons".into(),
                transitions: 812,
                decisions: 4096,
                final_ghz: 1.8,
            },
            Event::LinkStateChange {
                links_on: 2,
                links_off: 14,
                switches_on: 0,
                switches_off: 3,
            },
            Event::ConsolidationPass {
                algo: "greedy".into(),
                flows: 272,
                placed: 272,
                active_switches: 12,
            },
            Event::PodConsolidation {
                pods: 16,
                solved: 14,
                cached: 2,
                resolves: 1,
                rounds: 2,
                balanced: 1,
                fallback: false,
            },
            Event::ClockSkew {
                at_s: 1.25,
                last_s: 1.5,
            },
            Event::RunTag {
                scheme: "eprons".into(),
                consolidation: "k=1.5".into(),
                seed: 2018,
            },
            Event::EpochSnapshot(Snapshot {
                epoch: 3,
                minute: 30.0,
                strategy: "eprons".into(),
                choice: "k=2".into(),
                server_w: 4000.0,
                network_w: 1120.5,
                active_switches: 12,
                e2e_p95_us: 61_250.0,
                feasible: true,
                boot_energy_j: 2610.72,
            }),
            Event::FailureInjected {
                switch: 17,
                minute: 730.5,
                kind: "fail".into(),
            },
            Event::RepairOutcome {
                switch: 17,
                minute: 730.5,
                outcome: "repaired".into(),
                rerouted: 6,
                woken: 1,
                boot_energy_j: 2610.72,
            },
            Event::DegradedEpoch {
                epoch: 73,
                reason: "switch 17 failed mid-epoch; repair found no path".into(),
                fallback: "all-on-fallback".into(),
            },
            Event::SpanStart {
                id: 42,
                parent: 7,
                thread: 3,
                name: "stage.server_eval".into(),
                start_s: 0.0051234,
            },
            Event::SpanEnd {
                id: 42,
                name: "stage.server_eval".into(),
                elapsed_s: 0.0132,
                detail: "servers=16".into(),
            },
            Event::PowerSegment {
                epoch: 73,
                from_min: 730.0,
                to_min: 730.5,
                server_w: 4000.0,
                network_w: 1120.5,
            },
            Event::DayEnergy {
                strategy: "eprons".into(),
                epochs: 144,
                energy_j: 4.42e8,
                boot_energy_j: 5221.44,
            },
            Event::HysteresisHold {
                epoch: 74,
                desired: "agg2".into(),
                held: "agg1".into(),
                saving_w: 12.5,
                transition_j: 5221.44,
                reason: "payback".into(),
            },
            Event::DeferralEnqueued {
                epoch: 75,
                mbps_min: 1200.0,
                queue_mbps_min: 1800.0,
                slack_epochs: 6,
            },
            Event::DeferralDrained {
                epoch: 76,
                drained_mbps_min: 900.0,
                dropped_mbps_min: 0.0,
                queue_mbps_min: 900.0,
            },
            Event::DayCacheReport {
                cache: "core.daycache".into(),
                hits: 130,
                misses: 14,
                evictions: 2,
                bytes: 18_874_368,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_preserves_every_event() {
        let j = Journal::new();
        for e in sample_events() {
            j.record(e);
        }
        let text = j.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, j.snapshot());
    }

    #[test]
    fn seq_is_dense_and_ordered() {
        let j = Journal::new();
        for e in sample_events() {
            j.record(e);
        }
        for (i, e) in j.snapshot().iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn cap_drops_overflow_and_counts_it() {
        let j = Journal::with_capacity(2);
        for _ in 0..5 {
            j.record(Event::DayStart {
                strategy: "x".into(),
                epochs: 1,
            });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn parse_reports_malformed_line() {
        let err = parse_jsonl(
            "{\"seq\":0,\"t\":\"DayStart\",\"strategy\":\"a\",\"epochs\":1}\nnot json\n",
        )
        .unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err = JournalEntry::from_json_line("{\"seq\":0,\"t\":\"Nope\"}").unwrap_err();
        assert!(err.contains("unknown event kind"), "got: {err}");
    }

    #[test]
    fn escaped_error_strings_survive() {
        let j = Journal::new();
        j.record(Event::CandidateFailed {
            k: "k=8".into(),
            error: "path \"a\\b\"\nline2".into(),
        });
        let parsed = parse_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(parsed, j.snapshot());
    }

    #[test]
    fn concurrent_records_all_land() {
        let j = Journal::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..500 {
                        j.record(Event::EpochStart {
                            epoch: i,
                            minute: i as f64,
                            search_load: 0.5,
                            background_util: 0.1,
                        });
                    }
                });
            }
        });
        assert_eq!(j.len(), 4000);
        let mut seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..4000).collect::<Vec<_>>());
    }
}
