//! # eprons-obs — observability substrate
//!
//! Structured telemetry for the EPRONS reproduction: a metric registry
//! (counters, gauges, fixed-bucket histograms), RAII scoped timers, and a
//! typed **run journal** that records what the control loop decided and
//! why (candidate verdicts, LP solve stats, DVFS/link transitions,
//! per-epoch snapshots), exportable as JSON-lines.
//!
//! Telemetry is **disabled by default**: every instrumentation site first
//! checks [`enabled`] (one relaxed atomic load), so hot paths pay nothing
//! until a caller — typically a fig binary given `--journal <path>` —
//! turns it on.
//!
//! ```
//! use eprons_obs as obs;
//!
//! obs::set_enabled(true);
//! obs::record(obs::Event::DayStart { strategy: "eprons".into(), epochs: 144 });
//! {
//!     let _t = obs::Timer::scoped("lp.solve_s");
//! }
//! assert_eq!(obs::journal().count_kind("DayStart"), 1);
//! obs::reset();
//! obs::set_enabled(false);
//! ```
//!
//! Metric names follow `crate.subsystem.name` (e.g.
//! `net.consolidate.greedy_s`, `server.dvfs.transitions`); units are
//! suffixed (`_s`, `_w`, `_us`). The journal schema is documented on
//! [`Event`] and in README "Observability".

mod journal;
mod json;
mod metrics;
mod span;
mod timer;

pub use journal::{parse_jsonl, Event, Journal, JournalEntry, Snapshot, DEFAULT_JOURNAL_CAP};
pub use json::Json;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, DURATION_EDGES_S,
};
pub use span::{current_span_id, Span, NO_SPAN};
pub use timer::Timer;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide telemetry context: one registry + one journal.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub metrics: Registry,
    pub journal: Journal,
}

fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::default)
}

/// Whether telemetry collection is on. Instrumentation sites gate on this
/// so the disabled cost is a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The global metric registry. Usable regardless of [`enabled`] — gating
/// is the instrumentation site's job, which keeps the policy in one
/// place per call site instead of hidden here.
pub fn registry() -> &'static Registry {
    &global().metrics
}

/// The global run journal.
pub fn journal() -> &'static Journal {
    &global().journal
}

/// Appends `event` to the global journal if telemetry is enabled.
#[inline]
pub fn record(event: Event) {
    if enabled() {
        record_unguarded(event);
    }
}

/// Appends `event` without re-checking [`enabled`] and surfaces cap
/// overflow on the `obs.journal.dropped` counter. Used by [`record`] and
/// by span guards, which must emit their `SpanEnd` even if telemetry was
/// flipped off mid-span so starts and ends stay paired.
pub(crate) fn record_unguarded(event: Event) {
    if !journal().record(event) {
        registry().counter("obs.journal.dropped").inc();
    }
}

/// Clears the global journal and registry (the enabled flag is left
/// untouched). Intended for tests and for fig binaries that emit several
/// independent journals.
pub fn reset() {
    registry().reset();
    journal().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enable flag is process-wide; this is the only test in
    // the crate that touches it (others use instance-level structs).
    #[test]
    fn record_is_gated_by_enabled() {
        assert!(!enabled(), "telemetry must start disabled");
        record(Event::DayStart {
            strategy: "off".into(),
            epochs: 1,
        });
        assert_eq!(journal().len(), 0, "disabled record must be dropped");

        set_enabled(true);
        record(Event::DayStart {
            strategy: "on".into(),
            epochs: 1,
        });
        assert_eq!(journal().count_kind("DayStart"), 1);
        let _t = Timer::scoped("obs.test_s");
        drop(_t);
        assert_eq!(
            registry()
                .histogram("obs.test_s", DURATION_EDGES_S)
                .snapshot()
                .count,
            1
        );

        reset();
        set_enabled(false);
        assert_eq!(journal().len(), 0);
    }
}
