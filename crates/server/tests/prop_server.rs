//! Property-based tests for the VP engine, policies, and core simulator.

use eprons_num::Pmf;
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    simulate_core, ArrivalSpec, AvgVpPolicy, CoreSimConfig, FreqLadder, MaxFreqPolicy,
    MaxVpPolicy, ServiceModel, VpEngine,
};
use proptest::prelude::*;

fn random_service() -> impl Strategy<Value = ServiceModel> {
    (
        prop::collection::vec(0.01..1.0f64, 2..24),
        0.5e-3..3.0e-3f64, // origin of work values (Gc): 0.5–3 ms at f_max
        0.0..1.0e-3f64,    // fixed seconds
    )
        .prop_map(|(mass, origin, fixed)| {
            let step = origin / 4.0;
            ServiceModel::new(Pmf::from_masses(origin, step, mass), fixed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vp_is_monotone_in_frequency(service in random_service(),
                                   budgets in prop::collection::vec(1.0e-3..40.0e-3f64, 1..6)) {
        let mut engine = VpEngine::new(service);
        let deadlines: Vec<f64> = budgets.to_vec();
        let d = engine.decision(0.0, None, &deadlines);
        for i in 0..d.len() {
            let mut prev = f64::INFINITY;
            for step in 0..=15 {
                let f = 1.2 + 0.1 * step as f64;
                let v = d.vp(i, f);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v <= prev + 1e-9, "VP rose with frequency");
                prev = v;
            }
        }
    }

    #[test]
    fn vp_is_monotone_in_deadline(service in random_service(), f_idx in 0usize..16) {
        let mut engine = VpEngine::new(service);
        let f = 1.2 + 0.1 * f_idx as f64;
        let mut prev = f64::INFINITY;
        for ms in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let d = engine.decision(0.0, None, &[ms * 1.0e-3]);
            let v = d.vp(0, f);
            prop_assert!(v <= prev + 1e-9, "VP rose with a looser deadline");
            prev = v;
        }
    }

    #[test]
    fn avg_vp_bounded_by_max_vp(service in random_service(),
                                budgets in prop::collection::vec(1.0e-3..40.0e-3f64, 1..6)) {
        let mut engine = VpEngine::new(service);
        let d = engine.decision(0.0, None, &budgets);
        for step in 0..=15 {
            let f = 1.2 + 0.1 * step as f64;
            prop_assert!(d.avg_vp(f) <= d.max_vp(f) + 1e-12);
        }
    }

    #[test]
    fn eprons_frequency_never_exceeds_rubik(service in random_service(),
                                            budgets in prop::collection::vec(1.0e-3..40.0e-3f64, 1..6)) {
        let mut engine = VpEngine::new(service);
        let ladder = FreqLadder::paper_default();
        let d = engine.decision(0.0, None, &budgets);
        let fe = AvgVpPolicy::eprons().choose_frequency(0.0, &d, &ladder);
        let fr = MaxVpPolicy::rubik().choose_frequency(0.0, &d, &ladder);
        prop_assert!(fe <= fr + 1e-12, "EPRONS {fe} above Rubik {fr}");
    }

    #[test]
    fn coresim_conserves_requests_and_orders_time(
        service in random_service(),
        gaps in prop::collection::vec(0.1e-3..30.0e-3f64, 1..60),
        budget in 5.0e-3..50.0e-3f64,
        seed in any::<u64>()
    ) {
        let mut t = 0.0;
        let arrivals: Vec<ArrivalSpec> = gaps.iter().enumerate().map(|(i, &g)| {
            t += g;
            ArrivalSpec { arrival_s: t, budget_s: budget, tag: i as u64 }
        }).collect();
        let mut engine = VpEngine::new(service);
        let mut policy = AvgVpPolicy::eprons();
        let r = simulate_core(&mut policy, &mut engine, &arrivals, &CoreSimConfig::default(), seed);
        prop_assert_eq!(r.latencies.len(), arrivals.len());
        // Every tag completes exactly once.
        let mut tags = r.tags.clone();
        tags.sort();
        tags.dedup();
        prop_assert_eq!(tags.len(), arrivals.len());
        // Latencies are positive and at least the fixed time.
        for &l in &r.latencies {
            prop_assert!(l > 0.0);
        }
        // Busy time is bounded by the horizon.
        prop_assert!(r.busy_s <= r.sim_end_s + 1e-9);
    }

    #[test]
    fn energy_within_physical_bounds(
        service in random_service(),
        n in 1usize..40,
        seed in any::<u64>()
    ) {
        let arrivals: Vec<ArrivalSpec> = (0..n).map(|i| ArrivalSpec {
            arrival_s: i as f64 * 5.0e-3,
            budget_s: 25.0e-3,
            tag: i as u64,
        }).collect();
        let cfg = CoreSimConfig::default();
        let mut engine = VpEngine::new(service);
        let mut policy = MaxFreqPolicy;
        let r = simulate_core(&mut policy, &mut engine, &arrivals, &cfg, seed);
        let idle = cfg.power.core_idle_w();
        let busy_max = cfg.power.core_busy_w(cfg.ladder.max());
        let avg = r.avg_core_power_w();
        prop_assert!(avg >= idle - 1e-9, "below idle floor: {avg}");
        prop_assert!(avg <= busy_max + 1e-9, "above busy ceiling: {avg}");
    }

    #[test]
    fn slower_policies_use_less_energy_more_latency(
        service in random_service(),
        seed in any::<u64>()
    ) {
        // A fixed sparse trace with roomy budgets: any VP-based policy can
        // slow down, so its energy must not exceed MaxFreq's.
        let arrivals: Vec<ArrivalSpec> = (0..30).map(|i| ArrivalSpec {
            arrival_s: i as f64 * 0.05,
            budget_s: 60.0e-3,
            tag: i,
        }).collect();
        let cfg = CoreSimConfig::default();
        let run = |p: &mut dyn DvfsPolicy, svc: &ServiceModel| {
            let mut engine = VpEngine::new(svc.clone());
            simulate_core(p, &mut engine, &arrivals, &cfg, seed)
        };
        let fast = run(&mut MaxFreqPolicy, &service);
        let slow = run(&mut AvgVpPolicy::eprons(), &service);
        prop_assert!(slow.energy_j <= fast.energy_j + 1e-9);
        prop_assert!(slow.mean_latency().unwrap() >= fast.mean_latency().unwrap() - 1e-9);
    }
}
