//! Property-based tests for the VP engine, policies, and core simulator
//! (deterministic seeded cases via `eprons-proplite`).

use eprons_num::Pmf;
use eprons_proplite::{cases, Gen};
use eprons_server::policy::DvfsPolicy;
use eprons_server::{
    simulate_core, ArrivalSpec, AvgVpPolicy, CoreSimConfig, FreqLadder, MaxFreqPolicy, MaxVpPolicy,
    ServiceModel, VpEngine,
};

fn random_service(g: &mut Gen) -> ServiceModel {
    let len = g.usize_in(2, 23);
    let mass = g.vec_f64(len, 0.01, 1.0);
    let origin = g.f64_in(0.5e-3, 3.0e-3); // origin of work values (Gc): 0.5–3 ms at f_max
    let fixed = g.f64_in(0.0, 1.0e-3); // fixed seconds
    let step = origin / 4.0;
    ServiceModel::new(Pmf::from_masses(origin, step, mass), fixed)
}

fn budgets(g: &mut Gen) -> Vec<f64> {
    let len = g.usize_in(1, 5);
    g.vec_f64(len, 1.0e-3, 40.0e-3)
}

#[test]
fn vp_is_monotone_in_frequency() {
    cases(48, |g, case| {
        let service = random_service(g);
        let deadlines = budgets(g);
        let mut engine = VpEngine::new(service);
        let d = engine.decision(0.0, None, &deadlines);
        for i in 0..d.len() {
            let mut prev = f64::INFINITY;
            for step in 0..=15 {
                let f = 1.2 + 0.1 * step as f64;
                let v = d.vp(i, f);
                assert!((0.0..=1.0).contains(&v), "case {case}");
                assert!(v <= prev + 1e-9, "case {case}: VP rose with frequency");
                prev = v;
            }
        }
    });
}

#[test]
fn vp_is_monotone_in_deadline() {
    cases(48, |g, case| {
        let service = random_service(g);
        let f_idx = g.usize_in(0, 15);
        let mut engine = VpEngine::new(service);
        let f = 1.2 + 0.1 * f_idx as f64;
        let mut prev = f64::INFINITY;
        for ms in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let d = engine.decision(0.0, None, &[ms * 1.0e-3]);
            let v = d.vp(0, f);
            assert!(
                v <= prev + 1e-9,
                "case {case}: VP rose with a looser deadline"
            );
            prev = v;
        }
    });
}

#[test]
fn avg_vp_bounded_by_max_vp() {
    cases(48, |g, case| {
        let service = random_service(g);
        let b = budgets(g);
        let mut engine = VpEngine::new(service);
        let d = engine.decision(0.0, None, &b);
        for step in 0..=15 {
            let f = 1.2 + 0.1 * step as f64;
            assert!(d.avg_vp(f) <= d.max_vp(f) + 1e-12, "case {case}");
        }
    });
}

#[test]
fn eprons_frequency_never_exceeds_rubik() {
    cases(48, |g, case| {
        let service = random_service(g);
        let b = budgets(g);
        let mut engine = VpEngine::new(service);
        let ladder = FreqLadder::paper_default();
        let d = engine.decision(0.0, None, &b);
        let fe = AvgVpPolicy::eprons().choose_frequency(0.0, &d, &ladder);
        let fr = MaxVpPolicy::rubik().choose_frequency(0.0, &d, &ladder);
        assert!(
            fe <= fr + 1e-12,
            "case {case}: EPRONS {fe} above Rubik {fr}"
        );
    });
}

#[test]
fn coresim_conserves_requests_and_orders_time() {
    cases(48, |g, case| {
        let service = random_service(g);
        let n = g.usize_in(1, 59);
        let gaps = g.vec_f64(n, 0.1e-3, 30.0e-3);
        let budget = g.f64_in(5.0e-3, 50.0e-3);
        let seed = g.u64();
        let mut t = 0.0;
        let arrivals: Vec<ArrivalSpec> = gaps
            .iter()
            .enumerate()
            .map(|(i, &gap)| {
                t += gap;
                ArrivalSpec {
                    arrival_s: t,
                    budget_s: budget,
                    tag: i as u64,
                }
            })
            .collect();
        let mut engine = VpEngine::new(service);
        let mut policy = AvgVpPolicy::eprons();
        let r = simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            seed,
        );
        assert_eq!(r.latencies.len(), arrivals.len(), "case {case}");
        // Every tag completes exactly once.
        let mut tags = r.tags.clone();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), arrivals.len(), "case {case}");
        // Latencies are positive and at least the fixed time.
        for &l in &r.latencies {
            assert!(l > 0.0, "case {case}");
        }
        // Busy time is bounded by the horizon.
        assert!(r.busy_s <= r.sim_end_s + 1e-9, "case {case}");
    });
}

#[test]
fn energy_within_physical_bounds() {
    cases(48, |g, case| {
        let service = random_service(g);
        let n = g.usize_in(1, 39);
        let seed = g.u64();
        let arrivals: Vec<ArrivalSpec> = (0..n)
            .map(|i| ArrivalSpec {
                arrival_s: i as f64 * 5.0e-3,
                budget_s: 25.0e-3,
                tag: i as u64,
            })
            .collect();
        let cfg = CoreSimConfig::default();
        let mut engine = VpEngine::new(service);
        let mut policy = MaxFreqPolicy;
        let r = simulate_core(&mut policy, &mut engine, &arrivals, &cfg, seed);
        let idle = cfg.power.core_idle_w();
        let busy_max = cfg.power.core_busy_w(cfg.ladder.max());
        let avg = r.avg_core_power_w();
        assert!(avg >= idle - 1e-9, "case {case}: below idle floor: {avg}");
        assert!(
            avg <= busy_max + 1e-9,
            "case {case}: above busy ceiling: {avg}"
        );
    });
}

#[test]
fn slower_policies_use_less_energy_more_latency() {
    cases(48, |g, case| {
        let service = random_service(g);
        let seed = g.u64();
        // A fixed sparse trace with roomy budgets: any VP-based policy can
        // slow down, so its energy must not exceed MaxFreq's.
        let arrivals: Vec<ArrivalSpec> = (0..30)
            .map(|i| ArrivalSpec {
                arrival_s: i as f64 * 0.05,
                budget_s: 60.0e-3,
                tag: i,
            })
            .collect();
        let cfg = CoreSimConfig::default();
        let run = |p: &mut dyn DvfsPolicy, svc: &ServiceModel| {
            let mut engine = VpEngine::new(svc.clone());
            simulate_core(p, &mut engine, &arrivals, &cfg, seed)
        };
        let fast = run(&mut MaxFreqPolicy, &service);
        let slow = run(&mut AvgVpPolicy::eprons(), &service);
        assert!(slow.energy_j <= fast.energy_j + 1e-9, "case {case}");
        assert!(
            slow.mean_latency().unwrap() >= fast.mean_latency().unwrap() - 1e-9,
            "case {case}"
        );
    });
}
