//! Requests with variable per-request deadlines.
//!
//! Unlike prior work that assumes one fixed deadline for every request, the
//! EPRONS deadline is *variable*: the server compute budget plus the
//! request's measured network slack ("EPRONS-Server module adds the
//! different network slack of each search request to its compute budget",
//! §IV-C; only request-direction slack is used, conservatively).

/// One entry of an arrival trace fed to the core simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Absolute arrival time at the server, seconds.
    pub arrival_s: f64,
    /// Compute budget for this request: server latency budget plus any
    /// network-provided slack (seconds). The absolute deadline is
    /// `arrival_s + budget_s`.
    pub budget_s: f64,
    /// Caller-defined identity carried through to the results (e.g. the
    /// query a sub-request belongs to). Not interpreted by the simulator.
    pub tag: u64,
}

impl ArrivalSpec {
    /// The absolute server-side deadline.
    #[inline]
    pub fn deadline(&self) -> f64 {
        self.arrival_s + self.budget_s
    }
}

/// Builds a deadline budget from the SLA split and a measured request-path
/// network latency: `server_budget + max(0, network_budget − measured)`.
/// This is the slack transfer at the heart of EPRONS (§IV).
pub fn budget_with_network_slack(
    server_budget_s: f64,
    network_budget_s: f64,
    measured_request_latency_s: f64,
) -> f64 {
    server_budget_s + (network_budget_s - measured_request_latency_s).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_arrival_plus_budget() {
        let a = ArrivalSpec {
            arrival_s: 10.0,
            budget_s: 0.025,
            tag: 7,
        };
        assert!((a.deadline() - 10.025).abs() < 1e-12);
    }

    #[test]
    fn fast_network_grants_slack() {
        // 25 ms server + 5 ms network budget; request took 1 ms in the
        // network → 4 ms slack lands on the server budget.
        let b = budget_with_network_slack(25.0e-3, 5.0e-3, 1.0e-3);
        assert!((b - 29.0e-3).abs() < 1e-12);
    }

    #[test]
    fn slow_network_grants_no_negative_slack() {
        // Network overshot its budget: the server budget is *not* reduced
        // ("to be more conservative, we only use the request slack").
        let b = budget_with_network_slack(25.0e-3, 5.0e-3, 9.0e-3);
        assert!((b - 25.0e-3).abs() < 1e-12);
    }
}
