//! Process-wide memo over [`simulate_core`] — the per-ISN server
//! evaluation.
//!
//! One day-scoped cluster evaluation runs the DVFS event loop once per
//! server per candidate per epoch, yet across a day most of those runs
//! repeat: with demand quantized onto the warm-start grid, adjacent
//! epochs at the same operating point feed each server the *identical*
//! arrival trace, config, and seed. `simulate_core` is a pure function
//! of those inputs (the only RNG is seeded from `seed`; the engine's
//! convolution caches are bit-invisible by the [`crate::vp`] contract),
//! so its result can be memoized on an exact-bit fingerprint and
//! returned by reference — a hit is bit-identical to a fresh run by
//! construction.
//!
//! The memo is **disabled by default** and switched on by the
//! day-scoped controller: hits skip the event loop's side telemetry
//! (`server.dvfs.transitions`, `FreqTransition` events), which is only
//! acceptable when the caller opted into incremental evaluation.
//! `eprons-core` layers its own `core.serveval.{hits,misses}` counters
//! on top of the returned hit flag.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::coresim::{simulate_core, CoreSimConfig, CoreSimResult};
use crate::policy::DvfsPolicy;
use crate::request::ArrivalSpec;
use crate::vp::VpEngine;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct MemoState {
    map: HashMap<u64, Arc<CoreSimResult>>,
    hits: u64,
    misses: u64,
    bytes: usize,
}

static MEMO: OnceLock<Mutex<MemoState>> = OnceLock::new();

fn memo() -> &'static Mutex<MemoState> {
    MEMO.get_or_init(|| {
        Mutex::new(MemoState {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            bytes: 0,
        })
    })
}

/// Approximate heap footprint of one cached result (the four per-request
/// vectors dominate).
fn result_bytes(r: &CoreSimResult) -> usize {
    std::mem::size_of::<CoreSimResult>()
        + (r.latencies.capacity() + r.budgets.capacity() + r.arrivals.capacity()) * 8
        + r.tags.capacity() * 8
}

/// Turns the server-evaluation memo on or off (process-wide). Off, the
/// memoized entry point degenerates to a plain [`simulate_core`] call
/// with full telemetry.
pub fn set_serveval_memo_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the server-evaluation memo is currently on.
pub fn serveval_memo_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Drops every memoized result and zeroes the hit/miss statistics. The
/// day controller clears at day start so the statistics — and the
/// "once per distinct operating point per *day*" bound — are per-day.
pub fn clear_serveval_memo() {
    let mut m = memo().lock().unwrap_or_else(|e| e.into_inner());
    m.map.clear();
    m.hits = 0;
    m.misses = 0;
    m.bytes = 0;
}

/// Point-in-time statistics of the server-evaluation memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServevalMemoStats {
    /// Distinct operating points held.
    pub entries: usize,
    /// Lookups served from the memo since the last clear.
    pub hits: u64,
    /// Lookups that ran the event loop since the last clear.
    pub misses: u64,
    /// Approximate bytes held by the cached results.
    pub bytes: u64,
}

/// Current memo statistics.
pub fn serveval_memo_stats() -> ServevalMemoStats {
    let m = memo().lock().unwrap_or_else(|e| e.into_inner());
    ServevalMemoStats {
        entries: m.map.len(),
        hits: m.hits,
        misses: m.misses,
        bytes: m.bytes as u64,
    }
}

/// The memo key: an exact-bit hash over everything [`simulate_core`]
/// reads — the arrival trace (times, budgets, tags), the sim config
/// (ladder, power model, decision overhead, measurement window), the
/// work-sampling seed, and `extern_fp`, the caller's fingerprint of the
/// inputs the signature cannot see (service model and policy identity;
/// `eprons-core` hashes the scheme plus its TimeTrader target into it).
pub fn serveval_key(
    extern_fp: u64,
    arrivals: &[ArrivalSpec],
    cfg: &CoreSimConfig,
    seed: u64,
) -> u64 {
    let mut h = DefaultHasher::new();
    extern_fp.hash(&mut h);
    seed.hash(&mut h);
    cfg.ladder.len().hash(&mut h);
    for i in 0..cfg.ladder.len() {
        cfg.ladder.at(i).to_bits().hash(&mut h);
    }
    cfg.power.leak_w.to_bits().hash(&mut h);
    cfg.power.cubic_coeff.to_bits().hash(&mut h);
    cfg.power.idle_w.to_bits().hash(&mut h);
    cfg.power.cores.hash(&mut h);
    cfg.power.static_w.to_bits().hash(&mut h);
    cfg.decision_overhead_s.to_bits().hash(&mut h);
    cfg.measure_from_s.to_bits().hash(&mut h);
    arrivals.len().hash(&mut h);
    for a in arrivals {
        a.arrival_s.to_bits().hash(&mut h);
        a.budget_s.to_bits().hash(&mut h);
        a.tag.hash(&mut h);
    }
    h.finish()
}

/// [`simulate_core`] behind the process-wide memo. Returns the result
/// and whether it was served from the memo. With the memo disabled the
/// run is never cached and the flag is always `false`.
///
/// The caller owes the same preconditions as [`simulate_core`] plus one
/// more: `extern_fp` must change whenever the service model behind
/// `engine` or the behavior of `policy` changes, or a stale result will
/// be served (see [`serveval_key`]).
pub fn simulate_core_memoized(
    policy: &mut dyn DvfsPolicy,
    engine: &mut VpEngine,
    arrivals: &[ArrivalSpec],
    cfg: &CoreSimConfig,
    seed: u64,
    extern_fp: u64,
) -> (Arc<CoreSimResult>, bool) {
    if !serveval_memo_enabled() {
        return (
            Arc::new(simulate_core(policy, engine, arrivals, cfg, seed)),
            false,
        );
    }
    let key = serveval_key(extern_fp, arrivals, cfg, seed);
    {
        let mut m = memo().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = m.map.get(&key).cloned() {
            m.hits += 1;
            return (hit, true);
        }
        m.misses += 1;
    }
    // Computed outside the lock: distinct keys may simulate in parallel,
    // and a double-compute race on the same key inserts bit-identical
    // values either way (pure function of the key's preimage).
    let r = Arc::new(simulate_core(policy, engine, arrivals, cfg, seed));
    let mut m = memo().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(prior) = m.map.get(&key) {
        return (Arc::clone(prior), false);
    }
    m.bytes += result_bytes(&r);
    m.map.insert(key, Arc::clone(&r));
    (r, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AvgVpPolicy;
    use crate::service::ServiceModel;
    use crate::vp::service_fingerprint;
    use eprons_sim::SimRng;

    fn arrivals() -> Vec<ArrivalSpec> {
        let mut rng = SimRng::seed_from_u64(7);
        crate::coresim::poisson_trace(&mut rng, 60.0, 5.0, 0.030)
    }

    fn service() -> ServiceModel {
        let mut rng = SimRng::seed_from_u64(3);
        ServiceModel::synthetic_xapian(&mut rng, 5_000, 80)
    }

    /// Memoized hits return the bit-identical result a fresh run
    /// produces, and the stats ledger adds up.
    #[test]
    fn hit_is_bit_identical_and_counted() {
        let svc = service();
        let fp = service_fingerprint(&svc);
        let cfg = CoreSimConfig::default();
        let arr = arrivals();
        let run = |on: bool| {
            set_serveval_memo_enabled(on);
            let mut engine = VpEngine::new(svc.clone());
            let mut policy = AvgVpPolicy::eprons();
            simulate_core_memoized(&mut policy, &mut engine, &arr, &cfg, 11, fp)
        };
        clear_serveval_memo();
        let (cold, h0) = run(false);
        assert!(!h0);
        let (miss, h1) = run(true);
        let (hit, h2) = run(true);
        set_serveval_memo_enabled(false);
        assert!(!h1 && h2);
        assert!(Arc::ptr_eq(&miss, &hit), "hit must share the cached run");
        assert_eq!(cold.energy_j.to_bits(), hit.energy_j.to_bits());
        assert_eq!(cold.latencies, hit.latencies);
        let s = serveval_memo_stats();
        assert_eq!((s.entries, s.hits, s.misses), (1, 1, 1));
        assert!(s.bytes > 0);
        clear_serveval_memo();
        let s = serveval_memo_stats();
        assert_eq!((s.entries, s.hits, s.misses, s.bytes), (0, 0, 0, 0));
    }

    /// Any perturbation of the key's preimage must miss: different seed,
    /// different budget, different extern fingerprint.
    #[test]
    fn key_separates_operating_points() {
        let cfg = CoreSimConfig::default();
        let arr = arrivals();
        let base = serveval_key(1, &arr, &cfg, 5);
        assert_ne!(base, serveval_key(1, &arr, &cfg, 6));
        assert_ne!(base, serveval_key(2, &arr, &cfg, 5));
        let mut shifted = arr.clone();
        shifted[0].budget_s += 1e-9;
        assert_ne!(base, serveval_key(1, &shifted, &cfg, 5));
        let wider = CoreSimConfig {
            measure_from_s: cfg.measure_from_s + 1.0,
            ..cfg.clone()
        };
        assert_ne!(base, serveval_key(1, &arr, &wider, 5));
    }
}
