//! The frequency-dependent service model.
//!
//! Following Rubik (which the paper adopts in footnote 1), a request's
//! service time at core frequency `f` decomposes into a
//! frequency-independent part (memory stalls, I/O) and a scalable part:
//!
//! ```text
//! t(f) = t_fixed + work / f       (work in giga-cycles, f in GHz)
//! ```
//!
//! The *work* is random with a measured distribution; the paper measures
//! Xapian over a Wikipedia index (100 K queries, §V-A). Our synthetic
//! equivalent is log-normal (see DESIGN.md), converted to a work PMF here.

use eprons_num::Pmf;
use eprons_sim::SimRng;

/// Service model: fixed time plus PMF-distributed scalable work.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// Distribution of scalable work in giga-cycles.
    work_pmf: Pmf,
    /// Frequency-independent seconds per request.
    fixed_s: f64,
}

impl ServiceModel {
    /// Builds a model from a work PMF (giga-cycles) and fixed time.
    ///
    /// # Panics
    /// Panics if `fixed_s` is negative.
    pub fn new(work_pmf: Pmf, fixed_s: f64) -> Self {
        assert!(fixed_s >= 0.0, "fixed service time cannot be negative");
        ServiceModel { work_pmf, fixed_s }
    }

    /// Builds a model from service-*time* samples measured at `f_max`,
    /// treating a fraction `fixed_fraction` of the *mean* service time as
    /// frequency-independent. `bins` controls PMF resolution.
    ///
    /// # Panics
    /// Panics on empty samples, `fixed_fraction ∉ [0,1)`, or `bins == 0`.
    pub fn from_time_samples(
        samples_at_fmax_s: &[f64],
        fixed_fraction: f64,
        f_max_ghz: f64,
        bins: usize,
    ) -> Self {
        assert!(!samples_at_fmax_s.is_empty(), "need samples");
        assert!(
            (0.0..1.0).contains(&fixed_fraction),
            "fixed fraction must be in [0,1)"
        );
        assert!(bins > 0, "need at least one PMF bin");
        let mean: f64 = samples_at_fmax_s.iter().sum::<f64>() / samples_at_fmax_s.len() as f64;
        let fixed_s = fixed_fraction * mean;
        // Scalable work of each sample, in giga-cycles.
        let works: Vec<f64> = samples_at_fmax_s
            .iter()
            .map(|&t| ((t - fixed_s).max(0.0)) * f_max_ghz)
            .collect();
        let max_w = works.iter().cloned().fold(0.0, f64::max).max(1e-9);
        let step = (max_w / bins as f64).max(1e-9);
        ServiceModel {
            work_pmf: Pmf::from_samples(&works, step),
            fixed_s,
        }
    }

    /// A synthetic Xapian-like model (see DESIGN.md): log-normal service
    /// time with ≈4 ms median and σ = 0.5 at 2.7 GHz, 20 % fixed.
    /// `n_samples` controls the fidelity of the derived PMF.
    pub fn synthetic_xapian(rng: &mut SimRng, n_samples: usize, bins: usize) -> Self {
        let samples: Vec<f64> = (0..n_samples.max(2))
            .map(|_| rng.lognormal((4.0e-3f64).ln(), 0.5).min(60.0e-3))
            .collect();
        Self::from_time_samples(&samples, 0.2, 2.7, bins)
    }

    /// The scalable-work distribution (giga-cycles).
    #[inline]
    pub fn work_pmf(&self) -> &Pmf {
        &self.work_pmf
    }

    /// Frequency-independent seconds.
    #[inline]
    pub fn fixed_s(&self) -> f64 {
        self.fixed_s
    }

    /// Service time of a request with `work` giga-cycles at `f_ghz`.
    ///
    /// # Panics
    /// Panics if `f_ghz <= 0`.
    pub fn service_time(&self, work: f64, f_ghz: f64) -> f64 {
        assert!(f_ghz > 0.0, "frequency must be positive");
        self.fixed_s + work / f_ghz
    }

    /// Mean service time at `f_ghz`.
    pub fn mean_service_time(&self, f_ghz: f64) -> f64 {
        self.service_time(self.work_pmf.mean(), f_ghz)
    }

    /// Samples one request's scalable work (giga-cycles).
    pub fn sample_work(&self, rng: &mut SimRng) -> f64 {
        self.work_pmf.sample_with(rng.uniform()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_formula() {
        let m = ServiceModel::new(Pmf::delta(2.7e-3, 1.0e-4), 1.0e-3);
        // 2.7e-3 Gcycles at 2.7 GHz = 1 ms; plus 1 ms fixed.
        assert!((m.service_time(2.7e-3, 2.7) - 2.0e-3).abs() < 1e-12);
        // At 1.35 GHz the scalable part doubles.
        assert!((m.service_time(2.7e-3, 1.35) - 3.0e-3).abs() < 1e-12);
    }

    #[test]
    fn slowdown_only_affects_scalable_part() {
        let m = ServiceModel::new(Pmf::delta(5.4e-3, 1.0e-4), 2.0e-3);
        let t_fast = m.service_time(5.4e-3, 2.7);
        let t_slow = m.service_time(5.4e-3, 1.2);
        // Fixed part is unchanged; scalable part scales by 2.7/1.2.
        assert!((t_fast - (2.0e-3 + 2.0e-3)).abs() < 1e-12);
        assert!((t_slow - (2.0e-3 + 4.5e-3)).abs() < 1e-12);
    }

    #[test]
    fn from_time_samples_round_trip() {
        // All requests take exactly 10 ms at 2.7 GHz, 20% fixed.
        let samples = vec![10.0e-3; 100];
        let m = ServiceModel::from_time_samples(&samples, 0.2, 2.7, 64);
        assert!((m.fixed_s() - 2.0e-3).abs() < 1e-9);
        // Work = 8 ms × 2.7 GHz = 21.6 Gcycles; service at fmax ≈ 10 ms.
        assert!((m.mean_service_time(2.7) - 10.0e-3).abs() < 1e-4);
        // At half frequency the scalable part doubles: 2 + 16 = 18 ms.
        assert!((m.mean_service_time(1.35) - 18.0e-3).abs() < 2e-4);
    }

    #[test]
    fn synthetic_xapian_statistics() {
        let mut rng = SimRng::seed_from_u64(11);
        let m = ServiceModel::synthetic_xapian(&mut rng, 20_000, 256);
        let mean = m.mean_service_time(2.7);
        // Log-normal(ln 4ms, 0.5) has mean 4ms·e^{0.125} ≈ 4.53 ms.
        assert!(
            (3.5e-3..6.0e-3).contains(&mean),
            "unexpected mean service time {mean}"
        );
        assert!(m.fixed_s() > 0.0);
        // The tail must be heavy: p95 of work well above the mean.
        let p95 = m.work_pmf().quantile(0.95);
        assert!(p95 > 1.5 * m.work_pmf().mean());
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = SimRng::seed_from_u64(12);
        let m = ServiceModel::synthetic_xapian(&mut rng, 10_000, 128);
        let n = 20_000;
        let mean_sampled: f64 = (0..n).map(|_| m.sample_work(&mut rng)).sum::<f64>() / n as f64;
        let mean_pmf = m.work_pmf().mean();
        assert!(
            (mean_sampled - mean_pmf).abs() / mean_pmf < 0.05,
            "sampled {mean_sampled} vs pmf {mean_pmf}"
        );
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let m = ServiceModel::new(Pmf::delta(1.0, 0.1), 0.0);
        m.service_time(1.0, 0.0);
    }
}
