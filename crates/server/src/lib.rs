//! EPRONS-Server (paper §III) and the baseline server power-management
//! schemes it is evaluated against.
//!
//! The server side of EPRONS is a per-request DVFS scheme: at every request
//! arrival and departure instant it picks the lowest CPU frequency such
//! that the **average** deadline-violation probability (VP) over all queued
//! requests stays within the SLA miss budget (5 % for a 95th-percentile
//! SLA) — in contrast to Rubik, which bounds the **maximum** VP and
//! therefore over-provisions every request but the limiting one (Fig. 4).
//!
//! * [`request`] — requests with per-request deadlines (server budget plus
//!   measured network slack — the deadline is *variable*, §III).
//! * [`freq`] — the DVFS ladder (1.2–2.7 GHz in 100 MHz steps, §V-A).
//! * [`service`] — the frequency-dependent service model
//!   `t(f) = t_fixed + work / f` ("taking into account the frequency
//!   independent part of the execution", paper footnote 1 citing Rubik).
//! * [`power`] — the measured Xeon E5-2697v2 core power curve (1.4 W at
//!   1.2 GHz, 4.4 W at 2.7 GHz), 12 cores, 20 W static per server.
//! * [`vp`] — the violation-probability engine: equivalent-request
//!   convolutions (cached, FFT-backed), CCDF queries (eq. 1), conditioning
//!   of the in-flight request on completed cycles (§III-B).
//! * [`policy`] — [`policy::MaxFreqPolicy`] (no power management),
//!   [`policy::MaxVpPolicy`] (Rubik / Rubik+), [`policy::AvgVpPolicy`]
//!   (EPRONS-Server), [`policy::TimeTraderPolicy`] (5 s feedback).
//! * [`coresim`] — the per-core discrete-event simulator that drives a
//!   policy with an arrival trace and accounts latency and energy.
//! * [`memo`] — an opt-in process-wide memo over the core simulator,
//!   keyed on an exact-bit fingerprint of its inputs (the day-scoped
//!   incremental evaluation path).
//! * [`multicore`] — the shared-queue 12-core variant, used to validate
//!   that the per-core model is a conservative approximation.

#![warn(missing_docs)]

pub mod coresim;
pub mod freq;
pub mod memo;
pub mod multicore;
pub mod policy;
pub mod power;
pub mod request;
pub mod service;
pub mod vp;

pub use coresim::{simulate_core, CoreSimConfig, CoreSimResult};
pub use freq::FreqLadder;
pub use memo::{
    clear_serveval_memo, serveval_memo_enabled, serveval_memo_stats, set_serveval_memo_enabled,
    simulate_core_memoized, ServevalMemoStats,
};
pub use multicore::{simulate_multicore, MultiCoreResult};
pub use policy::{
    AvgVpPolicy, DeepSleepPolicy, DvfsPolicy, MaxFreqPolicy, MaxVpPolicy, TimeTraderPolicy,
};
pub use power::CpuPowerModel;
pub use request::ArrivalSpec;
pub use service::ServiceModel;
pub use vp::{clear_equiv_cache, equiv_cache_stats, service_fingerprint, VpEngine};
