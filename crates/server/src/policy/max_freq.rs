//! The "no power management" baseline: always run at `f_max`.

use crate::freq::FreqLadder;
use crate::vp::Decision;

use super::DvfsPolicy;

/// Runs every request at the maximum frequency.
#[derive(Debug, Clone, Default)]
pub struct MaxFreqPolicy;

impl DvfsPolicy for MaxFreqPolicy {
    fn name(&self) -> &'static str {
        "no-power-management"
    }

    fn needs_model(&self) -> bool {
        false
    }

    fn choose_frequency(&mut self, _now: f64, _decision: &Decision, ladder: &FreqLadder) -> f64 {
        ladder.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceModel;
    use crate::vp::VpEngine;
    use eprons_num::Pmf;

    #[test]
    fn always_max() {
        let mut p = MaxFreqPolicy;
        let ladder = FreqLadder::paper_default();
        let mut e = VpEngine::new(ServiceModel::new(Pmf::delta(1.0, 0.1), 0.0));
        let d = e.decision(0.0, None, &[1.0]);
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 2.7);
        let empty = e.decision(0.0, None, &[]);
        assert_eq!(p.choose_frequency(5.0, &empty, &ladder), 2.7);
    }
}
