//! Rubik-style frequency selection: bound the **maximum** violation
//! probability of the queued requests.
//!
//! "The frequency setting is then determined by the request with the least
//! latency slack. While satisfying latency constraint, this conservative
//! frequency selection does not fully exploit the energy saving
//! opportunities" (§III). Run with slack-free deadlines it is *Rubik*;
//! with network-slack deadlines it is *Rubik+*.

use crate::freq::FreqLadder;
use crate::vp::Decision;

use super::DvfsPolicy;

/// Lowest frequency whose worst-case per-request VP meets the target.
#[derive(Debug, Clone)]
pub struct MaxVpPolicy {
    /// SLA miss budget (0.05 for a 95th-percentile SLA).
    pub target: f64,
    /// Reported name ("rubik" or "rubik+"; the deadline feed decides which
    /// it actually is).
    pub label: &'static str,
}

impl MaxVpPolicy {
    /// Rubik at the paper's 5 % miss budget.
    pub fn rubik() -> Self {
        MaxVpPolicy {
            target: 0.05,
            label: "rubik",
        }
    }

    /// Rubik+ at the paper's 5 % miss budget (pair with slack-aware
    /// deadlines in the simulator).
    pub fn rubik_plus() -> Self {
        MaxVpPolicy {
            target: 0.05,
            label: "rubik+",
        }
    }
}

impl DvfsPolicy for MaxVpPolicy {
    fn name(&self) -> &'static str {
        self.label
    }

    fn choose_frequency(&mut self, _now: f64, decision: &Decision, ladder: &FreqLadder) -> f64 {
        if decision.is_empty() {
            return ladder.min();
        }
        ladder.lowest_satisfying(|f| decision.max_vp(f) <= self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceModel;
    use crate::vp::VpEngine;
    use eprons_num::Pmf;

    fn engine() -> VpEngine {
        // Deterministic 2.7e-3 Gc per request (1 ms at 2.7 GHz).
        VpEngine::new(ServiceModel::new(Pmf::delta(2.7e-3, 1.0e-5), 0.0))
    }

    #[test]
    fn tight_deadline_forces_high_frequency() {
        let mut p = MaxVpPolicy::rubik();
        let ladder = FreqLadder::paper_default();
        let mut e = engine();
        // 2.7e-3 Gc due in 1.01 ms → needs ≈ 2.67 GHz → 2.7.
        let d = e.decision(0.0, None, &[1.01e-3]);
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 2.7);
    }

    #[test]
    fn loose_deadline_allows_low_frequency() {
        let mut p = MaxVpPolicy::rubik();
        let ladder = FreqLadder::paper_default();
        let mut e = engine();
        // 2.7e-3 Gc due in 10 ms → 0.27 GHz would do; ladder floor is 1.2.
        let d = e.decision(0.0, None, &[10.0e-3]);
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 1.2);
    }

    #[test]
    fn limiting_request_dictates() {
        let mut p = MaxVpPolicy::rubik();
        let ladder = FreqLadder::paper_default();
        let mut e = engine();
        // First request roomy, second tight: 5.4e-3 Gc total due in
        // 2.2 ms → needs ≥ 2.46 GHz → 2.5.
        let d = e.decision(0.0, None, &[10.0e-3, 2.2e-3]);
        let f = p.choose_frequency(0.0, &d, &ladder);
        assert!((f - 2.5).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn empty_queue_idles_at_min() {
        let mut p = MaxVpPolicy::rubik();
        let ladder = FreqLadder::paper_default();
        let mut e = engine();
        let d = e.decision(0.0, None, &[]);
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 1.2);
    }

    #[test]
    fn impossible_deadline_runs_flat_out() {
        let mut p = MaxVpPolicy::rubik();
        let ladder = FreqLadder::paper_default();
        let mut e = engine();
        let d = e.decision(0.0, None, &[0.1e-3]); // needs 27 GHz
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 2.7);
    }
}
