//! A DynSleep-style deep-sleep extension policy.
//!
//! The paper's related work (§I) contrasts DVFS schemes with *sleeping*
//! schemes: "DynSleep \[11\] and SleepScale \[12\] postpone the servicing of
//! requests and cause a longer idle period so that servers can enter into
//! their deepest sleep states." The paper evaluates only DVFS baselines;
//! this policy is the natural extension: idle cores drop into a deep sleep
//! state (near-zero draw) and pay a wake latency on the first request of
//! each busy period, with Rubik-style max-VP frequency selection while
//! awake. The wake latency flows into the VP model as extra
//! frequency-independent time, so deadlines keep being honored
//! statistically.
//!
//! At low loads sleeping beats pure DVFS (idle dominates); at high loads
//! the wake penalty and the higher awake frequency erode the win — the
//! classic sleep-vs-scale crossover that SleepScale studies.

use crate::freq::FreqLadder;
use crate::vp::Decision;

use super::DvfsPolicy;

/// Deep sleep while idle + max-VP DVFS while busy.
#[derive(Debug, Clone)]
pub struct DeepSleepPolicy {
    /// SLA miss budget (0.05 for a 95th-percentile SLA).
    pub target: f64,
    /// Core draw in the deep sleep state, watts (PowerNap-class ≈0.1 W).
    pub sleep_power_w: f64,
    /// Wake latency charged to the first request of a busy period.
    pub wake_latency: f64,
}

impl DeepSleepPolicy {
    /// Defaults: 5 % miss budget, 0.15 W sleeping, 1 ms wake.
    pub fn new() -> Self {
        DeepSleepPolicy {
            target: 0.05,
            sleep_power_w: 0.15,
            wake_latency: 1.0e-3,
        }
    }
}

impl Default for DeepSleepPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl DvfsPolicy for DeepSleepPolicy {
    fn name(&self) -> &'static str {
        "deep-sleep"
    }

    fn idle_power_w(&self) -> Option<f64> {
        Some(self.sleep_power_w)
    }

    fn wake_latency_s(&self) -> f64 {
        self.wake_latency
    }

    fn choose_frequency(&mut self, _now: f64, decision: &Decision, ladder: &FreqLadder) -> f64 {
        if decision.is_empty() {
            return ladder.min();
        }
        ladder.lowest_satisfying(|f| decision.max_vp(f) <= self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coresim::{simulate_core, CoreSimConfig};
    use crate::policy::MaxVpPolicy;
    use crate::request::ArrivalSpec;
    use crate::service::ServiceModel;
    use crate::vp::VpEngine;
    use eprons_sim::SimRng;

    fn service() -> ServiceModel {
        let mut rng = SimRng::seed_from_u64(60);
        ServiceModel::synthetic_xapian(&mut rng, 15_000, 128)
    }

    fn sparse_trace(n: usize, gap_s: f64, budget: f64) -> Vec<ArrivalSpec> {
        (0..n)
            .map(|i| ArrivalSpec {
                arrival_s: i as f64 * gap_s,
                budget_s: budget,
                tag: i as u64,
            })
            .collect()
    }

    #[test]
    fn sleeping_beats_dvfs_at_low_load() {
        let svc = service();
        let cfg = CoreSimConfig::default();
        // Very sparse arrivals: the core is idle most of the time.
        let arrivals = sparse_trace(40, 0.5, 30.0e-3);
        let mut engine1 = VpEngine::new(svc.clone());
        let mut sleep = DeepSleepPolicy::new();
        let rs = simulate_core(&mut sleep, &mut engine1, &arrivals, &cfg, 61);
        let mut engine2 = VpEngine::new(svc);
        let mut dvfs = MaxVpPolicy::rubik();
        let rd = simulate_core(&mut dvfs, &mut engine2, &arrivals, &cfg, 61);
        assert!(
            rs.energy_j < rd.energy_j,
            "sleeping ({:.1} J) must beat DVFS ({:.1} J) at ~1% load",
            rs.energy_j,
            rd.energy_j
        );
    }

    #[test]
    fn wake_latency_shows_up_in_isolated_requests() {
        let svc = service();
        let cfg = CoreSimConfig::default();
        let arrivals = sparse_trace(20, 1.0, 30.0e-3);
        let run = |wake: f64, seed: u64| {
            let mut engine = VpEngine::new(svc.clone());
            let mut p = DeepSleepPolicy {
                wake_latency: wake,
                ..DeepSleepPolicy::new()
            };
            simulate_core(&mut p, &mut engine, &arrivals, &cfg, seed)
                .mean_latency()
                .unwrap()
        };
        let without = run(0.0, 62);
        let with = run(5.0e-3, 62);
        // Every request is a busy-period head here, so the mean shifts by
        // the full wake latency.
        assert!(
            (with - without - 5.0e-3).abs() < 0.5e-3,
            "wake penalty not applied: {without} vs {with}"
        );
    }

    #[test]
    fn deadlines_still_met_with_wake_penalty() {
        let svc = service();
        let cfg = CoreSimConfig::default();
        let arrivals = sparse_trace(200, 0.02, 30.0e-3);
        let mut engine = VpEngine::new(svc);
        let mut p = DeepSleepPolicy::new();
        let r = simulate_core(&mut p, &mut engine, &arrivals, &cfg, 63);
        assert!(
            r.miss_rate().unwrap() <= 0.08,
            "miss rate {} too high",
            r.miss_rate().unwrap()
        );
    }

    #[test]
    fn dvfs_policies_report_no_sleep_hooks() {
        let p = MaxVpPolicy::rubik();
        assert_eq!(p.idle_power_w(), None);
        assert_eq!(p.wake_latency_s(), 0.0);
        let s = DeepSleepPolicy::new();
        assert_eq!(s.idle_power_w(), Some(0.15));
        assert!(s.wake_latency_s() > 0.0);
    }
}
