//! EPRONS-Server: bound the **average** violation probability (§III-A).
//!
//! "The goal of EPRONS-Server is to select a frequency where the violation
//! probability of all … requests combined is 5 %. In order to achieve this,
//! we simply need the average VP of all queued requests to be 5 %." A
//! request may individually exceed the miss budget; another with surplus
//! slack compensates, so the *overall* tail meets the SLA while the core
//! runs slower (`f_new < f2` in Fig. 4). The waiting queue is EDF-ordered
//! ("EPRONS-Server reorders requests based on their deadlines", §V-B2).

use crate::freq::FreqLadder;
use crate::vp::Decision;

use super::DvfsPolicy;

/// Lowest frequency whose queue-average VP meets the target.
#[derive(Debug, Clone)]
pub struct AvgVpPolicy {
    /// SLA miss budget (0.05 for a 95th-percentile SLA).
    pub target: f64,
    /// Earliest-deadline-first queue ordering (the paper's EPRONS-Server
    /// enables it; disable for the ablation of §V-B2's "reorders requests
    /// based on their deadlines").
    pub edf: bool,
}

impl AvgVpPolicy {
    /// EPRONS-Server at the paper's 5 % miss budget (EDF on).
    pub fn eprons() -> Self {
        AvgVpPolicy {
            target: 0.05,
            edf: true,
        }
    }

    /// Ablation variant: average-VP selection but FIFO service order.
    pub fn eprons_fifo() -> Self {
        AvgVpPolicy {
            target: 0.05,
            edf: false,
        }
    }
}

impl DvfsPolicy for AvgVpPolicy {
    fn name(&self) -> &'static str {
        "eprons-server"
    }

    fn reorders_edf(&self) -> bool {
        self.edf
    }

    fn choose_frequency(&mut self, _now: f64, decision: &Decision, ladder: &FreqLadder) -> f64 {
        if decision.is_empty() {
            return ladder.min();
        }
        // Binary search over the ladder: avg VP is monotone non-increasing
        // in frequency (paper §III-C applies the same binary search).
        ladder.lowest_satisfying(|f| decision.avg_vp(f) <= self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::max_vp::MaxVpPolicy;
    use crate::service::ServiceModel;
    use crate::vp::VpEngine;
    use eprons_num::Pmf;

    fn bimodal_engine() -> VpEngine {
        let pmf = Pmf::from_masses(2.7e-3, 2.7e-3, vec![0.5, 0.5]);
        VpEngine::new(ServiceModel::new(pmf, 0.0))
    }

    #[test]
    fn never_above_max_vp_frequency() {
        // For any queue, the average criterion can only choose a frequency
        // ≤ the max criterion's (avg ≤ max pointwise).
        let ladder = FreqLadder::paper_default();
        let mut eprons = AvgVpPolicy {
            target: 0.3,
            edf: true,
        };
        let mut rubik = MaxVpPolicy {
            target: 0.3,
            label: "rubik",
        };
        let mut e = bimodal_engine();
        for deadlines in [
            vec![3.0e-3],
            vec![6.0e-3, 5.6e-3],
            vec![4.0e-3, 6.0e-3, 8.0e-3],
            vec![2.0e-3, 9.0e-3, 9.5e-3, 12.0e-3],
        ] {
            let d = e.decision(0.0, None, &deadlines);
            let fa = eprons.choose_frequency(0.0, &d, &ladder);
            let fm = rubik.choose_frequency(0.0, &d, &ladder);
            assert!(fa <= fm + 1e-12, "avg {fa} > max {fm} for {deadlines:?}");
        }
    }

    #[test]
    fn fig4_scenario_picks_intermediate_frequency() {
        // One roomy and one tight request (see vp.rs::fig4 test): the
        // average criterion admits a strictly lower frequency.
        let ladder = FreqLadder::paper_default();
        let mut eprons = AvgVpPolicy {
            target: 0.3,
            edf: true,
        };
        let mut rubik = MaxVpPolicy {
            target: 0.3,
            label: "rubik",
        };
        let mut e = bimodal_engine();
        let d = e.decision(0.0, None, &[6.0e-3, 5.625e-3]);
        let fa = eprons.choose_frequency(0.0, &d, &ladder);
        let fm = rubik.choose_frequency(0.0, &d, &ladder);
        assert!(fa < fm, "EPRONS {fa} should undercut Rubik {fm}");
    }

    #[test]
    fn edf_flag_set() {
        assert!(AvgVpPolicy::eprons().reorders_edf());
        assert!(!AvgVpPolicy::eprons_fifo().reorders_edf());
        assert!(!MaxVpPolicy::rubik().reorders_edf());
    }

    #[test]
    fn empty_queue_idles_at_min() {
        let ladder = FreqLadder::paper_default();
        let mut p = AvgVpPolicy::eprons();
        let mut e = bimodal_engine();
        let d = e.decision(0.0, None, &[]);
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 1.2);
    }

    #[test]
    fn single_request_equals_max_criterion() {
        // With one queued request avg == max, so the two policies agree.
        let ladder = FreqLadder::paper_default();
        let mut eprons = AvgVpPolicy::eprons();
        let mut rubik = MaxVpPolicy::rubik();
        let mut e = bimodal_engine();
        for budget in [2.0e-3, 3.0e-3, 5.0e-3, 9.0e-3] {
            let d = e.decision(0.0, None, &[budget]);
            assert_eq!(
                eprons.choose_frequency(0.0, &d, &ladder),
                rubik.choose_frequency(0.0, &d, &ladder)
            );
        }
    }
}
