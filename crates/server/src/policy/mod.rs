//! DVFS policies: EPRONS-Server and the paper's baselines.
//!
//! | policy | criterion | network slack | granularity |
//! |---|---|---|---|
//! | [`MaxFreqPolicy`] | always `f_max` | — | — ("no power management") |
//! | [`MaxVpPolicy`] | max VP ≤ target | Rubik: no / Rubik+: yes (via deadlines) | per request |
//! | [`AvgVpPolicy`] | **average** VP ≤ target, EDF reordering | yes (via deadlines) | per request (EPRONS-Server) |
//! | [`TimeTraderPolicy`] | measured tail feedback | whole budget when uncongested | 5 s control period |
//! | [`DeepSleepPolicy`] | max VP + deep idle sleep | yes (via deadlines) | per request (DynSleep-style extension) |
//!
//! Whether a scheme *sees* network slack is decided by the deadlines the
//! simulator feeds it (Rubik vs. Rubik+ run the same `MaxVpPolicy` with
//! different deadline inputs — exactly the paper's "network-aware version
//! of Rubik" construction, §V-B2).

mod avg_vp;
mod max_freq;
mod max_vp;
mod sleep;
mod timetrader;

pub use avg_vp::AvgVpPolicy;
pub use max_freq::MaxFreqPolicy;
pub use max_vp::MaxVpPolicy;
pub use sleep::DeepSleepPolicy;
pub use timetrader::TimeTraderPolicy;

use crate::freq::FreqLadder;
use crate::vp::Decision;

/// A frequency-selection policy invoked at every request arrival and
/// departure instant (and free to ignore the model-based `Decision`, as
/// the feedback-based TimeTrader does).
pub trait DvfsPolicy {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// `false` if this policy never consults the model-based [`Decision`]
    /// (feedback or fixed-frequency policies): the simulator then skips
    /// building the equivalent distributions entirely.
    fn needs_model(&self) -> bool {
        true
    }

    /// `true` if the simulator should order the waiting queue
    /// earliest-deadline-first for this policy (EPRONS-Server "reorders
    /// requests based on their deadlines", §V-B2).
    fn reorders_edf(&self) -> bool {
        false
    }

    /// Watts one core draws while this policy has it idle. `None` uses the
    /// power model's default (DVFS floor). Sleep-state policies override
    /// this with a deep-sleep draw.
    fn idle_power_w(&self) -> Option<f64> {
        None
    }

    /// Extra seconds the first request of a busy period pays when this
    /// policy let the core sleep (deep-sleep wake latency). Zero for pure
    /// DVFS policies.
    fn wake_latency_s(&self) -> f64 {
        0.0
    }

    /// Completion callback: measured server latency and the request's
    /// budget (used by feedback policies).
    fn on_completion(&mut self, _now: f64, _latency_s: f64, _budget_s: f64) {}

    /// Chooses the operating frequency at a decision instant.
    fn choose_frequency(&mut self, now: f64, decision: &Decision, ladder: &FreqLadder) -> f64;
}
