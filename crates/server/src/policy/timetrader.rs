//! TimeTrader-style feedback DVFS (the paper's cross-layer baseline \[7\]).
//!
//! TimeTrader monitors the measured service tail and periodically adjusts
//! the frequency: "the simple control algorithm in TimeTrader changes the
//! CPU frequency every 5 seconds" (§V-B2). It borrows the *whole* network
//! budget when the network shows no congestion signal (ECN/RTO) — which is
//! how the simulator feeds it deadlines — but its coarse control period
//! makes it slow to track bursty arrivals, which is exactly the weakness
//! the paper demonstrates (responsiveness, §III).

use eprons_num::quantile::percentile;

use crate::freq::FreqLadder;
use crate::vp::Decision;

use super::DvfsPolicy;

/// Windowed-tail feedback controller.
#[derive(Debug, Clone)]
pub struct TimeTraderPolicy {
    /// Control period (5 s in the paper).
    pub period_s: f64,
    /// Tail percentile monitored (0.95).
    pub percentile: f64,
    /// The latency the controller steers toward, in seconds (the server
    /// budget, plus the network budget when uncongested).
    pub target_latency_s: f64,
    /// Dead-band: step down only when the tail is below
    /// `down_threshold × target`.
    pub down_threshold: f64,
    freq_idx: usize,
    next_update_s: f64,
    window: Vec<f64>,
}

impl TimeTraderPolicy {
    /// Creates a controller with the paper's 5 s period and 95th-percentile
    /// monitoring, starting at the top frequency.
    pub fn new(target_latency_s: f64, ladder_len: usize) -> Self {
        TimeTraderPolicy {
            period_s: 5.0,
            percentile: 0.95,
            target_latency_s,
            down_threshold: 0.95,
            freq_idx: ladder_len.saturating_sub(1),
            next_update_s: 0.0,
            window: Vec::new(),
        }
    }
}

impl DvfsPolicy for TimeTraderPolicy {
    fn name(&self) -> &'static str {
        "timetrader"
    }

    fn needs_model(&self) -> bool {
        false
    }

    fn on_completion(&mut self, _now: f64, latency_s: f64, _budget_s: f64) {
        self.window.push(latency_s);
    }

    fn choose_frequency(&mut self, now: f64, _decision: &Decision, ladder: &FreqLadder) -> f64 {
        if now >= self.next_update_s {
            if !self.window.is_empty() {
                let tail = percentile(&self.window, self.percentile);
                if tail > self.target_latency_s {
                    self.freq_idx = (self.freq_idx + 1).min(ladder.len() - 1);
                } else if tail < self.down_threshold * self.target_latency_s && self.freq_idx > 0 {
                    self.freq_idx -= 1;
                }
                self.window.clear();
            }
            self.next_update_s = now + self.period_s;
        }
        ladder.at(self.freq_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceModel;
    use crate::vp::VpEngine;
    use eprons_num::Pmf;

    fn dummy_decision() -> crate::vp::Decision {
        let mut e = VpEngine::new(ServiceModel::new(Pmf::delta(1.0, 0.1), 0.0));
        e.decision(0.0, None, &[1.0])
    }

    #[test]
    fn starts_at_max() {
        let ladder = FreqLadder::paper_default();
        let mut p = TimeTraderPolicy::new(30.0e-3, ladder.len());
        let d = dummy_decision();
        assert_eq!(p.choose_frequency(0.0, &d, &ladder), 2.7);
    }

    #[test]
    fn steps_down_when_tail_is_comfortable() {
        let ladder = FreqLadder::paper_default();
        let mut p = TimeTraderPolicy::new(30.0e-3, ladder.len());
        let d = dummy_decision();
        let _ = p.choose_frequency(0.0, &d, &ladder);
        // Feed a comfortable window and cross the period boundary.
        for _ in 0..100 {
            p.on_completion(1.0, 5.0e-3, 30.0e-3);
        }
        let f = p.choose_frequency(6.0, &d, &ladder);
        assert!(f < 2.7, "should have stepped down, got {f}");
    }

    #[test]
    fn steps_up_on_violation() {
        let ladder = FreqLadder::paper_default();
        let mut p = TimeTraderPolicy::new(30.0e-3, ladder.len());
        let d = dummy_decision();
        // Walk it down a few periods first.
        let mut t = 0.0;
        let _ = p.choose_frequency(t, &d, &ladder);
        for _ in 0..5 {
            for _ in 0..50 {
                p.on_completion(t, 4.0e-3, 30.0e-3);
            }
            t += 6.0;
            let _ = p.choose_frequency(t, &d, &ladder);
        }
        let before = p.choose_frequency(t, &d, &ladder);
        // Now a violating window.
        for _ in 0..50 {
            p.on_completion(t, 60.0e-3, 30.0e-3);
        }
        t += 6.0;
        let after = p.choose_frequency(t, &d, &ladder);
        assert!(after > before, "violation must raise frequency");
    }

    #[test]
    fn holds_between_updates() {
        let ladder = FreqLadder::paper_default();
        let mut p = TimeTraderPolicy::new(30.0e-3, ladder.len());
        let d = dummy_decision();
        let f0 = p.choose_frequency(0.0, &d, &ladder);
        for _ in 0..100 {
            p.on_completion(1.0, 1.0e-3, 30.0e-3);
        }
        // Still inside the 5 s period: no change despite the easy window.
        let f1 = p.choose_frequency(3.0, &d, &ladder);
        assert_eq!(f0, f1);
    }

    #[test]
    fn dead_band_prevents_oscillation() {
        let ladder = FreqLadder::paper_default();
        let mut p = TimeTraderPolicy::new(30.0e-3, ladder.len());
        let d = dummy_decision();
        let _ = p.choose_frequency(0.0, &d, &ladder);
        // Tail right below target but above the down threshold: hold.
        for _ in 0..100 {
            p.on_completion(1.0, 29.0e-3, 30.0e-3);
        }
        let f = p.choose_frequency(6.0, &d, &ladder);
        assert_eq!(f, 2.7, "inside dead-band: no movement");
    }
}
