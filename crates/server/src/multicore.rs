//! Multi-core server simulation: `c` cores sharing one request queue.
//!
//! The paper's ISNs are 12-core CPUs (§V-A) but, like Rubik and DynSleep,
//! its power scheme is per-core; the cluster simulator therefore models
//! one core per ISN and multiplies power by the core count (see
//! DESIGN.md). This module provides the full shared-queue multi-core
//! simulation so that approximation can be *checked* rather than assumed:
//! an M/G/c server pools its queue, so at equal per-core load its waiting
//! times are lower than c independent M/G/1 queues — meaning the cluster
//! model's latencies (and hence its frequencies and power) are
//! conservative upper bounds.
//!
//! Each core selects its own frequency when it dispatches a request,
//! using the same [`DvfsPolicy`] machinery as the single-core simulator;
//! decisions see the core's in-flight request plus the *shared* backlog.

use eprons_sim::{EnergyMeter, SimRng};

use crate::coresim::CoreSimConfig;
use crate::policy::DvfsPolicy;
use crate::request::ArrivalSpec;
use crate::vp::{InflightHead, VpEngine};

/// A waiting request.
#[derive(Debug, Clone, Copy)]
struct Pending {
    arrival: f64,
    budget: f64,
    deadline: f64,
    work_gc: f64,
    tag: u64,
}

/// A core's in-flight request.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    arrival: f64,
    budget: f64,
    deadline: f64,
    rem_work_gc: f64,
    done_work_gc: f64,
    rem_fixed_s: f64,
    tag: u64,
}

/// Per-core state.
struct Core {
    inflight: Option<Inflight>,
    freq: f64,
    meter: EnergyMeter,
}

/// Multi-core simulation outcome.
#[derive(Debug, Clone)]
pub struct MultiCoreResult {
    /// Per-request latency, completion order.
    pub latencies: Vec<f64>,
    /// Budgets aligned with `latencies`.
    pub budgets: Vec<f64>,
    /// Tags aligned with `latencies`.
    pub tags: Vec<u64>,
    /// End of simulation, seconds.
    pub sim_end_s: f64,
    /// Total energy across all cores, joules.
    pub energy_j: f64,
    /// Number of cores simulated.
    pub cores: usize,
}

impl MultiCoreResult {
    /// Average per-core power, watts.
    pub fn avg_core_power_w(&self) -> f64 {
        if self.sim_end_s > 0.0 {
            self.energy_j / self.sim_end_s / self.cores as f64
        } else {
            0.0
        }
    }

    /// Latency percentile.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(eprons_num::quantile::percentile(&self.latencies, p))
        }
    }

    /// Fraction of requests exceeding their own budget.
    pub fn miss_rate(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        let misses = self
            .latencies
            .iter()
            .zip(&self.budgets)
            .filter(|(l, b)| *l > *b)
            .count();
        Some(misses as f64 / self.latencies.len() as f64)
    }

    /// Mean latency.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<f64>() / self.latencies.len() as f64)
        }
    }
}

/// Simulates `cores` cores sharing one queue under a single policy.
///
/// The policy's EDF flag orders the shared queue; its frequency choice is
/// applied to the dispatching core only (per-core DVFS, as on the paper's
/// hardware).
///
/// # Panics
/// Panics if `cores == 0` or the trace is unsorted.
pub fn simulate_multicore(
    policy: &mut dyn DvfsPolicy,
    engine: &mut VpEngine,
    arrivals: &[ArrivalSpec],
    cores: usize,
    cfg: &CoreSimConfig,
    seed: u64,
) -> MultiCoreResult {
    assert!(cores > 0, "need at least one core");
    assert!(
        arrivals
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "arrival trace must be time-sorted"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    let fixed_s = engine.service().fixed_s();
    let idle_w = policy.idle_power_w().unwrap_or(cfg.power.core_idle_w());

    let mut waiting: Vec<Pending> = Vec::new();
    let mut corestates: Vec<Core> = (0..cores)
        .map(|_| Core {
            inflight: None,
            freq: cfg.ladder.max(),
            meter: EnergyMeter::new(0.0, idle_w),
        })
        .collect();
    let mut last_t = 0.0_f64;
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut budgets = Vec::with_capacity(arrivals.len());
    let mut tags = Vec::with_capacity(arrivals.len());
    let mut next_arrival = 0usize;

    // Advance every busy core's progress to `t`.
    fn advance(cores: &mut [Core], last_t: f64, t: f64) {
        let dt = t - last_t;
        for c in cores.iter_mut() {
            if let Some(f) = c.inflight.as_mut() {
                let eat_fixed = dt.min(f.rem_fixed_s);
                f.rem_fixed_s -= eat_fixed;
                let cycles = (dt - eat_fixed) * c.freq;
                let done = cycles.min(f.rem_work_gc);
                f.rem_work_gc -= done;
                f.done_work_gc += done;
            }
        }
    }

    let completion_time = |c: &Core, t: f64| -> Option<f64> {
        c.inflight
            .as_ref()
            .map(|f| t + f.rem_fixed_s + f.rem_work_gc / c.freq)
    };

    loop {
        // Next event: earliest completion across cores vs. next arrival.
        let mut comp: Option<(usize, f64)> = None;
        for (i, c) in corestates.iter().enumerate() {
            if let Some(at) = completion_time(c, last_t) {
                if comp.is_none_or(|(_, t)| at < t) {
                    comp = Some((i, at));
                }
            }
        }
        let arr_at = arrivals.get(next_arrival).map(|a| a.arrival_s);
        let (t, completing_core) = match (arr_at, comp) {
            (None, None) => break,
            (Some(a), None) => (a, None),
            (None, Some((i, c))) => (c, Some(i)),
            (Some(a), Some((i, c))) => {
                if a <= c {
                    (a, None)
                } else {
                    (c, Some(i))
                }
            }
        };
        advance(&mut corestates, last_t, t);
        last_t = t;

        match completing_core {
            None => {
                let spec = arrivals[next_arrival];
                next_arrival += 1;
                waiting.push(Pending {
                    arrival: spec.arrival_s,
                    budget: spec.budget_s,
                    deadline: spec.deadline(),
                    work_gc: engine.service().sample_work(&mut rng),
                    tag: spec.tag,
                });
            }
            Some(i) => {
                let fl = corestates[i]
                    .inflight
                    .take()
                    .expect("completion on idle core");
                latencies.push(t - fl.arrival);
                budgets.push(fl.budget);
                tags.push(fl.tag);
                policy.on_completion(t, t - fl.arrival, fl.budget);
            }
        }

        // Dispatch to every idle core while work waits.
        while let Some(core_idx) = corestates.iter().position(|c| c.inflight.is_none()) {
            if waiting.is_empty() {
                break;
            }
            let idx = if policy.reorders_edf() {
                waiting
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.deadline.partial_cmp(&b.deadline).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty")
            } else {
                0
            };
            let p = waiting.remove(idx);
            corestates[core_idx].inflight = Some(Inflight {
                arrival: p.arrival,
                budget: p.budget,
                deadline: p.deadline,
                rem_work_gc: p.work_gc,
                done_work_gc: 0.0,
                rem_fixed_s: fixed_s + policy.wake_latency_s(),
                tag: p.tag,
            });

            // Frequency decision for this core: its head plus the shared
            // backlog (which any core may serve next — the pooled view).
            let mut deadlines = Vec::with_capacity(waiting.len() + 1);
            let head = corestates[core_idx].inflight.as_ref().map(|fl| {
                deadlines.push(fl.deadline);
                InflightHead {
                    done_work_gc: fl.done_work_gc,
                    rem_fixed_s: fl.rem_fixed_s,
                }
            });
            let mut rest: Vec<&Pending> = waiting.iter().collect();
            if policy.reorders_edf() {
                rest.sort_by(|a, b| a.deadline.partial_cmp(&b.deadline).expect("finite"));
            }
            // The backlog is shared by `cores` servers: only every c-th
            // waiting request lands on *this* core, so the decision sees
            // the thinned queue (position i served after ~i/c rounds).
            deadlines.extend(rest.iter().step_by(cores).map(|p| p.deadline));
            let dec = engine.decision(t + cfg.decision_overhead_s, head, &deadlines);
            let f = policy.choose_frequency(t, &dec, &cfg.ladder);
            corestates[core_idx].freq = f;
        }

        // Power metering.
        for c in corestates.iter_mut() {
            let w = if c.inflight.is_some() {
                cfg.power.core_busy_w(c.freq)
            } else {
                idle_w
            };
            c.meter.set_power(t, w);
        }
    }

    let energy: f64 = corestates
        .iter()
        .map(|c| c.meter.energy_until(last_t))
        .sum();
    MultiCoreResult {
        latencies,
        budgets,
        tags,
        sim_end_s: last_t,
        energy_j: energy,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coresim::{poisson_trace, simulate_core};
    use crate::policy::{AvgVpPolicy, MaxFreqPolicy};
    use crate::service::ServiceModel;
    use eprons_sim::SimRng;

    fn service(seed: u64) -> ServiceModel {
        let mut rng = SimRng::seed_from_u64(seed);
        ServiceModel::synthetic_xapian(&mut rng, 15_000, 128)
    }

    #[test]
    fn single_core_matches_coresim_statistically() {
        let svc = service(70);
        let cfg = CoreSimConfig::default();
        let mut rng = SimRng::seed_from_u64(71);
        let arrivals = poisson_trace(&mut rng, 40.0, 60.0, 0.030);
        let mut e1 = VpEngine::new(svc.clone());
        let mut p1 = MaxFreqPolicy;
        let single = simulate_core(&mut p1, &mut e1, &arrivals, &cfg, 72);
        let mut e2 = VpEngine::new(svc);
        let mut p2 = MaxFreqPolicy;
        let multi = simulate_multicore(&mut p2, &mut e2, &arrivals, 1, &cfg, 72);
        assert_eq!(multi.latencies.len(), single.latencies.len());
        // Same trace, same seed, same discipline: identical latencies.
        for (a, b) in single.latencies.iter().zip(&multi.latencies) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pooling_cuts_queueing_at_equal_per_core_load() {
        // 4 cores at 4× the arrival rate vs 1 core: the pooled queue waits
        // less (M/M/c beats c × M/M/1).
        let svc = service(73);
        let cfg = CoreSimConfig::default();
        let mean_t = svc.mean_service_time(2.7);
        let per_core_util = 0.6;
        let mut rng = SimRng::seed_from_u64(74);
        let one = poisson_trace(&mut rng, per_core_util / mean_t, 120.0, 0.030);
        let mut rng = SimRng::seed_from_u64(74);
        let four = poisson_trace(&mut rng, 4.0 * per_core_util / mean_t, 120.0, 0.030);

        let mut e1 = VpEngine::new(svc.clone());
        let mut p1 = MaxFreqPolicy;
        let r1 = simulate_multicore(&mut p1, &mut e1, &one, 1, &cfg, 75);
        let mut e4 = VpEngine::new(svc);
        let mut p4 = MaxFreqPolicy;
        let r4 = simulate_multicore(&mut p4, &mut e4, &four, 4, &cfg, 75);
        let m1 = r1.mean_latency().unwrap();
        let m4 = r4.mean_latency().unwrap();
        assert!(
            m4 < m1,
            "pooled 4-core latency {m4} should beat single-core {m1}"
        );
    }

    #[test]
    fn single_core_model_is_conservative_for_eprons() {
        // The cluster simulator's 1-core-per-ISN approximation must be an
        // upper bound: the 12-core pooled server meets deadlines at least
        // as easily and spends no more energy per core.
        let svc = service(76);
        let cfg = CoreSimConfig::default();
        let mean_t = svc.mean_service_time(2.7);
        let mut rng = SimRng::seed_from_u64(77);
        let single_trace = poisson_trace(&mut rng, 0.4 / mean_t, 90.0, 0.025);
        let mut rng = SimRng::seed_from_u64(77);
        let pooled_trace = poisson_trace(&mut rng, 4.0 * 0.4 / mean_t, 90.0, 0.025);

        let mut e1 = VpEngine::new(svc.clone());
        let mut p1 = AvgVpPolicy::eprons();
        let approx = simulate_multicore(&mut p1, &mut e1, &single_trace, 1, &cfg, 78);
        let mut e2 = VpEngine::new(svc);
        let mut p2 = AvgVpPolicy::eprons();
        let pooled = simulate_multicore(&mut p2, &mut e2, &pooled_trace, 4, &cfg, 78);
        assert!(
            pooled.miss_rate().unwrap() <= approx.miss_rate().unwrap() + 0.02,
            "pooled misses {} vs per-core model {}",
            pooled.miss_rate().unwrap(),
            approx.miss_rate().unwrap()
        );
    }

    #[test]
    fn all_requests_complete_across_cores() {
        let svc = service(79);
        let cfg = CoreSimConfig::default();
        let mut rng = SimRng::seed_from_u64(80);
        let arrivals = poisson_trace(&mut rng, 300.0, 10.0, 0.030);
        let n = arrivals.len();
        let mut e = VpEngine::new(svc);
        let mut p = AvgVpPolicy::eprons();
        let r = simulate_multicore(&mut p, &mut e, &arrivals, 12, &cfg, 81);
        assert_eq!(r.latencies.len(), n);
        let mut tags = r.tags.clone();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), n);
        assert_eq!(r.cores, 12);
        assert!(r.avg_core_power_w() >= cfg.power.core_idle_w() - 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let svc = service(82);
        let mut e = VpEngine::new(svc);
        let mut p = MaxFreqPolicy;
        simulate_multicore(&mut p, &mut e, &[], 0, &CoreSimConfig::default(), 0);
    }
}
