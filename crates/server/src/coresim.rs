//! Per-core discrete-event simulation driving a DVFS policy.
//!
//! Mirrors the paper's search-engine simulator (§V-A): requests arrive with
//! per-request deadlines, the policy re-selects the frequency at every
//! arrival and departure instant, service progresses as
//! `t_fixed + work / f` with the in-flight request re-scaled when the
//! frequency changes, and a power meter integrates busy/idle core power
//! into energy.

use eprons_sim::{EnergyMeter, SimRng};

use crate::freq::FreqLadder;
use crate::policy::DvfsPolicy;
use crate::power::CpuPowerModel;
use crate::request::ArrivalSpec;
use crate::vp::{InflightHead, VpEngine};

/// Core-simulator configuration.
#[derive(Debug, Clone)]
pub struct CoreSimConfig {
    /// Available frequencies.
    pub ladder: FreqLadder,
    /// Power model (per core).
    pub power: CpuPowerModel,
    /// Decision overhead subtracted from every budget (the paper replaces
    /// `D` with `D − overhead`, §III-C; ≈30 µs measured).
    pub decision_overhead_s: f64,
    /// Measurement window start: requests arriving earlier, and power
    /// consumed earlier, are excluded from the results. Lets slow-settling
    /// feedback policies (TimeTrader's 5 s period) reach steady state
    /// before being scored.
    pub measure_from_s: f64,
}

impl Default for CoreSimConfig {
    fn default() -> Self {
        CoreSimConfig {
            ladder: FreqLadder::paper_default(),
            power: CpuPowerModel::default(),
            decision_overhead_s: 30.0e-6,
            measure_from_s: 0.0,
        }
    }
}

/// A request waiting in the queue.
#[derive(Debug, Clone, Copy)]
struct Pending {
    arrival: f64,
    budget: f64,
    deadline: f64,
    work_gc: f64,
    tag: u64,
}

/// The request in service.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    arrival: f64,
    budget: f64,
    deadline: f64,
    rem_work_gc: f64,
    done_work_gc: f64,
    rem_fixed_s: f64,
    tag: u64,
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct CoreSimResult {
    /// Per-request server latency (completion − arrival), completion order.
    pub latencies: Vec<f64>,
    /// Per-request budget, aligned with `latencies`.
    pub budgets: Vec<f64>,
    /// Per-request caller tag, aligned with `latencies`.
    pub tags: Vec<u64>,
    /// Per-request arrival time, aligned with `latencies`.
    pub arrivals: Vec<f64>,
    /// End of simulation (last completion), seconds.
    pub sim_end_s: f64,
    /// Start of the measurement window (warmup excluded), seconds.
    pub measure_start_s: f64,
    /// Core energy consumed within the measurement window, joules.
    pub energy_j: f64,
    /// Busy (serving) time within the measurement window, seconds.
    pub busy_s: f64,
}

impl CoreSimResult {
    /// Length of the measurement window, seconds.
    pub fn measured_span_s(&self) -> f64 {
        (self.sim_end_s - self.measure_start_s).max(0.0)
    }

    /// Average core power over the measurement window, watts.
    pub fn avg_core_power_w(&self) -> f64 {
        let span = self.measured_span_s();
        if span > 0.0 {
            self.energy_j / span
        } else {
            0.0
        }
    }

    /// Core utilization (busy fraction of the measurement window).
    pub fn utilization(&self) -> f64 {
        let span = self.measured_span_s();
        if span > 0.0 {
            self.busy_s / span
        } else {
            0.0
        }
    }

    /// Latency percentile (e.g. 0.95), if any request completed.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(eprons_num::quantile::percentile(&self.latencies, p))
        }
    }

    /// Fraction of requests that exceeded their own budget.
    pub fn miss_rate(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            return None;
        }
        let misses = self
            .latencies
            .iter()
            .zip(&self.budgets)
            .filter(|(l, b)| *l > *b)
            .count();
        Some(misses as f64 / self.latencies.len() as f64)
    }

    /// Mean latency, if any.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<f64>() / self.latencies.len() as f64)
        }
    }
}

/// Runs one core through an arrival trace under a policy.
///
/// `arrivals` must be sorted by arrival time. Works are sampled from the
/// engine's service model using `seed`, so a run is fully reproducible.
///
/// # Panics
/// Panics if arrivals are unsorted.
pub fn simulate_core(
    policy: &mut dyn DvfsPolicy,
    engine: &mut VpEngine,
    arrivals: &[ArrivalSpec],
    cfg: &CoreSimConfig,
    seed: u64,
) -> CoreSimResult {
    assert!(
        arrivals
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s),
        "arrival trace must be time-sorted"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    let fixed_s = engine.service().fixed_s();
    let measure_from = cfg.measure_from_s.max(0.0);

    let mut waiting: Vec<Pending> = Vec::new();
    let mut inflight: Option<Inflight> = None;
    let mut cur_f = cfg.ladder.max();
    let mut last_t = 0.0_f64;
    // Metering starts at the measurement window; power set before then is
    // held as "pending" and becomes the meter's initial level.
    let mut meter: Option<EnergyMeter> = None;
    let idle_w = policy.idle_power_w().unwrap_or(cfg.power.core_idle_w());
    let mut pending_w = idle_w;
    let mut busy_s = 0.0_f64;
    // Whether the core was idle (possibly asleep) before the current event.
    let mut was_idle = true;

    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut budgets = Vec::with_capacity(arrivals.len());
    let mut tags = Vec::with_capacity(arrivals.len());
    let mut arrival_times = Vec::with_capacity(arrivals.len());
    // Telemetry is aggregated locally and flushed once at the end of the
    // run so the event loop stays allocation- and lock-free.
    let obs_on = eprons_obs::enabled();
    let mut freq_transitions = 0u64;
    let mut decisions = 0u64;

    // Advances in-flight progress (and busy-time accounting) to `t`.
    let advance =
        |fl: &mut Option<Inflight>, last_t: &mut f64, busy: &mut f64, cur_f: f64, t: f64| {
            let dt = t - *last_t;
            if let Some(f) = fl.as_mut() {
                // Busy time counts only within the measurement window.
                *busy += (t - last_t.max(measure_from)).max(0.0).min(dt);
                let eat_fixed = dt.min(f.rem_fixed_s);
                f.rem_fixed_s -= eat_fixed;
                let work_time = dt - eat_fixed;
                let cycles = work_time * cur_f;
                let done = cycles.min(f.rem_work_gc);
                f.rem_work_gc -= done;
                f.done_work_gc += done;
            }
            *last_t = t;
        };

    let completion_time =
        |fl: &Inflight, t: f64, f_ghz: f64| -> f64 { t + fl.rem_fixed_s + fl.rem_work_gc / f_ghz };

    let mut next_arrival = 0usize;
    loop {
        let comp_at = inflight
            .as_ref()
            .map(|fl| completion_time(fl, last_t, cur_f));
        let arr_at = arrivals.get(next_arrival).map(|a| a.arrival_s);
        let (t, is_arrival) = match (arr_at, comp_at) {
            (None, None) => break,
            (Some(a), None) => (a, true),
            (None, Some(c)) => (c, false),
            (Some(a), Some(c)) => {
                if a <= c {
                    (a, true)
                } else {
                    (c, false)
                }
            }
        };
        advance(&mut inflight, &mut last_t, &mut busy_s, cur_f, t);

        if is_arrival {
            let spec = arrivals[next_arrival];
            next_arrival += 1;
            let work = engine.service().sample_work(&mut rng);
            waiting.push(Pending {
                arrival: spec.arrival_s,
                budget: spec.budget_s,
                deadline: spec.deadline(),
                work_gc: work,
                tag: spec.tag,
            });
        } else {
            let fl = inflight.take().expect("completion without in-flight");
            if fl.arrival >= measure_from {
                latencies.push(t - fl.arrival);
                budgets.push(fl.budget);
                tags.push(fl.tag);
                arrival_times.push(fl.arrival);
            }
            policy.on_completion(t, t - fl.arrival, fl.budget);
        }

        // Dispatch the next request if the core is free.
        let woke_from_idle = was_idle;
        if inflight.is_none() && !waiting.is_empty() {
            let idx = if policy.reorders_edf() {
                waiting
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.deadline
                            .partial_cmp(&b.deadline)
                            .expect("deadlines are finite")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty")
            } else {
                0
            };
            let p = waiting.remove(idx);
            // A core woken from deep sleep pays the wake latency as extra
            // frequency-independent time on the first request.
            let wake = if woke_from_idle {
                policy.wake_latency_s()
            } else {
                0.0
            };
            inflight = Some(Inflight {
                arrival: p.arrival,
                budget: p.budget,
                deadline: p.deadline,
                rem_work_gc: p.work_gc,
                done_work_gc: 0.0,
                rem_fixed_s: fixed_s + wake,
                tag: p.tag,
            });
        }
        was_idle = inflight.is_none();

        // Decision instant: assemble processing-order deadlines.
        let mut deadlines: Vec<f64> = Vec::with_capacity(waiting.len() + 1);
        let head = inflight.as_ref().map(|fl| {
            deadlines.push(fl.deadline);
            InflightHead {
                done_work_gc: fl.done_work_gc,
                rem_fixed_s: fl.rem_fixed_s,
            }
        });
        let mut rest: Vec<&Pending> = waiting.iter().collect();
        if policy.reorders_edf() {
            rest.sort_by(|a, b| {
                a.deadline
                    .partial_cmp(&b.deadline)
                    .expect("deadlines are finite")
            });
        }
        deadlines.extend(rest.iter().map(|p| p.deadline));

        let dec = if policy.needs_model() {
            engine.decision(t + cfg.decision_overhead_s, head, &deadlines)
        } else {
            // Feedback / fixed policies never read the model: hand them an
            // empty decision and skip the convolutions.
            engine.decision(t, None, &[])
        };
        let new_f = policy.choose_frequency(t, &dec, &cfg.ladder);
        decisions += 1;
        if new_f != cur_f {
            freq_transitions += 1;
        }
        cur_f = new_f;
        let w = if inflight.is_some() {
            cfg.power.core_busy_w(cur_f)
        } else {
            idle_w
        };
        if t < measure_from {
            pending_w = w;
        } else {
            meter
                .get_or_insert_with(|| EnergyMeter::new(measure_from, pending_w))
                .set_power(t, w);
        }
    }

    if obs_on {
        let reg = eprons_obs::registry();
        reg.counter("server.dvfs.transitions").add(freq_transitions);
        reg.counter("server.vp.decisions").add(decisions);
        eprons_obs::record(eprons_obs::Event::FreqTransition {
            policy: policy.name().to_string(),
            transitions: freq_transitions,
            decisions,
            final_ghz: cur_f,
        });
    }

    let sim_end = last_t.max(measure_from);
    let energy_j = meter
        .unwrap_or_else(|| EnergyMeter::new(measure_from, pending_w))
        .energy_until(sim_end);
    CoreSimResult {
        latencies,
        budgets,
        tags,
        arrivals: arrival_times,
        sim_end_s: sim_end,
        measure_start_s: measure_from,
        energy_j,
        busy_s,
    }
}

/// Builds an open-loop Poisson arrival trace with a constant budget —
/// the workhorse of the Fig. 12 server experiments.
pub fn poisson_trace(
    rng: &mut SimRng,
    rate_per_s: f64,
    duration_s: f64,
    budget_s: f64,
) -> Vec<ArrivalSpec> {
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(rate_per_s);
        if t >= duration_s {
            break;
        }
        out.push(ArrivalSpec {
            arrival_s: t,
            budget_s,
            tag: out.len() as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AvgVpPolicy, MaxFreqPolicy, MaxVpPolicy, TimeTraderPolicy};
    use crate::service::ServiceModel;
    use eprons_num::Pmf;

    fn deterministic_service() -> ServiceModel {
        // Exactly 2.7e-3 Gc (1 ms at 2.7 GHz), no fixed part.
        ServiceModel::new(Pmf::delta(2.7e-3, 1.0e-5), 0.0)
    }

    fn xapian_service(seed: u64) -> ServiceModel {
        let mut rng = SimRng::seed_from_u64(seed);
        ServiceModel::synthetic_xapian(&mut rng, 20_000, 160)
    }

    #[test]
    fn maxfreq_isolated_requests_have_service_latency() {
        let svc = deterministic_service();
        let mut engine = VpEngine::new(svc);
        let mut policy = MaxFreqPolicy;
        // 10 requests far apart: no queueing.
        let arrivals: Vec<ArrivalSpec> = (0..10)
            .map(|i| ArrivalSpec {
                arrival_s: i as f64,
                budget_s: 0.025,
                tag: i as u64,
            })
            .collect();
        let r = simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            1,
        );
        assert_eq!(r.latencies.len(), 10);
        for &l in &r.latencies {
            // sample_with jitters within the PMF bin (±step/2 Gc ≈ ±1.9 µs).
            assert!((l - 1.0e-3).abs() < 5.0e-6, "latency {l}");
        }
        assert_eq!(r.miss_rate(), Some(0.0));
    }

    #[test]
    fn queueing_inflates_latency() {
        let svc = deterministic_service();
        let mut engine = VpEngine::new(svc);
        let mut policy = MaxFreqPolicy;
        // 3 simultaneous arrivals: latencies 1, 2, 3 ms.
        let arrivals = vec![
            ArrivalSpec {
                arrival_s: 0.0,
                budget_s: 0.025,
                tag: 0
            };
            3
        ];
        let r = simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            1,
        );
        let mut lats = r.latencies.clone();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((lats[0] - 1.0e-3).abs() < 5.0e-6);
        assert!((lats[1] - 2.0e-3).abs() < 1.0e-5);
        assert!((lats[2] - 3.0e-3).abs() < 1.5e-5);
    }

    #[test]
    fn rubik_slows_down_with_slack_and_still_meets_deadlines() {
        let svc = deterministic_service();
        let mut engine = VpEngine::new(svc);
        let mut policy = MaxVpPolicy::rubik();
        // Sparse arrivals with 10 ms budget: Rubik should run at 1.2 GHz
        // (2.7e-3 Gc / 1.2 GHz = 2.25 ms < 10 ms) and still make deadlines.
        let arrivals: Vec<ArrivalSpec> = (0..50)
            .map(|i| ArrivalSpec {
                arrival_s: i as f64 * 0.02,
                budget_s: 0.010,
                tag: i as u64,
            })
            .collect();
        let r = simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            2,
        );
        assert_eq!(r.miss_rate(), Some(0.0));
        // Latency ≈ 2.25 ms (ran at the floor), not 1 ms.
        let mean = r.mean_latency().unwrap();
        assert!(
            (2.0e-3..2.6e-3).contains(&mean),
            "expected ≈2.25 ms at the DVFS floor, got {mean}"
        );
    }

    #[test]
    fn energy_ordering_matches_paper() {
        // Same trace, slack-rich budgets: MaxFreq > Rubik ≥ EPRONS energy.
        let svc = xapian_service(3);
        let cfg = CoreSimConfig::default();
        let mut rng = SimRng::seed_from_u64(4);
        // 30% utilization: rate = 0.3 / E[service@fmax].
        let mean_t = svc.mean_service_time(2.7);
        let arrivals = poisson_trace(&mut rng, 0.3 / mean_t, 120.0, 0.030);

        let run = |policy: &mut dyn DvfsPolicy| {
            let mut engine = VpEngine::new(svc.clone());
            simulate_core(policy, &mut engine, &arrivals, &cfg, 5)
        };
        let r_max = run(&mut MaxFreqPolicy);
        let r_rubik = run(&mut MaxVpPolicy::rubik());
        let r_eprons = run(&mut AvgVpPolicy::eprons());

        assert!(
            r_rubik.energy_j < r_max.energy_j,
            "Rubik ({}) must beat MaxFreq ({})",
            r_rubik.energy_j,
            r_max.energy_j
        );
        assert!(
            r_eprons.energy_j <= r_rubik.energy_j + 1e-9,
            "EPRONS ({}) must not exceed Rubik ({})",
            r_eprons.energy_j,
            r_rubik.energy_j
        );
        // And all policies keep the overall tail near the SLA.
        assert!(r_rubik.miss_rate().unwrap() < 0.08);
        assert!(r_eprons.miss_rate().unwrap() < 0.08);
    }

    #[test]
    fn eprons_meets_average_tail_constraint() {
        let svc = xapian_service(6);
        let cfg = CoreSimConfig::default();
        let mut rng = SimRng::seed_from_u64(7);
        let mean_t = svc.mean_service_time(2.7);
        let arrivals = poisson_trace(&mut rng, 0.3 / mean_t, 200.0, 0.030);
        let mut engine = VpEngine::new(svc);
        let mut policy = AvgVpPolicy::eprons();
        let r = simulate_core(&mut policy, &mut engine, &arrivals, &cfg, 8);
        let miss = r.miss_rate().unwrap();
        assert!(
            miss <= 0.08,
            "EPRONS-Server must keep the miss rate near 5%, got {miss}"
        );
        // And it must actually exploit slack: p95 close to the budget.
        let p95 = r.latency_percentile(0.95).unwrap();
        assert!(
            p95 > 0.5 * 0.030,
            "p95 {p95} should approach the 30 ms budget (slack exploited)"
        );
    }

    #[test]
    fn utilization_accounting() {
        let svc = xapian_service(9);
        let mean_t = svc.mean_service_time(2.7);
        let mut rng = SimRng::seed_from_u64(10);
        let arrivals = poisson_trace(&mut rng, 0.2 / mean_t, 300.0, 0.030);
        let mut engine = VpEngine::new(svc);
        let mut policy = MaxFreqPolicy;
        let r = simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            11,
        );
        let u = r.utilization();
        assert!(
            (0.15..0.25).contains(&u),
            "expected ≈20% utilization at fmax, got {u}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let svc = xapian_service(12);
        let mut rng = SimRng::seed_from_u64(13);
        let arrivals = poisson_trace(&mut rng, 50.0, 30.0, 0.030);
        let run = || {
            let mut engine = VpEngine::new(svc.clone());
            let mut policy = AvgVpPolicy::eprons();
            simulate_core(
                &mut policy,
                &mut engine,
                &arrivals,
                &CoreSimConfig::default(),
                14,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn timetrader_tracks_target_coarsely() {
        let svc = xapian_service(15);
        let cfg = CoreSimConfig::default();
        let mean_t = svc.mean_service_time(2.7);
        let mut rng = SimRng::seed_from_u64(16);
        let arrivals = poisson_trace(&mut rng, 0.3 / mean_t, 300.0, 0.030);
        let mut engine = VpEngine::new(svc);
        let mut policy = TimeTraderPolicy::new(0.030, cfg.ladder.len());
        let r = simulate_core(&mut policy, &mut engine, &arrivals, &cfg, 17);
        // It saves energy vs MaxFreq…
        let mut engine2 = VpEngine::new(engine.service().clone());
        let mut maxf = MaxFreqPolicy;
        let r_max = simulate_core(&mut maxf, &mut engine2, &arrivals, &cfg, 17);
        assert!(r.energy_j < r_max.energy_j);
        // …while keeping a bounded miss rate over the long run.
        assert!(r.miss_rate().unwrap() < 0.15);
    }

    #[test]
    fn all_requests_complete() {
        let svc = xapian_service(18);
        let mut rng = SimRng::seed_from_u64(19);
        let arrivals = poisson_trace(&mut rng, 100.0, 20.0, 0.030);
        let n = arrivals.len();
        let mut engine = VpEngine::new(svc);
        let mut policy = AvgVpPolicy::eprons();
        let r = simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            20,
        );
        assert_eq!(r.latencies.len(), n);
        assert_eq!(r.budgets.len(), n);
        assert!(r.sim_end_s >= arrivals.last().unwrap().arrival_s);
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let svc = deterministic_service();
        let cfg = CoreSimConfig {
            measure_from_s: 5.0,
            ..Default::default()
        };
        let mut engine = VpEngine::new(svc);
        let mut policy = MaxFreqPolicy;
        // 10 requests at t = 0..9 s; the first five fall in the warmup.
        let arrivals: Vec<ArrivalSpec> = (0..10)
            .map(|i| ArrivalSpec {
                arrival_s: i as f64,
                budget_s: 0.025,
                tag: i as u64,
            })
            .collect();
        let r = simulate_core(&mut policy, &mut engine, &arrivals, &cfg, 30);
        assert_eq!(r.latencies.len(), 5, "warmup completions excluded");
        assert!(r.tags.iter().all(|&t| t >= 5));
        assert_eq!(r.measure_start_s, 5.0);
        // Average power is idle-dominated but measured only post-warmup.
        let avg = r.avg_core_power_w();
        assert!(avg >= cfg.power.core_idle_w() - 1e-9);
        assert!(r.measured_span_s() <= 5.0 + 0.01);
    }

    #[test]
    fn warmup_equals_no_warmup_for_stationary_policy() {
        // MaxFreq is stationary: per-request latencies after the warmup
        // match the same requests in an unwarmed run.
        let svc = xapian_service(31);
        let mut rng = SimRng::seed_from_u64(32);
        let arrivals = poisson_trace(&mut rng, 100.0, 20.0, 0.030);
        let run = |measure_from: f64| {
            let cfg = CoreSimConfig {
                measure_from_s: measure_from,
                ..Default::default()
            };
            let mut engine = VpEngine::new(svc.clone());
            let mut policy = MaxFreqPolicy;
            simulate_core(&mut policy, &mut engine, &arrivals, &cfg, 33)
        };
        let full = run(0.0);
        let warmed = run(10.0);
        // The warmed run's (tag → latency) pairs are a subset of the full
        // run's.
        use std::collections::HashMap;
        let full_map: HashMap<u64, f64> = full
            .tags
            .iter()
            .copied()
            .zip(full.latencies.iter().copied())
            .collect();
        for (tag, lat) in warmed.tags.iter().zip(&warmed.latencies) {
            assert!((full_map[tag] - lat).abs() < 1e-12);
        }
        assert!(warmed.latencies.len() < full.latencies.len());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let svc = deterministic_service();
        let mut engine = VpEngine::new(svc);
        let mut policy = MaxFreqPolicy;
        let arrivals = vec![
            ArrivalSpec {
                arrival_s: 1.0,
                budget_s: 0.025,
                tag: 0,
            },
            ArrivalSpec {
                arrival_s: 0.5,
                budget_s: 0.025,
                tag: 1,
            },
        ];
        simulate_core(
            &mut policy,
            &mut engine,
            &arrivals,
            &CoreSimConfig::default(),
            0,
        );
    }
}
