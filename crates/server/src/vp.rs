//! The violation-probability (VP) engine (paper §III-B).
//!
//! For a request with absolute deadline `D` processed at frequency `f`, the
//! cycles available before the deadline are `ω(D) = f · (D − T_start)`
//! (eq. 1), and the violation probability is the CCDF of the request's
//! *equivalent* work distribution at `ω(D)` — the equivalent distribution
//! of the n-th queued request being the convolution of its own work PMF
//! with those of all requests ahead of it (Fig. 5).
//!
//! Two refinements from the paper are implemented faithfully:
//!
//! * **departure instants** reuse cached self-convolutions of the work PMF
//!   ("the equivalent distributions can be reused once computed", §III-C);
//! * **arrival instants** condition the in-flight request on the cycles it
//!   has already received (`R0e` with "the distribution of the work left",
//!   §III-B) and then pay the `n` fresh convolutions the paper describes.
//!
//! The frequency-independent part of service (`t_fixed` per request) is
//! handled by shrinking the time budget before converting to cycles, per
//! the footnote-1 model.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use eprons_num::Pmf;

use crate::service::ServiceModel;

/// Tail mass below which equivalent distributions are truncated to keep
/// convolution lengths bounded.
const TRUNC_EPS: f64 = 1e-10;

/// Process-wide cache of precomputed self-convolution ladders, keyed by a
/// fingerprint of the service model. A cluster run builds one engine per
/// server (and the optimizer one cluster per candidate) over the *same*
/// service model; the paper notes the equivalent distributions "can be
/// reused once computed" (§III-C), so they are computed once per model
/// here rather than once per server × candidate.
static EQUIV_CACHE: OnceLock<Mutex<HashMap<u64, Arc<Vec<Pmf>>>>> = OnceLock::new();

fn equiv_cache() -> &'static Mutex<HashMap<u64, Arc<Vec<Pmf>>>> {
    EQUIV_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Bit-exact fingerprint of a service model: the work PMF's grid and
/// masses plus the fixed time. Two models hash equal iff every input to
/// the self-convolution recurrence is identical, which makes prefix
/// sharing invisible to results. Also a component of the
/// [`crate::memo`] server-evaluation key.
pub fn service_fingerprint(service: &ServiceModel) -> u64 {
    let mut h = DefaultHasher::new();
    let pmf = service.work_pmf();
    pmf.origin().to_bits().hash(&mut h);
    pmf.step().to_bits().hash(&mut h);
    pmf.masses().len().hash(&mut h);
    for &m in pmf.masses() {
        m.to_bits().hash(&mut h);
    }
    service.fixed_s().to_bits().hash(&mut h);
    h.finish()
}

/// Empties the shared equivalent-distribution cache (for benchmarks that
/// want to measure cold-start cost).
pub fn clear_equiv_cache() {
    equiv_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// `(distinct service models, total cached convolution levels)` currently
/// in the shared cache — introspection for tests and perfbench.
pub fn equiv_cache_stats() -> (usize, usize) {
    let map = equiv_cache().lock().unwrap_or_else(|e| e.into_inner());
    let models = map.len();
    let levels = map.values().map(|v| v.len()).sum();
    (models, levels)
}

/// Description of the head (in-service) request at a decision instant.
#[derive(Debug, Clone, Copy)]
pub struct InflightHead {
    /// Cycles (giga-cycles) already executed on the head request.
    pub done_work_gc: f64,
    /// Seconds of its frequency-independent part still outstanding.
    pub rem_fixed_s: f64,
}

/// Cached-convolution VP engine.
///
/// The n-fold self-convolution ladder is split in two: a frozen prefix
/// (`Arc`-shared with every other engine over the same service model, via
/// the process-wide cache) and a private copy-on-grow tail for levels the
/// prefix does not cover yet. Because each level is a pure function of the
/// previous one (`prev ∗ base`, truncated at [`TRUNC_EPS`]), an engine
/// computes bit-identical distributions whether it finds them in the
/// shared prefix or grows them locally — sharing changes wall-clock time,
/// never results.
#[derive(Debug, Clone)]
pub struct VpEngine {
    service: Arc<ServiceModel>,
    fingerprint: u64,
    /// Frozen shared levels: `prefix[n-1]` = n-fold self-convolution.
    prefix: Arc<Vec<Pmf>>,
    /// Locally grown levels `prefix.len()+1 ..= prefix.len()+tail.len()`.
    tail: Vec<Pmf>,
}

impl VpEngine {
    /// Creates an engine for a service model, attaching to the shared
    /// convolution prefix for that model (and seeding the shared cache
    /// with the 1-fold level on first sight).
    pub fn new(service: ServiceModel) -> Self {
        Self::shared(Arc::new(service))
    }

    /// [`VpEngine::new`] over an already-shared model: the staged cluster
    /// pipeline builds one `Arc<ServiceModel>` per scenario and hands it
    /// to every server shard of every candidate, so the work PMF is never
    /// deep-cloned per engine.
    pub fn shared(service: Arc<ServiceModel>) -> Self {
        let fingerprint = service_fingerprint(&service);
        let prefix = {
            let mut map = equiv_cache().lock().unwrap_or_else(|e| e.into_inner());
            map.entry(fingerprint)
                .or_insert_with(|| Arc::new(vec![service.work_pmf().clone()]))
                .clone()
        };
        VpEngine {
            service,
            fingerprint,
            prefix,
            tail: Vec::new(),
        }
    }

    /// The underlying service model.
    #[inline]
    pub fn service(&self) -> &ServiceModel {
        &self.service
    }

    /// Levels currently visible through the shared frozen prefix.
    #[inline]
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// Total convolution levels this engine can serve without computing
    /// (shared prefix + private tail).
    #[inline]
    pub fn cached_levels(&self) -> usize {
        self.prefix.len() + self.tail.len()
    }

    /// The cached n-fold self-convolution (n ≥ 1).
    pub fn equivalent(&mut self, n: usize) -> &Pmf {
        assert!(n >= 1, "equivalent distribution needs at least one request");
        if n <= self.prefix.len() {
            return &self.prefix[n - 1];
        }
        let base = &self.prefix[0];
        while self.prefix.len() + self.tail.len() < n {
            let prev = self
                .tail
                .last()
                .unwrap_or_else(|| self.prefix.last().expect("prefix holds at least level 1"));
            let next = prev.convolve(base).truncated(TRUNC_EPS);
            self.tail.push(next);
        }
        &self.tail[n - 1 - self.prefix.len()]
    }

    /// Publishes this engine's privately grown tail back to the shared
    /// cache, so later engines over the same model start with a longer
    /// frozen prefix. Called automatically on drop; idempotent, and a
    /// no-op when another engine already published at least as many
    /// levels (the recurrence is deterministic, so equal-length ladders
    /// are bit-identical and there is nothing to reconcile).
    pub fn publish(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let mut map = equiv_cache().lock().unwrap_or_else(|e| e.into_inner());
        let entry = map
            .entry(self.fingerprint)
            .or_insert_with(|| self.prefix.clone());
        if entry.len() < self.prefix.len() + self.tail.len() {
            let mut full = Vec::with_capacity(self.prefix.len() + self.tail.len());
            full.extend(self.prefix.iter().cloned());
            full.append(&mut self.tail);
            *entry = Arc::new(full);
        } else {
            self.tail.clear();
        }
        self.prefix = entry.clone();
    }
}

impl Drop for VpEngine {
    fn drop(&mut self) {
        self.publish();
    }
}

impl VpEngine {
    /// Builds the per-position distributions for one decision instant.
    ///
    /// `head` describes the in-flight request, if the core is busy;
    /// `deadlines` are the absolute deadlines of all pending requests in
    /// processing order (head first when in-flight). `now` is the decision
    /// time.
    pub fn decision(
        &mut self,
        now: f64,
        head: Option<InflightHead>,
        deadlines: &[f64],
    ) -> Decision {
        let fixed = self.service.fixed_s();
        let mut items: Vec<DecisionItem> = Vec::with_capacity(deadlines.len());
        match head {
            Some(h) => {
                // Remaining distribution of the head, conditioned on done
                // cycles. If the head has (numerically) exhausted its
                // support it is about to finish: treat remaining work as a
                // half-bin delta.
                let step = self.service.work_pmf().step();
                let head_rem = self
                    .service
                    .work_pmf()
                    .remaining_given_done(h.done_work_gc)
                    .unwrap_or_else(|| Pmf::delta(step / 2.0, step));
                for (i, &d) in deadlines.iter().enumerate() {
                    let dist = if i == 0 {
                        head_rem.clone()
                    } else {
                        // The paper's arrival-instant cost: one convolution
                        // per queued request behind the head.
                        head_rem.convolve(self.equivalent(i)).truncated(TRUNC_EPS)
                    };
                    items.push(DecisionItem {
                        dist,
                        budget_s: d - now - (h.rem_fixed_s + i as f64 * fixed),
                    });
                }
            }
            None => {
                for (i, &d) in deadlines.iter().enumerate() {
                    let dist = self.equivalent(i + 1).clone();
                    items.push(DecisionItem {
                        dist,
                        budget_s: d - now - (i + 1) as f64 * fixed,
                    });
                }
            }
        }
        Decision { items }
    }
}

/// One pending request's equivalent distribution and its time budget
/// (seconds until its deadline, net of all frequency-independent time that
/// must elapse first).
#[derive(Debug, Clone)]
struct DecisionItem {
    dist: Pmf,
    budget_s: f64,
}

/// The frozen state of one decision instant: query VPs at any frequency.
#[derive(Debug, Clone)]
pub struct Decision {
    items: Vec<DecisionItem>,
}

impl Decision {
    /// Number of pending requests considered.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff the queue was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Violation probability of pending request `i` at frequency `f_ghz`:
    /// `P(equivalent work > f · budget)` (eq. 1 + CCDF). A non-positive
    /// budget yields VP 1 unless the equivalent work is zero.
    pub fn vp(&self, i: usize, f_ghz: f64) -> f64 {
        let it = &self.items[i];
        if it.budget_s <= 0.0 {
            return 1.0;
        }
        it.dist.ccdf(f_ghz * it.budget_s)
    }

    /// Maximum VP across pending requests (Rubik's criterion).
    pub fn max_vp(&self, f_ghz: f64) -> f64 {
        (0..self.items.len())
            .map(|i| self.vp(i, f_ghz))
            .fold(0.0, f64::max)
    }

    /// Average VP across pending requests (the EPRONS-Server criterion:
    /// "we simply need the average VP of all queued requests to be 5%").
    pub fn avg_vp(&self, f_ghz: f64) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        (0..self.items.len())
            .map(|i| self.vp(i, f_ghz))
            .sum::<f64>()
            / self.items.len() as f64
    }

    /// Index of the *limiting request* at frequency `f_ghz` — the request
    /// with the highest VP, i.e. the one that dictates Rubik's frequency
    /// ("the frequency setting is then determined by the request with the
    /// least latency slack", §III). `None` when the queue is empty.
    pub fn limiting_index(&self, f_ghz: f64) -> Option<usize> {
        (0..self.items.len()).max_by(|&a, &b| {
            self.vp(a, f_ghz)
                .partial_cmp(&self.vp(b, f_ghz))
                .expect("VPs are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic work: exactly 2.7e-3 Gcycles per request (1 ms at
    /// 2.7 GHz), no fixed part.
    fn deterministic_engine() -> VpEngine {
        VpEngine::new(ServiceModel::new(Pmf::delta(2.7e-3, 1.0e-5), 0.0))
    }

    /// Two-point work: 1 ms or 2 ms at f_max, with equal probability.
    fn bimodal_engine() -> VpEngine {
        let pmf = Pmf::from_masses(2.7e-3, 2.7e-3, vec![0.5, 0.5]);
        VpEngine::new(ServiceModel::new(pmf, 0.0))
    }

    #[test]
    fn deterministic_vp_is_a_step() {
        let mut e = deterministic_engine();
        // One fresh request, deadline 2 ms away.
        let d = e.decision(0.0, None, &[2.0e-3]);
        // At 2.7 GHz: ω = 5.4e-3 Gc > 2.7e-3 needed → VP 0.
        assert_eq!(d.vp(0, 2.7), 0.0);
        // At 1.2 GHz: ω = 2.4e-3 < 2.7e-3 → VP 1.
        assert_eq!(d.vp(0, 1.2), 1.0);
    }

    #[test]
    fn equivalent_distributions_accumulate() {
        let mut e = deterministic_engine();
        // Three queued fresh requests, 1 ms apart deadlines.
        let d = e.decision(0.0, None, &[2.0e-3, 4.0e-3, 6.0e-3]);
        // Third request's equivalent work = 8.1e-3 Gc, budget 6 ms:
        // needs ≥ 1.35 GHz.
        assert_eq!(d.vp(2, 1.3), 1.0);
        assert_eq!(d.vp(2, 1.4), 0.0);
    }

    #[test]
    fn vp_monotone_decreasing_in_frequency() {
        let mut e = bimodal_engine();
        let d = e.decision(0.0, None, &[3.0e-3, 5.0e-3]);
        let mut prev = f64::INFINITY;
        for i in 0..=15 {
            let f = 1.2 + 0.1 * i as f64;
            let v = d.max_vp(f);
            assert!(v <= prev + 1e-12, "VP must not rise with frequency");
            prev = v;
        }
    }

    #[test]
    fn avg_vp_between_min_and_max() {
        let mut e = bimodal_engine();
        let d = e.decision(0.0, None, &[2.0e-3, 3.0e-3, 4.0e-3]);
        for i in 0..=15 {
            let f = 1.2 + 0.1 * i as f64;
            let avg = d.avg_vp(f);
            let max = d.max_vp(f);
            let min = (0..d.len()).map(|i| d.vp(i, f)).fold(1.0, f64::min);
            assert!(avg <= max + 1e-12 && avg >= min - 1e-12);
        }
    }

    #[test]
    fn fig4_average_allows_lower_frequency() {
        // The paper's Fig. 4 situation: R1 needs a low frequency, R2e a
        // higher one. The average-VP criterion admits a frequency between
        // the two; the max-VP criterion must use the higher.
        let mut e = bimodal_engine();
        // R1 has a roomy deadline (VP 0 everywhere); R2's equivalent is
        // tight: VP(1.2 GHz) = 0.5, crossing the target near 1.4 GHz.
        let d = e.decision(0.0, None, &[6.0e-3, 5.625e-3]);
        let target = 0.3;
        let ladder = crate::freq::FreqLadder::paper_default();
        let f_max_crit = ladder.lowest_satisfying(|f| d.max_vp(f) <= target);
        let f_avg_crit = ladder.lowest_satisfying(|f| d.avg_vp(f) <= target);
        assert!(
            f_avg_crit < f_max_crit,
            "average criterion ({f_avg_crit}) should beat max criterion ({f_max_crit})"
        );
    }

    #[test]
    fn inflight_conditioning_reduces_remaining_work() {
        let mut e = bimodal_engine();
        // Head has already executed 3e-3 Gc: it must be the 5.4e-3 Gc
        // variant, 2.4e-3 Gc left. Budget 1 ms → needs 2.4 GHz.
        let head = InflightHead {
            done_work_gc: 3.0e-3,
            rem_fixed_s: 0.0,
        };
        let d = e.decision(0.0, Some(head), &[1.0e-3]);
        assert_eq!(d.vp(0, 2.3), 1.0);
        assert_eq!(d.vp(0, 2.5), 0.0);
    }

    #[test]
    fn exhausted_head_counts_as_nearly_done() {
        let mut e = deterministic_engine();
        let head = InflightHead {
            done_work_gc: 10.0e-3, // beyond the 2.7e-3 Gc support
            rem_fixed_s: 0.0,
        };
        let d = e.decision(0.0, Some(head), &[1.0e-3]);
        // Nearly-zero remaining work: even the lowest frequency meets it.
        assert!(d.vp(0, 1.2) < 1e-9);
    }

    #[test]
    fn fixed_time_shrinks_budget() {
        // 1 ms fixed + 2.7e-3 Gc work; deadline 2 ms → only 1 ms of cycles.
        let mut e = VpEngine::new(ServiceModel::new(Pmf::delta(2.7e-3, 1.0e-5), 1.0e-3));
        let d = e.decision(0.0, None, &[2.0e-3]);
        assert_eq!(d.vp(0, 2.6), 1.0); // 2.6 GHz × 1 ms = 2.6e-3 < 2.7e-3
        assert_eq!(d.vp(0, 2.7), 0.0);
    }

    #[test]
    fn past_deadline_is_certain_violation() {
        let mut e = deterministic_engine();
        let d = e.decision(10.0, None, &[9.0]);
        assert_eq!(d.vp(0, 2.7), 1.0);
    }

    #[test]
    fn empty_queue_has_zero_avg_vp() {
        let mut e = deterministic_engine();
        let d = e.decision(0.0, None, &[]);
        assert!(d.is_empty());
        assert_eq!(d.avg_vp(2.0), 0.0);
        assert_eq!(d.max_vp(2.0), 0.0);
    }

    #[test]
    fn limiting_request_is_the_tightest() {
        let mut e = bimodal_engine();
        // Second request's equivalent is much tighter than the first's.
        let d = e.decision(0.0, None, &[50.0e-3, 5.0e-3]);
        assert_eq!(d.limiting_index(2.0), Some(1));
        let empty = e.decision(0.0, None, &[]);
        assert_eq!(empty.limiting_index(2.0), None);
    }

    #[test]
    fn equivalent_cache_extends_lazily() {
        let mut e = deterministic_engine();
        let mean1 = e.equivalent(1).mean();
        let mean5 = e.equivalent(5).mean();
        assert!((mean5 - 5.0 * mean1).abs() < 1e-6);
    }
}
