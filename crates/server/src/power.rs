//! CPU power model from the paper's measurements (§V-A).
//!
//! Measured on a 12-core Xeon E5-2697 v2: a core draws 1.4 W at 1.2 GHz
//! and 4.4 W at 2.7 GHz. We fit the classic `P(f) = P_leak + c·f³`
//! (dynamic power ∝ V²f with V roughly ∝ f) through those two points:
//! `c = 3.0 / (2.7³ − 1.2³) ≈ 0.1671`, `P_leak ≈ 1.111 W`. Static
//! (non-CPU) server power is 20 W, scaled from a Huawei XH320 V2 \[22\].

/// Per-core + per-server power model.
#[derive(Debug, Clone)]
pub struct CpuPowerModel {
    /// Leakage (frequency-independent) watts per active core.
    pub leak_w: f64,
    /// Cubic coefficient: dynamic watts per GHz³.
    pub cubic_coeff: f64,
    /// Watts drawn by an idle core (no request in service). Defaults to
    /// the busy power at the ladder minimum — the paper's DVFS-only setting
    /// (no sleep states; cores idle at the lowest P-state).
    pub idle_w: f64,
    /// Cores per server CPU (12 in the paper).
    pub cores: usize,
    /// Static watts per server (motherboard, memory, …): 20 W.
    pub static_w: f64,
}

impl Default for CpuPowerModel {
    fn default() -> Self {
        // Fit through (1.2 GHz, 1.4 W) and (2.7 GHz, 4.4 W).
        let cubic_coeff = 3.0 / (2.7f64.powi(3) - 1.2f64.powi(3));
        let leak_w = 1.4 - cubic_coeff * 1.2f64.powi(3);
        CpuPowerModel {
            leak_w,
            cubic_coeff,
            idle_w: 1.4,
            cores: 12,
            static_w: 20.0,
        }
    }
}

impl CpuPowerModel {
    /// Busy power of one core at `f_ghz`.
    pub fn core_busy_w(&self, f_ghz: f64) -> f64 {
        self.leak_w + self.cubic_coeff * f_ghz.powi(3)
    }

    /// Idle power of one core.
    #[inline]
    pub fn core_idle_w(&self) -> f64 {
        self.idle_w
    }

    /// Average per-core power given a utilization (busy fraction) and the
    /// busy frequency.
    pub fn core_avg_w(&self, busy_fraction: f64, f_ghz: f64) -> f64 {
        let b = busy_fraction.clamp(0.0, 1.0);
        b * self.core_busy_w(f_ghz) + (1.0 - b) * self.idle_w
    }

    /// Whole-server power when each core averages `core_w`:
    /// `static + cores × core_w`.
    pub fn server_w(&self, core_w: f64) -> f64 {
        self.static_w + self.cores as f64 * core_w
    }

    /// Peak server power (all cores busy at `f_max`).
    pub fn server_peak_w(&self, f_max_ghz: f64) -> f64 {
        self.server_w(self.core_busy_w(f_max_ghz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_measurements() {
        let m = CpuPowerModel::default();
        assert!((m.core_busy_w(1.2) - 1.4).abs() < 1e-9);
        assert!((m.core_busy_w(2.7) - 4.4).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_and_convex_in_frequency() {
        let m = CpuPowerModel::default();
        let mut prev = 0.0;
        let mut prev_delta = 0.0;
        for i in 0..=15 {
            let f = 1.2 + 0.1 * i as f64;
            let p = m.core_busy_w(f);
            assert!(p > prev, "monotone");
            if i >= 2 {
                assert!(p - prev >= prev_delta - 1e-12, "convex (cubic)");
            }
            prev_delta = p - prev;
            prev = p;
        }
    }

    #[test]
    fn slowing_down_saves_energy_per_cycle() {
        // Energy per giga-cycle = P(f)/f must decrease toward lower f
        // (that is why DVFS pays off at all).
        let m = CpuPowerModel::default();
        assert!(m.core_busy_w(1.2) / 1.2 < m.core_busy_w(2.7) / 2.7);
    }

    #[test]
    fn average_power_interpolates() {
        let m = CpuPowerModel::default();
        let avg = m.core_avg_w(0.5, 2.7);
        assert!((avg - (0.5 * 4.4 + 0.5 * 1.4)).abs() < 1e-9);
        assert_eq!(m.core_avg_w(0.0, 2.7), m.core_idle_w());
        assert!((m.core_avg_w(1.0, 2.7) - 4.4).abs() < 1e-9);
    }

    #[test]
    fn server_power_composition() {
        let m = CpuPowerModel::default();
        // 12 cores flat out at 2.7 GHz: 20 + 12·4.4 = 72.8 W.
        assert!((m.server_peak_w(2.7) - 72.8).abs() < 1e-9);
        assert!((m.server_w(0.0) - 20.0).abs() < 1e-12);
    }
}
