//! The DVFS frequency ladder.
//!
//! The paper's platform exposes 1.2–2.7 GHz in 100 MHz steps (§V-A). The
//! ladder is ordered ascending; policies binary-search it because every VP
//! criterion used here is monotone in frequency (more cycles by the
//! deadline can only lower the violation probability).

/// An ascending list of available core frequencies in GHz.
///
/// ```
/// use eprons_server::FreqLadder;
/// let ladder = FreqLadder::paper_default(); // 1.2..=2.7 GHz, 100 MHz steps
/// assert_eq!(ladder.len(), 16);
/// // Binary-search the lowest frequency satisfying a monotone predicate:
/// let f = ladder.lowest_satisfying(|f| f * 0.010 >= 0.019); // ≥1.9 GHz
/// assert!((f - 1.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FreqLadder {
    freqs: Vec<f64>,
}

impl FreqLadder {
    /// Builds a ladder from arbitrary ascending frequencies.
    ///
    /// # Panics
    /// Panics if empty, non-ascending, or non-positive.
    pub fn new(freqs: Vec<f64>) -> Self {
        assert!(!freqs.is_empty(), "ladder must have at least one step");
        assert!(freqs[0] > 0.0, "frequencies must be positive");
        assert!(
            freqs.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending"
        );
        FreqLadder { freqs }
    }

    /// The paper's ladder: 1.2, 1.3, …, 2.7 GHz (16 steps).
    pub fn paper_default() -> Self {
        let freqs = (0..16).map(|i| 1.2 + 0.1 * i as f64).collect();
        FreqLadder::new(freqs)
    }

    /// All steps, ascending.
    #[inline]
    pub fn steps(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` iff the ladder has no steps (never, post-construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Lowest frequency.
    #[inline]
    pub fn min(&self) -> f64 {
        self.freqs[0]
    }

    /// Highest frequency.
    #[inline]
    pub fn max(&self) -> f64 {
        *self.freqs.last().expect("non-empty")
    }

    /// Frequency at step `i`.
    #[inline]
    pub fn at(&self, i: usize) -> f64 {
        self.freqs[i]
    }

    /// Index of the step equal-or-above `f`, clamped to the top.
    pub fn index_at_or_above(&self, f: f64) -> usize {
        self.freqs
            .partition_point(|&x| x < f - 1e-12)
            .min(self.freqs.len() - 1)
    }

    /// The lowest frequency for which `ok` holds, assuming `ok` is monotone
    /// (false…false true…true as frequency rises). Returns the maximum
    /// frequency if no step satisfies it (policies then run flat out — the
    /// paper's behavior when even f_max cannot meet the deadline).
    pub fn lowest_satisfying(&self, mut ok: impl FnMut(f64) -> bool) -> f64 {
        // Binary search for the first true.
        let (mut lo, mut hi) = (0usize, self.freqs.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if ok(self.freqs[mid]) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if lo == self.freqs.len() {
            self.max()
        } else {
            self.freqs[lo]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_shape() {
        let l = FreqLadder::paper_default();
        assert_eq!(l.len(), 16);
        assert!((l.min() - 1.2).abs() < 1e-12);
        assert!((l.max() - 2.7).abs() < 1e-9);
        // 100 MHz steps.
        for w in l.steps().windows(2) {
            assert!((w[1] - w[0] - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn lowest_satisfying_binary_search() {
        let l = FreqLadder::paper_default();
        // Threshold predicate: f >= 1.85 → first true step is 1.9.
        let f = l.lowest_satisfying(|f| f >= 1.85);
        assert!((f - 1.9).abs() < 1e-9);
        // Everything satisfies → min.
        assert_eq!(l.lowest_satisfying(|_| true), l.min());
        // Nothing satisfies → max (run flat out).
        assert_eq!(l.lowest_satisfying(|_| false), l.max());
    }

    #[test]
    fn index_at_or_above() {
        let l = FreqLadder::paper_default();
        assert_eq!(l.index_at_or_above(1.2), 0);
        assert_eq!(l.index_at_or_above(1.25), 1);
        assert_eq!(l.index_at_or_above(2.7), 15);
        assert_eq!(l.index_at_or_above(9.9), 15);
        assert_eq!(l.index_at_or_above(0.1), 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted() {
        FreqLadder::new(vec![2.0, 1.0]);
    }

    #[test]
    fn lowest_satisfying_counts_calls_logarithmically() {
        let l = FreqLadder::paper_default();
        let mut calls = 0;
        let _ = l.lowest_satisfying(|f| {
            calls += 1;
            f >= 2.0
        });
        assert!(
            calls <= 5,
            "binary search should need ≤ ⌈log2(16)⌉+1 calls, used {calls}"
        );
    }
}
