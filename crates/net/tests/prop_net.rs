//! Property-based tests for consolidation and the latency model
//! (deterministic seeded cases via `eprons-proplite`).

use eprons_net::consolidate::AggregationRouter;
use eprons_net::flow::FlowSet;
use eprons_net::queuesim::simulate_mm1;
use eprons_net::{
    ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, LatencyModel,
    NetworkPowerModel, PathArena, PathMilpConsolidator,
};
use eprons_proplite::{cases, Gen};
use eprons_sim::SimRng;
use eprons_topo::{AggregationLevel, FatTree, LeafSpine, MultipathTopology};

/// A random feasible flow set: small latency-sensitive flows plus a few
/// moderate elephants on a 4-ary tree.
fn random_flows(g: &mut Gen) -> Vec<(usize, usize, f64, bool)> {
    loop {
        let n = g.usize_in(1, 23);
        let v: Vec<(usize, usize, f64, bool)> = (0..n)
            .map(|_| {
                (
                    g.usize_in(0, 15),
                    g.usize_in(0, 15),
                    g.f64_in(5.0, 80.0),
                    g.bool(),
                )
            })
            .filter(|(a, b, _, _)| a != b)
            .collect();
        if !v.is_empty() {
            return v;
        }
    }
}

fn build(ft: &FatTree, spec: &[(usize, usize, f64, bool)]) -> FlowSet {
    let hosts = ft.hosts();
    let mut fs = FlowSet::new();
    for &(a, b, d, sensitive) in spec {
        fs.add(
            hosts[a],
            hosts[b],
            d,
            if sensitive {
                FlowClass::LatencySensitive
            } else {
                FlowClass::LatencyTolerant
            },
        );
    }
    fs
}

#[test]
fn greedy_assignments_validate() {
    cases(48, |g, case| {
        let spec = random_flows(g);
        let k = g.f64_in(1.0, 3.0);
        let ft = FatTree::new(4, 1000.0);
        let flows = build(&ft, &spec);
        let cfg = ConsolidationConfig::with_k(k);
        if let Ok(a) = GreedyConsolidator.consolidate(&ft, &flows, &cfg) {
            assert!(
                a.validate(&ft, &flows, &cfg).is_ok(),
                "case {case}: {:?}",
                a.validate(&ft, &flows, &cfg)
            );
            // Power never exceeds the fully-on network.
            let pm = NetworkPowerModel::default();
            assert!(
                a.network_power_w(&ft, &pm) <= pm.full_power_w(ft.topology()) + 1e-9,
                "case {case}"
            );
        }
    });
}

#[test]
fn greedy_never_uses_more_switches_than_all_on() {
    cases(48, |g, case| {
        let spec = random_flows(g);
        let ft = FatTree::new(4, 1000.0);
        let flows = build(&ft, &spec);
        let cfg = ConsolidationConfig::with_k(1.0);
        if let Ok(a) = GreedyConsolidator.consolidate(&ft, &flows, &cfg) {
            assert!(a.active_switch_count(&ft) <= 20, "case {case}");
            // Loads on host uplinks equal the per-host demand sums.
            let mut out = [0.0; 16];
            for f in flows.flows() {
                let idx = ft.hosts().iter().position(|&h| h == f.src).unwrap();
                out[idx] += f.demand_mbps;
            }
            for (i, &h) in ft.hosts().iter().enumerate() {
                let up = ft.host_uplink(h);
                let from_dir = eprons_net::links::direction_from(ft.topology(), up, h);
                assert!(
                    (a.state().load_dir(up, from_dir) - out[i]).abs() < 1e-6,
                    "case {case}: uplink load mismatch at host {i}"
                );
            }
        }
    });
}

#[test]
fn aggregation_router_stays_on_preset() {
    cases(48, |g, case| {
        let spec = random_flows(g);
        let level_idx = g.usize_in(0, 3);
        let ft = FatTree::new(4, 1000.0);
        let flows = build(&ft, &spec);
        let level = AggregationLevel::from_index(level_idx);
        let router = AggregationRouter::for_level(&ft, level);
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = router.consolidate(&ft, &flows, &cfg).unwrap();
        let active = level.active_switches(&ft);
        for p in a.iter_paths() {
            for &n in p.interior() {
                assert!(active.contains(&n), "case {case}: {level:?} breached");
            }
        }
        assert_eq!(a.active_switch_count(&ft), active.len(), "case {case}");
    });
}

#[test]
fn warm_consolidation_matches_cold_power_on_random_demand_matrices() {
    // Warm-start chaining over a K ladder is an *incumbent seed*, never a
    // constraint: whatever previous choices are fed in — valid ones from
    // an adjacent K, stale garbage, or nothing — the consolidator must
    // land on an assignment with the same optimal network power, and the
    // assignment must validate. Randomized over fat-tree demand matrices.
    cases(8, |g, case| {
        let spec: Vec<(usize, usize, f64, bool)> = random_flows(g)
            .into_iter()
            .take(3) // keep the MILP small enough for a property sweep
            .collect();
        let garbage = g.usize_in(0, 99);
        let ft = FatTree::new(4, 1000.0);
        let arena = PathArena::build(&ft);
        let flows = build(&ft, &spec);
        let solver = PathMilpConsolidator::default();
        let pm = NetworkPowerModel::default();
        let k_ladder = [1.0, 1.5];
        let mut prev: Option<Vec<usize>> = None;
        for k in k_ladder {
            let cfg = ConsolidationConfig::with_k(k);
            let cold = solver.consolidate(&arena, &flows, &cfg);
            let warm = solver.consolidate_warm(&arena, &flows, &cfg, prev.as_deref());
            match (cold, warm) {
                (Ok(c), Ok((w, choices))) => {
                    assert!(w.validate(&arena, &flows, &cfg).is_ok(), "case {case}");
                    let (cp, wp) = (c.network_power_w(&ft, &pm), w.network_power_w(&ft, &pm));
                    assert!(
                        (cp - wp).abs() < 1e-6,
                        "case {case} k={k}: warm power {wp} != cold {cp}"
                    );
                    prev = Some(choices);
                }
                (Err(_), Err(_)) => prev = None,
                (c, w) => panic!("case {case} k={k}: cold/warm disagree: {c:?} vs {w:?}"),
            }
        }
        // A stale hint of the wrong shape must degrade silently to the
        // cold answer, not fail or corrupt the solution.
        let cfg = ConsolidationConfig::with_k(1.0);
        let junk = vec![garbage; flows.len() + 3];
        if let (Ok(c), Ok((w, _))) = (
            solver.consolidate(&arena, &flows, &cfg),
            solver.consolidate_warm(&arena, &flows, &cfg, Some(&junk)),
        ) {
            let (cp, wp) = (c.network_power_w(&ft, &pm), w.network_power_w(&ft, &pm));
            assert!(
                (cp - wp).abs() < 1e-6,
                "case {case}: junk hint changed power"
            );
        }
    });
}

#[test]
fn latency_model_is_monotone_and_sampling_positive() {
    cases(48, |g, case| {
        let base = g.f64_in(10.0, 500.0);
        let coeff = g.f64_in(10.0, 500.0);
        let seed = g.u64();
        let m = LatencyModel {
            base_us: base,
            queue_coeff_us: coeff,
            max_utilization: 0.98,
        };
        let mut prev = 0.0;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let v = m.per_hop_mean_us(u);
            assert!(v >= prev, "case {case}");
            prev = v;
        }
        let mut rng = SimRng::seed_from_u64(seed);
        for i in 0..16 {
            let u = i as f64 / 16.0;
            let s = m.sample_path_latency_us(&mut rng, &[u, u / 2.0]);
            assert!(
                s >= 2.0 * base - 1e-9,
                "case {case}: below deterministic floor"
            );
        }
    });
}

#[test]
fn flow_scaling_only_touches_sensitive_class() {
    cases(48, |g, case| {
        let d = g.f64_in(1.0, 500.0);
        let k = g.f64_in(1.0, 5.0);
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        let a = fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            d,
            FlowClass::LatencySensitive,
        );
        let b = fs.add(
            ft.host(0, 0, 1),
            ft.host(1, 0, 1),
            d,
            FlowClass::LatencyTolerant,
        );
        assert!(
            (fs.get(a).scaled_demand(k) - d * k).abs() < 1e-9,
            "case {case}"
        );
        assert!((fs.get(b).scaled_demand(k) - d).abs() < 1e-9, "case {case}");
    });
}

#[test]
fn leafspine_candidate_paths_are_consistent() {
    cases(32, |g, case| {
        let leaves = g.usize_in(2, 4);
        let spines = g.usize_in(1, 4);
        let hpl = g.usize_in(1, 3);
        let sa = g.usize_in(0, 63);
        let sb = g.usize_in(0, 63);
        let ls = LeafSpine::new(leaves, spines, hpl, 1000.0);
        let hosts = ls.host_list();
        let a = hosts[sa % hosts.len()];
        let b = hosts[sb % hosts.len()];
        if a == b {
            return;
        }
        let paths = ls.candidate_paths(a, b);
        let expected = if ls.host_leaf(a) == ls.host_leaf(b) {
            1
        } else {
            spines
        };
        assert_eq!(paths.len(), expected, "case {case}");
        for p in &paths {
            assert!(p.is_consistent(ls.topology()), "case {case}");
            assert_eq!(p.src(), a, "case {case}");
            assert_eq!(p.dst(), b, "case {case}");
        }
    });
}

#[test]
fn greedy_works_on_random_leafspine_instances() {
    cases(32, |g, case| {
        let seed = g.u64() % 1000;
        let n_flows = g.usize_in(1, 9);
        let ls = LeafSpine::new(3, 2, 3, 1000.0);
        let hosts = ls.host_list().to_vec();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut fs = FlowSet::new();
        for _ in 0..n_flows {
            let a = rng.index(hosts.len());
            let mut b = rng.index(hosts.len());
            while b == a {
                b = rng.index(hosts.len());
            }
            fs.add(
                hosts[a],
                hosts[b],
                rng.uniform_range(5.0, 100.0),
                FlowClass::LatencySensitive,
            );
        }
        let cfg = ConsolidationConfig::with_k(1.5);
        if let Ok(a) = GreedyConsolidator.consolidate(&ls, &fs, &cfg) {
            assert!(a.validate(&ls, &fs, &cfg).is_ok(), "case {case}");
        }
    });
}

#[test]
fn mm1_sojourn_grows_with_utilization() {
    cases(32, |g, case| {
        let seed = g.u64() % 100;
        let low = simulate_mm1(20.0, 100.0, 5_000, seed).mean_s();
        let high = simulate_mm1(80.0, 100.0, 5_000, seed).mean_s();
        assert!(
            high > low,
            "case {case}: queueing must grow with load: {low} vs {high}"
        );
    });
}
