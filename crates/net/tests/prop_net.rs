//! Property-based tests for consolidation and the latency model.

use eprons_net::consolidate::AggregationRouter;
use eprons_net::flow::FlowSet;
use eprons_net::{
    ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, LatencyModel,
    NetworkPowerModel,
};
use eprons_net::queuesim::simulate_mm1;
use eprons_sim::SimRng;
use eprons_topo::{AggregationLevel, FatTree, LeafSpine, MultipathTopology};
use proptest::prelude::*;

/// A random feasible flow set: small latency-sensitive flows plus a few
/// moderate elephants on a 4-ary tree.
fn random_flows() -> impl Strategy<Value = Vec<(usize, usize, f64, bool)>> {
    prop::collection::vec(
        (0usize..16, 0usize..16, 5.0..80.0f64, any::<bool>()),
        1..24,
    )
    .prop_map(|v| {
        v.into_iter()
            .filter(|(a, b, _, _)| a != b)
            .collect::<Vec<_>>()
    })
    .prop_filter("need at least one flow", |v| !v.is_empty())
}

fn build(ft: &FatTree, spec: &[(usize, usize, f64, bool)]) -> FlowSet {
    let hosts = ft.hosts();
    let mut fs = FlowSet::new();
    for &(a, b, d, sensitive) in spec {
        fs.add(
            hosts[a],
            hosts[b],
            d,
            if sensitive {
                FlowClass::LatencySensitive
            } else {
                FlowClass::LatencyTolerant
            },
        );
    }
    fs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_assignments_validate(spec in random_flows(), k in 1.0..3.0f64) {
        let ft = FatTree::new(4, 1000.0);
        let flows = build(&ft, &spec);
        let cfg = ConsolidationConfig::with_k(k);
        if let Ok(a) = GreedyConsolidator.consolidate(&ft, &flows, &cfg) {
            prop_assert!(a.validate(&ft, &flows, &cfg).is_ok(),
                "{:?}", a.validate(&ft, &flows, &cfg));
            // Power never exceeds the fully-on network.
            let pm = NetworkPowerModel::default();
            prop_assert!(a.network_power_w(&ft, &pm) <= pm.full_power_w(ft.topology()) + 1e-9);
        }
    }

    #[test]
    fn greedy_never_uses_more_switches_than_all_on(spec in random_flows()) {
        let ft = FatTree::new(4, 1000.0);
        let flows = build(&ft, &spec);
        let cfg = ConsolidationConfig::with_k(1.0);
        if let Ok(a) = GreedyConsolidator.consolidate(&ft, &flows, &cfg) {
            prop_assert!(a.active_switch_count(&ft) <= 20);
            // Loads on host uplinks equal the per-host demand sums.
            let mut out = [0.0; 16];
            for f in flows.flows() {
                let idx = ft.hosts().iter().position(|&h| h == f.src).unwrap();
                out[idx] += f.demand_mbps;
            }
            for (i, &h) in ft.hosts().iter().enumerate() {
                let up = ft.host_uplink(h);
                let from_dir = eprons_net::links::direction_from(ft.topology(), up, h);
                prop_assert!(
                    (a.state().load_dir(up, from_dir) - out[i]).abs() < 1e-6,
                    "uplink load mismatch at host {i}"
                );
            }
        }
    }

    #[test]
    fn aggregation_router_stays_on_preset(spec in random_flows(), level_idx in 0usize..4) {
        let ft = FatTree::new(4, 1000.0);
        let flows = build(&ft, &spec);
        let level = AggregationLevel::from_index(level_idx);
        let router = AggregationRouter::for_level(&ft, level);
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = router.consolidate(&ft, &flows, &cfg).unwrap();
        let active = level.active_switches(&ft);
        for p in a.paths() {
            for &n in p.interior() {
                prop_assert!(active.contains(&n), "{level:?} breached");
            }
        }
        prop_assert_eq!(a.active_switch_count(&ft), active.len());
    }

    #[test]
    fn latency_model_is_monotone_and_sampling_positive(
        base in 10.0..500.0f64,
        coeff in 10.0..500.0f64,
        seed in any::<u64>()
    ) {
        let m = LatencyModel { base_us: base, queue_coeff_us: coeff, max_utilization: 0.98 };
        let mut prev = 0.0;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let v = m.per_hop_mean_us(u);
            prop_assert!(v >= prev);
            prev = v;
        }
        let mut rng = SimRng::seed_from_u64(seed);
        for i in 0..16 {
            let u = i as f64 / 16.0;
            let s = m.sample_path_latency_us(&mut rng, &[u, u / 2.0]);
            prop_assert!(s >= 2.0 * base - 1e-9, "below deterministic floor");
        }
    }

    #[test]
    fn flow_scaling_only_touches_sensitive_class(d in 1.0..500.0f64, k in 1.0..5.0f64) {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        let a = fs.add(ft.host(0,0,0), ft.host(1,0,0), d, FlowClass::LatencySensitive);
        let b = fs.add(ft.host(0,0,1), ft.host(1,0,1), d, FlowClass::LatencyTolerant);
        prop_assert!((fs.get(a).scaled_demand(k) - d * k).abs() < 1e-9);
        prop_assert!((fs.get(b).scaled_demand(k) - d).abs() < 1e-9);
    }
}


proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn leafspine_candidate_paths_are_consistent(
        leaves in 2usize..5, spines in 1usize..5, hpl in 1usize..4,
        sa in 0usize..64, sb in 0usize..64
    ) {
        let ls = LeafSpine::new(leaves, spines, hpl, 1000.0);
        let hosts = ls.host_list();
        let a = hosts[sa % hosts.len()];
        let b = hosts[sb % hosts.len()];
        prop_assume!(a != b);
        let paths = ls.candidate_paths(a, b);
        let expected = if ls.host_leaf(a) == ls.host_leaf(b) { 1 } else { spines };
        prop_assert_eq!(paths.len(), expected);
        for p in &paths {
            prop_assert!(p.is_consistent(ls.topology()));
            prop_assert_eq!(p.src(), a);
            prop_assert_eq!(p.dst(), b);
        }
    }

    #[test]
    fn greedy_works_on_random_leafspine_instances(
        seed in 0u64..1000, n_flows in 1usize..10
    ) {
        let ls = LeafSpine::new(3, 2, 3, 1000.0);
        let hosts = ls.host_list().to_vec();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut fs = FlowSet::new();
        for _ in 0..n_flows {
            let a = rng.index(hosts.len());
            let mut b = rng.index(hosts.len());
            while b == a { b = rng.index(hosts.len()); }
            fs.add(hosts[a], hosts[b], rng.uniform_range(5.0, 100.0),
                   FlowClass::LatencySensitive);
        }
        let cfg = ConsolidationConfig::with_k(1.5);
        if let Ok(a) = GreedyConsolidator.consolidate(&ls, &fs, &cfg) {
            prop_assert!(a.validate(&ls, &fs, &cfg).is_ok());
        }
    }

    #[test]
    fn mm1_sojourn_grows_with_utilization(seed in 0u64..100) {
        let low = simulate_mm1(20.0, 100.0, 5_000, seed).mean_s();
        let high = simulate_mm1(80.0, 100.0, 5_000, seed).mean_s();
        prop_assert!(high > low, "queueing must grow with load: {} vs {}", low, high);
    }
}
