//! Topology independence: the same consolidators run on a leaf–spine
//! fabric (paper §IV-B: "our optimization model is independent of the
//! network topology").

use eprons_net::flow::FlowSet;
use eprons_net::{
    ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator, NetworkPowerModel,
    PathMilpConsolidator,
};
use eprons_topo::LeafSpine;

fn fabric() -> LeafSpine {
    LeafSpine::new(4, 3, 4, 1000.0) // 16 hosts, 4 leaves, 3 spines
}

fn small_flows(ls: &LeafSpine) -> FlowSet {
    let mut fs = FlowSet::new();
    fs.add(
        ls.host(0, 0),
        ls.host(1, 0),
        800.0,
        FlowClass::LatencyTolerant,
    );
    fs.add(
        ls.host(0, 1),
        ls.host(2, 0),
        20.0,
        FlowClass::LatencySensitive,
    );
    fs.add(
        ls.host(3, 0),
        ls.host(1, 1),
        20.0,
        FlowClass::LatencySensitive,
    );
    fs.add(
        ls.host(2, 1),
        ls.host(2, 2),
        50.0,
        FlowClass::LatencySensitive,
    );
    fs
}

#[test]
fn greedy_consolidates_to_minimal_spines() {
    let ls = fabric();
    let fs = small_flows(&ls);
    let cfg = ConsolidationConfig::with_k(1.0);
    let a = GreedyConsolidator.consolidate(&ls, &fs, &cfg).unwrap();
    a.validate(&ls, &fs, &cfg).unwrap();
    // All cross-leaf traffic fits through one spine: 4 leaves + 1 spine on.
    // (The same-leaf flow activates no spine.)
    assert_eq!(a.active_switch_count(&ls), 5);
}

#[test]
fn k_scaling_activates_more_spines() {
    let ls = fabric();
    let fs = small_flows(&ls);
    // At K=15 the 20 Mbps flows reserve 300 each: 800+300 > 950 usable,
    // so they must leave the elephant's spine.
    let k1 = GreedyConsolidator
        .consolidate(&ls, &fs, &ConsolidationConfig::with_k(1.0))
        .unwrap();
    let k15 = GreedyConsolidator
        .consolidate(&ls, &fs, &ConsolidationConfig::with_k(15.0))
        .unwrap();
    assert!(
        k15.active_switch_count(&ls) > k1.active_switch_count(&ls),
        "larger K must open more spines: {} vs {}",
        k15.active_switch_count(&ls),
        k1.active_switch_count(&ls)
    );
}

#[test]
fn milp_matches_or_beats_greedy_on_leafspine() {
    let ls = fabric();
    let fs = small_flows(&ls);
    let power = NetworkPowerModel::default();
    for k in [1.0, 5.0, 15.0] {
        let cfg = ConsolidationConfig::with_k(k);
        let exact = PathMilpConsolidator::default()
            .consolidate(&ls, &fs, &cfg)
            .unwrap();
        exact.validate(&ls, &fs, &cfg).unwrap();
        let heur = GreedyConsolidator.consolidate(&ls, &fs, &cfg).unwrap();
        assert!(
            exact.network_power_w(&ls, &power) <= heur.network_power_w(&ls, &power) + 1e-6,
            "K={k}: MILP must not lose to greedy on leaf-spine"
        );
    }
}

#[test]
fn same_leaf_traffic_needs_no_spine() {
    let ls = fabric();
    let mut fs = FlowSet::new();
    fs.add(
        ls.host(1, 0),
        ls.host(1, 3),
        500.0,
        FlowClass::LatencyTolerant,
    );
    let cfg = ConsolidationConfig::with_k(1.0);
    let a = GreedyConsolidator.consolidate(&ls, &fs, &cfg).unwrap();
    // One leaf switch only.
    assert_eq!(a.active_switch_count(&ls), 1);
    for &sp in ls.spines() {
        assert!(!a.state().node_on(sp), "spine should stay dark");
    }
}
