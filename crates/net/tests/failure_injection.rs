//! Failure injection: switch failures against consolidated assignments.
//!
//! The paper's §IV-B "backup paths" remark is exercised here as runtime
//! repair: kill an active switch, re-route the victims, verify the
//! network still carries everything (possibly on newly woken switches).

use eprons_net::consolidate::AggregationRouter;
use eprons_net::flow::FlowSet;
use eprons_net::{
    Assignment, ConsolidationConfig, Consolidator, DegradationPolicy, FlowClass,
    GreedyConsolidator, NetworkPowerModel,
};
use eprons_sim::SimRng;
use eprons_topo::{AggregationLevel, FatTree, NodeId, Path};

/// Everything observable about an assignment, for bit-equality checks:
/// per-flow paths, per-node power state, per-link power state, and
/// per-link directional loads.
#[allow(clippy::type_complexity)]
fn snapshot(
    ft: &FatTree,
    fs: &FlowSet,
    a: &Assignment,
) -> (Vec<Path>, Vec<bool>, Vec<bool>, Vec<(f64, f64)>) {
    let topo = ft.topology();
    let paths = fs.flows().iter().map(|f| a.path(f.id).to_path()).collect();
    let nodes = topo.nodes().map(|(id, _)| a.state().node_on(id)).collect();
    let links = topo.links().map(|(id, _)| a.state().link_on(id)).collect();
    let loads = topo
        .links()
        .map(|(id, _)| (a.state().load_dir(id, 0), a.state().load_dir(id, 1)))
        .collect();
    (paths, nodes, links, loads)
}

fn consolidated() -> (
    FatTree,
    FlowSet,
    eprons_net::Assignment,
    ConsolidationConfig,
) {
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    let hosts = ft.hosts().to_vec();
    let mut rng = SimRng::seed_from_u64(90);
    for _ in 0..12 {
        let a = rng.index(hosts.len());
        let mut b = rng.index(hosts.len());
        while b == a {
            b = rng.index(hosts.len());
        }
        fs.add(hosts[a], hosts[b], 40.0, FlowClass::LatencySensitive);
    }
    let cfg = ConsolidationConfig::with_k(1.0);
    let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    (ft, fs, a, cfg)
}

#[test]
fn killing_the_shared_core_reroutes_all_victims() {
    let (ft, fs, mut a, _cfg) = consolidated();
    // Greedy packs everything onto core(0,0); kill it.
    let core = ft.core(0, 0);
    assert!(a.state().node_on(core), "test premise: core(0,0) active");
    let rerouted = a
        .repair_after_switch_failure(&ft, &fs, core)
        .expect("repair must succeed on a fat-tree");
    assert!(!rerouted.is_empty(), "cross-pod flows must have moved");
    assert!(!a.state().node_on(core));
    // Every path avoids the dead switch and is powered.
    for (i, f) in fs.flows().iter().enumerate() {
        let p = a.path(f.id);
        assert!(
            !p.nodes.contains(&core),
            "flow {i} still crosses the corpse"
        );
        assert!(a.state().path_available(p), "flow {i} on dark elements");
    }
}

#[test]
fn repair_wakes_replacement_switches() {
    let (ft, fs, mut a, _cfg) = consolidated();
    let before = a.active_switch_count(&ft);
    let core = ft.core(0, 0);
    a.repair_after_switch_failure(&ft, &fs, core).unwrap();
    let after = a.active_switch_count(&ft);
    // One switch died; at least one replacement woke to carry cross-pod
    // traffic, so the count cannot drop by more than... it must stay
    // within [before-1, 20] and the network must still carry every flow.
    assert!(after >= before - 1);
    assert!(after <= 20);
}

#[test]
fn load_accounting_survives_the_repair() {
    let (ft, fs, mut a, _cfg) = consolidated();
    let total_before: f64 = ft
        .topology()
        .links()
        .map(|(id, _)| a.state().load_dir(id, 0) + a.state().load_dir(id, 1))
        .sum();
    a.repair_after_switch_failure(&ft, &fs, ft.core(0, 0))
        .unwrap();
    let total_after: f64 = ft
        .topology()
        .links()
        .map(|(id, _)| a.state().load_dir(id, 0) + a.state().load_dir(id, 1))
        .sum();
    // Same flows, same demands: total carried load is conserved up to
    // path-length differences (all candidate paths have equal length in a
    // fat-tree class, so totals match exactly per class).
    assert!(
        (total_before - total_after).abs() < 1e-6,
        "load leaked: {total_before} vs {total_after}"
    );
}

#[test]
fn killing_an_idle_switch_is_a_no_op_for_paths() {
    let (ft, fs, mut a, _cfg) = consolidated();
    // Find an inactive switch (greedy left spares dark).
    let spare = ft
        .topology()
        .switches()
        .into_iter()
        .find(|&s| !a.state().node_on(s))
        .expect("greedy leaves spares");
    let paths_before: Vec<_> = fs
        .flows()
        .iter()
        .map(|f| a.path(f.id).nodes.to_vec())
        .collect();
    let rerouted = a.repair_after_switch_failure(&ft, &fs, spare).unwrap();
    assert!(rerouted.is_empty());
    for (f, before) in fs.flows().iter().zip(&paths_before) {
        assert_eq!(a.path(f.id).nodes, &before[..]);
    }
}

#[test]
fn unsurvivable_failure_is_reported() {
    // Two hosts on the same edge switch: killing that edge switch leaves
    // no path at all.
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    fs.add(
        ft.host(0, 0, 0),
        ft.host(0, 0, 1),
        10.0,
        FlowClass::LatencySensitive,
    );
    let cfg = ConsolidationConfig::with_k(1.0);
    let mut a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    let edge = ft.edge(0, 0);
    let err = a.repair_after_switch_failure(&ft, &fs, edge);
    assert!(err.is_err(), "same-edge pair cannot survive its ToR dying");
}

#[test]
fn failed_repair_leaves_the_assignment_untouched() {
    // Regression: the old repair path mutated the assignment (killed the
    // switch, re-enabled consolidator-darkened links via a wholesale
    // refresh, unrouted victims one by one) before discovering a flow had
    // no way around the corpse — leaving the caller a half-repaired,
    // load-corrupted assignment. Repair must be atomic: on Err the
    // assignment is bit-identical to the pre-call state.
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    // One survivable cross-pod flow plus one same-edge pair whose ToR is
    // the victim: repair must fail overall, and must not keep the
    // cross-pod re-route it made before hitting the doomed flow.
    fs.add(
        ft.host(0, 0, 0),
        ft.host(1, 0, 0),
        40.0,
        FlowClass::LatencySensitive,
    );
    fs.add(
        ft.host(0, 0, 0),
        ft.host(0, 0, 1),
        10.0,
        FlowClass::LatencySensitive,
    );
    let cfg = ConsolidationConfig::with_k(1.0);
    let mut a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    let before = snapshot(&ft, &fs, &a);
    let err = a.repair_after_switch_failure(&ft, &fs, ft.edge(0, 0));
    assert!(err.is_err(), "the same-edge pair is unroutable");
    let after = snapshot(&ft, &fs, &a);
    assert_eq!(before.0, after.0, "paths must be restored");
    assert_eq!(before.1, after.1, "node power states must be restored");
    assert_eq!(before.2, after.2, "link power states must be restored");
    for (i, (b, c)) in before.3.iter().zip(&after.3).enumerate() {
        assert!(
            (b.0 - c.0).abs() < 1e-12 && (b.1 - c.1).abs() < 1e-12,
            "link {i} load drifted: {b:?} vs {c:?}"
        );
    }
}

#[test]
fn repair_does_not_relight_consolidator_darkened_links() {
    // The wholesale refresh bug in one more guise: repairing around a
    // *failed* switch must not power links back on between switches the
    // consolidator deliberately left connected-but-idle.
    let (ft, fs, mut a, _cfg) = consolidated();
    let dark_before: Vec<_> = ft
        .topology()
        .links()
        .filter(|&(id, _)| !a.state().link_on(id))
        .map(|(id, _)| id)
        .collect();
    let core = ft.core(0, 0);
    a.repair_after_switch_failure(&ft, &fs, core).unwrap();
    // Links that stayed off may only have turned on if a re-routed path
    // now crosses them.
    for l in dark_before {
        if a.state().link_on(l) {
            let used = fs.flows().iter().any(|f| a.path(f.id).links.contains(&l));
            assert!(used, "link {l:?} lit without any path using it");
        }
    }
}

#[test]
fn masked_greedy_avoids_excluded_switches() {
    let (ft, fs, unmasked, cfg) = consolidated();
    let core = ft.core(0, 0);
    assert!(
        unmasked.state().node_on(core),
        "premise: greedy uses core(0,0)"
    );
    let masked_cfg = cfg.clone().with_excluded(vec![core]);
    let a = GreedyConsolidator
        .consolidate(&ft, &fs, &masked_cfg)
        .unwrap();
    assert!(!a.state().node_on(core), "excluded switch stays dark");
    for f in fs.flows() {
        assert!(!a.path(f.id).nodes.contains(&core));
        assert!(a.state().path_available(a.path(f.id)));
    }
    a.validate(&ft, &fs, &masked_cfg).unwrap();
}

#[test]
fn masked_aggregation_preset_leaves_failed_switch_dark() {
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    fs.add(
        ft.host(0, 0, 0),
        ft.host(2, 1, 1),
        40.0,
        FlowClass::LatencySensitive,
    );
    let core = ft.core(0, 0);
    let cfg = ConsolidationConfig::with_k(1.0).with_excluded(vec![core]);
    // Agg0 keeps all 20 switches on — except the masked failure.
    let a = AggregationRouter::for_level(&ft, AggregationLevel::Agg0)
        .consolidate(&ft, &fs, &cfg)
        .unwrap();
    assert!(!a.state().node_on(core));
    assert_eq!(a.active_switch_count(&ft), 19);
    assert!(!a.path(fs.flows()[0].id).nodes.contains(&core));
}

#[test]
fn recover_and_reconsolidate_round_trips_to_the_original() {
    // Fail → consolidate around the corpse → recover → re-consolidate
    // with the empty mask: the final assignment must be bit-identical to
    // the never-failed one (the consolidators are deterministic, so the
    // mask must be the *only* thing that changed).
    let (ft, fs, original, cfg) = consolidated();
    let core = ft.core(0, 0);
    let degraded = GreedyConsolidator
        .consolidate(&ft, &fs, &cfg.clone().with_excluded(vec![core]))
        .unwrap();
    assert!(!degraded.state().node_on(core));
    let recovered = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    let want = snapshot(&ft, &fs, &original);
    let got = snapshot(&ft, &fs, &recovered);
    assert_eq!(want.0, got.0, "paths must round-trip");
    assert_eq!(want.1, got.1, "node states must round-trip");
    assert_eq!(want.2, got.2, "link states must round-trip");
    for (b, c) in want.3.iter().zip(&got.3) {
        assert!((b.0 - c.0).abs() < 1e-12 && (b.1 - c.1).abs() < 1e-12);
    }
}

#[test]
fn degradation_policy_prices_repair_boot_energy() {
    let (ft, fs, mut a, _cfg) = consolidated();
    let core = ft.core(0, 0);
    let before = a.active_switch_count(&ft);
    let power = NetworkPowerModel::default();
    let policy = DegradationPolicy::default();
    let rep = policy
        .try_repair(&mut a, &ft, &fs, core, &power)
        .expect("core failure is survivable");
    assert!(!rep.rerouted.is_empty(), "victims must have moved");
    // Boot energy = woken × boot_power_w × power_on_s, exactly.
    let expect =
        rep.woken.len() as f64 * policy.transition.boot_power_w * policy.transition.power_on_s;
    assert!((rep.boot_energy_j - expect).abs() < 1e-9);
    // The hung core keeps drawing its own 36 W plus its lit ports.
    assert!(rep.dead_draw_w >= power.switch_w);
    let after = a.active_switch_count(&ft);
    assert_eq!(
        after as i64 - (before as i64 - 1),
        rep.woken.len() as i64,
        "woken accounting must match the active-set delta"
    );
    for w in &rep.woken {
        assert!(a.state().node_on(NodeId(*w)), "woken switch must be on");
    }
}
