//! Failure injection: switch failures against consolidated assignments.
//!
//! The paper's §IV-B "backup paths" remark is exercised here as runtime
//! repair: kill an active switch, re-route the victims, verify the
//! network still carries everything (possibly on newly woken switches).

use eprons_net::flow::FlowSet;
use eprons_net::{
    ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator,
};
use eprons_sim::SimRng;
use eprons_topo::FatTree;

fn consolidated() -> (FatTree, FlowSet, eprons_net::Assignment, ConsolidationConfig) {
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    let hosts = ft.hosts().to_vec();
    let mut rng = SimRng::seed_from_u64(90);
    for _ in 0..12 {
        let a = rng.index(hosts.len());
        let mut b = rng.index(hosts.len());
        while b == a {
            b = rng.index(hosts.len());
        }
        fs.add(hosts[a], hosts[b], 40.0, FlowClass::LatencySensitive);
    }
    let cfg = ConsolidationConfig::with_k(1.0);
    let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    (ft, fs, a, cfg)
}

#[test]
fn killing_the_shared_core_reroutes_all_victims() {
    let (ft, fs, mut a, _cfg) = consolidated();
    // Greedy packs everything onto core(0,0); kill it.
    let core = ft.core(0, 0);
    assert!(a.state().node_on(core), "test premise: core(0,0) active");
    let rerouted = a
        .repair_after_switch_failure(&ft, &fs, core)
        .expect("repair must succeed on a fat-tree");
    assert!(!rerouted.is_empty(), "cross-pod flows must have moved");
    assert!(!a.state().node_on(core));
    // Every path avoids the dead switch and is powered.
    for (i, f) in fs.flows().iter().enumerate() {
        let p = a.path(f.id);
        assert!(!p.nodes.contains(&core), "flow {i} still crosses the corpse");
        assert!(a.state().path_available(p), "flow {i} on dark elements");
    }
}

#[test]
fn repair_wakes_replacement_switches() {
    let (ft, fs, mut a, _cfg) = consolidated();
    let before = a.active_switch_count(&ft);
    let core = ft.core(0, 0);
    a.repair_after_switch_failure(&ft, &fs, core).unwrap();
    let after = a.active_switch_count(&ft);
    // One switch died; at least one replacement woke to carry cross-pod
    // traffic, so the count cannot drop by more than... it must stay
    // within [before-1, 20] and the network must still carry every flow.
    assert!(after >= before - 1);
    assert!(after <= 20);
}

#[test]
fn load_accounting_survives_the_repair() {
    let (ft, fs, mut a, _cfg) = consolidated();
    let total_before: f64 = ft
        .topology()
        .links()
        .map(|(id, _)| a.state().load_dir(id, 0) + a.state().load_dir(id, 1))
        .sum();
    a.repair_after_switch_failure(&ft, &fs, ft.core(0, 0)).unwrap();
    let total_after: f64 = ft
        .topology()
        .links()
        .map(|(id, _)| a.state().load_dir(id, 0) + a.state().load_dir(id, 1))
        .sum();
    // Same flows, same demands: total carried load is conserved up to
    // path-length differences (all candidate paths have equal length in a
    // fat-tree class, so totals match exactly per class).
    assert!(
        (total_before - total_after).abs() < 1e-6,
        "load leaked: {total_before} vs {total_after}"
    );
}

#[test]
fn killing_an_idle_switch_is_a_no_op_for_paths() {
    let (ft, fs, mut a, _cfg) = consolidated();
    // Find an inactive switch (greedy left spares dark).
    let spare = ft
        .topology()
        .switches()
        .into_iter()
        .find(|&s| !a.state().node_on(s))
        .expect("greedy leaves spares");
    let paths_before: Vec<_> = fs.flows().iter().map(|f| a.path(f.id).nodes.clone()).collect();
    let rerouted = a.repair_after_switch_failure(&ft, &fs, spare).unwrap();
    assert!(rerouted.is_empty());
    for (f, before) in fs.flows().iter().zip(&paths_before) {
        assert_eq!(&a.path(f.id).nodes, before);
    }
}

#[test]
fn unsurvivable_failure_is_reported() {
    // Two hosts on the same edge switch: killing that edge switch leaves
    // no path at all.
    let ft = FatTree::new(4, 1000.0);
    let mut fs = FlowSet::new();
    fs.add(
        ft.host(0, 0, 0),
        ft.host(0, 0, 1),
        10.0,
        FlowClass::LatencySensitive,
    );
    let cfg = ConsolidationConfig::with_k(1.0);
    let mut a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
    let edge = ft.edge(0, 0);
    let err = a.repair_after_switch_failure(&ft, &fs, edge);
    assert!(err.is_err(), "same-edge pair cannot survive its ToR dying");
}
