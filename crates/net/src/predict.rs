//! Bandwidth demand prediction (paper §II, step i).
//!
//! "The 90th %tile traffic data rate of the last epoch is used to predict
//! the flow's bandwidth demand in the next epoch \[3\], so as to be able to
//! support the bandwidth demand for all but the outlier cases. To minimize
//! the effect of prediction errors, we incorporate a safety margin for the
//! required link capacity."

use eprons_num::quantile::percentile;

use crate::flow::FlowId;

/// Sliding per-flow rate history with 90th-percentile prediction.
#[derive(Debug, Clone)]
pub struct DemandPredictor {
    /// Quantile used for prediction (0.9 per the paper).
    quantile: f64,
    /// Rate samples observed during the current epoch, per flow.
    epoch_samples: Vec<Vec<f64>>,
    /// Prediction carried over from the last completed epoch, per flow.
    predictions: Vec<Option<f64>>,
    /// Consecutive epochs each flow has gone without a sample.
    idle_epochs: Vec<usize>,
    /// Expire a flow's prediction after this many consecutive idle
    /// epochs (`None` = carry over forever, the pre-failure-injection
    /// behavior).
    max_idle_epochs: Option<usize>,
}

impl DemandPredictor {
    /// Creates a predictor for `num_flows` flows using the given quantile.
    ///
    /// # Panics
    /// Panics if `quantile` is outside `(0, 1]`.
    pub fn new(num_flows: usize, quantile: f64) -> Self {
        assert!(quantile > 0.0 && quantile <= 1.0, "quantile in (0,1]");
        DemandPredictor {
            quantile,
            epoch_samples: vec![Vec::new(); num_flows],
            predictions: vec![None; num_flows],
            idle_epochs: vec![0; num_flows],
            max_idle_epochs: None,
        }
    }

    /// A predictor with the paper's 90th percentile.
    pub fn paper_default(num_flows: usize) -> Self {
        Self::new(num_flows, 0.9)
    }

    /// Expires a flow's prediction after `epochs` consecutive epochs
    /// without a sample, so a flow whose path died (failure injection)
    /// does not pin stale demand forever.
    ///
    /// The boundary is inclusive: a prediction survives **exactly**
    /// `epochs` idle epochs and is dropped on the `epochs + 1`-th
    /// consecutive idle roll. `with_expiry(2)` therefore still predicts
    /// after two sample-free epochs and returns `None` after the third.
    ///
    /// # Panics
    /// Panics if `epochs` is zero (a prediction would never survive).
    pub fn with_expiry(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "expiry must allow at least one idle epoch");
        self.max_idle_epochs = Some(epochs);
        self
    }

    /// Records one measured rate sample (Mbps) for a flow. The POX
    /// controller polls flow statistics every 2 s (§V-A); each poll feeds
    /// one sample. Non-finite or negative rates — a glitched poll from a
    /// failing switch — are rejected (returns `false`) and counted under
    /// `net.predict.rejected_samples` instead of aborting the day loop.
    pub fn observe(&mut self, flow: FlowId, rate_mbps: f64) -> bool {
        if !rate_mbps.is_finite() || rate_mbps < 0.0 {
            if eprons_obs::enabled() {
                eprons_obs::registry()
                    .counter("net.predict.rejected_samples")
                    .inc();
            }
            return false;
        }
        self.epoch_samples[flow.0].push(rate_mbps);
        true
    }

    /// Closes the epoch: predictions become the configured percentile of
    /// each flow's samples; sample buffers reset. Flows with no samples
    /// keep their previous prediction until the idle expiry (if any)
    /// lapses.
    pub fn roll_epoch(&mut self) {
        for ((samples, pred), idle) in self
            .epoch_samples
            .iter_mut()
            .zip(&mut self.predictions)
            .zip(&mut self.idle_epochs)
        {
            if !samples.is_empty() {
                *pred = Some(percentile(samples, self.quantile));
                samples.clear();
                *idle = 0;
            } else if pred.is_some() {
                // Saturating: once a flow is at the expiry boundary (or has
                // no expiry configured), the counter stops growing instead
                // of creeping toward overflow over a long-running day.
                *idle = idle.saturating_add(1);
                if self.max_idle_epochs.is_some_and(|max| *idle > max) {
                    *pred = None;
                }
            }
        }
    }

    /// Predicted demand for a flow (Mbps), if any epoch has completed with
    /// samples for it.
    pub fn predict(&self, flow: FlowId) -> Option<f64> {
        self.predictions[flow.0]
    }

    /// Predicted demand, falling back to `default_mbps` for flows never
    /// observed.
    pub fn predict_or(&self, flow: FlowId, default_mbps: f64) -> f64 {
        self.predictions[flow.0].unwrap_or(default_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_90th_percentile() {
        let mut p = DemandPredictor::paper_default(1);
        for i in 1..=100 {
            p.observe(FlowId(0), i as f64);
        }
        p.roll_epoch();
        let pred = p.predict(FlowId(0)).unwrap();
        assert!(
            (pred - 90.1).abs() < 0.2,
            "90th pct of 1..=100 ≈ 90.1, got {pred}"
        );
    }

    #[test]
    fn no_prediction_before_first_epoch() {
        let p = DemandPredictor::paper_default(2);
        assert!(p.predict(FlowId(0)).is_none());
        assert_eq!(p.predict_or(FlowId(1), 42.0), 42.0);
    }

    #[test]
    fn prediction_carries_over_when_idle() {
        let mut p = DemandPredictor::paper_default(1);
        p.observe(FlowId(0), 10.0);
        p.roll_epoch();
        assert_eq!(p.predict(FlowId(0)), Some(10.0));
        // Next epoch: no samples → prediction survives.
        p.roll_epoch();
        assert_eq!(p.predict(FlowId(0)), Some(10.0));
    }

    #[test]
    fn epoch_resets_samples() {
        let mut p = DemandPredictor::paper_default(1);
        p.observe(FlowId(0), 100.0);
        p.roll_epoch();
        p.observe(FlowId(0), 10.0);
        p.observe(FlowId(0), 10.0);
        p.roll_epoch();
        // New epoch only sees the 10s.
        assert_eq!(p.predict(FlowId(0)), Some(10.0));
    }

    #[test]
    fn glitched_samples_are_rejected_not_fatal() {
        let mut p = DemandPredictor::paper_default(1);
        assert!(!p.observe(FlowId(0), -3.0));
        assert!(!p.observe(FlowId(0), f64::NAN));
        assert!(!p.observe(FlowId(0), f64::INFINITY));
        assert!(p.observe(FlowId(0), 25.0));
        p.roll_epoch();
        // Only the valid sample counted.
        assert_eq!(p.predict(FlowId(0)), Some(25.0));
    }

    #[test]
    fn idle_expiry_drops_stale_predictions() {
        let mut p = DemandPredictor::paper_default(2).with_expiry(2);
        p.observe(FlowId(0), 10.0);
        p.observe(FlowId(1), 50.0);
        p.roll_epoch();
        // Flow 1 keeps reporting; flow 0 goes dark (dead path).
        p.observe(FlowId(1), 50.0);
        p.roll_epoch();
        assert_eq!(p.predict(FlowId(0)), Some(10.0), "one idle epoch: kept");
        p.observe(FlowId(1), 50.0);
        p.roll_epoch();
        assert_eq!(
            p.predict(FlowId(0)),
            Some(10.0),
            "survives exactly `epochs` = 2 idle epochs"
        );
        p.observe(FlowId(1), 50.0);
        p.roll_epoch();
        assert_eq!(
            p.predict(FlowId(0)),
            None,
            "expired on the third idle epoch"
        );
        assert_eq!(p.predict(FlowId(1)), Some(50.0), "live flow unaffected");
        // A fresh sample restores prediction (and resets the idle count).
        p.observe(FlowId(0), 30.0);
        p.roll_epoch();
        assert_eq!(p.predict(FlowId(0)), Some(30.0));
    }

    #[test]
    fn expiry_boundary_is_exactly_epochs_idle_epochs() {
        // Pin the boundary at `epochs` and `epochs ± 1` for a few budgets:
        // after `epochs − 1` and `epochs` idle rolls the prediction is
        // alive; after `epochs + 1` it is gone.
        for epochs in [1usize, 3, 5] {
            let mut p = DemandPredictor::paper_default(1).with_expiry(epochs);
            p.observe(FlowId(0), 7.0);
            p.roll_epoch();
            for idle in 1..=epochs + 1 {
                p.roll_epoch();
                if idle <= epochs {
                    assert_eq!(
                        p.predict(FlowId(0)),
                        Some(7.0),
                        "expiry={epochs}: alive after {idle} idle epochs"
                    );
                } else {
                    assert_eq!(
                        p.predict(FlowId(0)),
                        None,
                        "expiry={epochs}: dropped after {idle} idle epochs"
                    );
                }
            }
        }
    }

    #[test]
    fn expired_and_unexpiring_flows_do_not_creep_toward_overflow() {
        // An expired flow must not keep incrementing its idle counter, and
        // a predictor without expiry saturates instead of overflowing. We
        // can't roll 2^64 epochs, so pin the observable contract: rolling
        // far past expiry neither panics nor resurrects the prediction,
        // and a fresh sample still restores it (counter reset works from
        // the saturated state).
        let mut p = DemandPredictor::paper_default(1).with_expiry(1);
        p.observe(FlowId(0), 3.0);
        p.roll_epoch();
        for _ in 0..10_000 {
            p.roll_epoch();
        }
        assert_eq!(p.predict(FlowId(0)), None);
        p.observe(FlowId(0), 4.0);
        p.roll_epoch();
        assert_eq!(
            p.predict(FlowId(0)),
            Some(4.0),
            "recovery after long expiry"
        );
        // Never-observed flows have nothing to expire and never count idle.
        let mut q = DemandPredictor::paper_default(1);
        for _ in 0..10_000 {
            q.roll_epoch();
        }
        assert_eq!(q.predict(FlowId(0)), None);
    }

    #[test]
    fn outliers_are_shaved_by_quantile() {
        let mut p = DemandPredictor::paper_default(1);
        for _ in 0..99 {
            p.observe(FlowId(0), 50.0);
        }
        p.observe(FlowId(0), 100_000.0); // one outlier burst
        p.roll_epoch();
        let pred = p.predict(FlowId(0)).unwrap();
        assert!(
            pred < 100.0,
            "90th percentile should ignore the outlier, got {pred}"
        );
    }
}
