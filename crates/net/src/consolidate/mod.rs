//! Latency-aware traffic consolidation (paper §II and §IV-B).
//!
//! A *consolidator* maps a flow set onto paths of the fat-tree so that the
//! active subgraph (and hence DCN power) is minimal while every flow's
//! **scaled** demand — latency-sensitive flows inflated by the factor `K` —
//! fits under each link's usable capacity (capacity minus safety margin).
//!
//! Three interchangeable implementations:
//!
//! * [`arc::ArcMilpConsolidator`] — the faithful arc-based MILP of paper
//!   eqs. 2–9 (exact, small instances only — the paper itself reports
//!   42 min for 3000 flows on CPLEX);
//! * [`path::PathMilpConsolidator`] — an equivalent path-based MILP over
//!   ECMP candidate paths (exact on fat-trees, far fewer binaries);
//! * [`greedy::GreedyConsolidator`] — the deployable greedy bin-packing
//!   heuristic (the paper's §IV-B accelerated design, after \[2\]).
//!
//! [`AggregationRouter`] additionally routes on a *fixed* aggregation level
//! (Fig. 9 presets) for the sensitivity experiments of Figs. 10 and 13.

pub mod arc;
pub mod arena;
pub mod greedy;
pub mod path;
pub mod pod;

use eprons_topo::{FatTree, LinkId, MultipathTopology, NodeId, Path, PathRef};

use crate::flow::FlowSet;
use crate::links::NetworkState;
use crate::power::NetworkPowerModel;

/// Consolidation parameters.
#[derive(Debug, Clone)]
pub struct ConsolidationConfig {
    /// The scale factor `K ≥ 1` applied to latency-sensitive demands.
    pub scale_k: f64,
    /// Safety margin subtracted from every link capacity (50 Mbps in the
    /// paper's Fig. 2 example).
    pub safety_margin_mbps: f64,
    /// Power model used in optimization objectives.
    pub power: NetworkPowerModel,
    /// Switches no consolidator may route through or power on — the
    /// failure mask of §IV-B's backup-path handling. Keep sorted so
    /// downstream iteration stays deterministic. Empty by default.
    pub excluded: Vec<NodeId>,
}

impl Default for ConsolidationConfig {
    fn default() -> Self {
        ConsolidationConfig {
            scale_k: 1.0,
            safety_margin_mbps: 50.0,
            power: NetworkPowerModel::default(),
            excluded: Vec::new(),
        }
    }
}

impl ConsolidationConfig {
    /// Convenience: the paper's defaults with a given `K`.
    pub fn with_k(scale_k: f64) -> Self {
        ConsolidationConfig {
            scale_k,
            ..Default::default()
        }
    }

    /// Usable capacity of a link after the safety margin.
    pub fn usable_capacity(&self, capacity_mbps: f64) -> f64 {
        (capacity_mbps - self.safety_margin_mbps).max(0.0)
    }

    /// These defaults with the given switches masked out (sorted).
    pub fn with_excluded(mut self, mut excluded: Vec<NodeId>) -> Self {
        excluded.sort_unstable();
        excluded.dedup();
        self.excluded = excluded;
        self
    }

    /// Whether a node is masked out by the failure mask.
    #[inline]
    pub fn is_excluded(&self, n: NodeId) -> bool {
        !self.excluded.is_empty() && self.excluded.contains(&n)
    }
}

/// Consolidation failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsolidationError {
    /// No candidate path had enough residual capacity for a flow.
    NoFeasiblePath {
        /// Index of the offending flow.
        flow: usize,
    },
    /// The optimization model is infeasible (demands exceed the topology).
    Infeasible,
    /// The underlying solver failed (iteration/node limit).
    SolverFailed(String),
}

impl std::fmt::Display for ConsolidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsolidationError::NoFeasiblePath { flow } => {
                write!(f, "no feasible path for flow {flow}")
            }
            ConsolidationError::Infeasible => write!(f, "consolidation model infeasible"),
            ConsolidationError::SolverFailed(m) => write!(f, "solver failed: {m}"),
        }
    }
}

impl std::error::Error for ConsolidationError {}

/// One flow's path inside a [`PathCollector`]'s flat pools.
#[derive(Debug, Clone, Copy)]
struct PathSpan {
    node_off: u32,
    link_off: u32,
    /// Hop count; `u32::MAX` marks a slot not yet filled.
    hops: u32,
}

const UNSET_SPAN: PathSpan = PathSpan {
    node_off: 0,
    link_off: 0,
    hops: u32::MAX,
};

/// Flat, pooled storage for one chosen path per flow.
///
/// An all-pairs mesh on a k=24 fat-tree is ~1.2·10⁷ flows; holding each
/// path as an owned [`Path`] (two heap `Vec`s) keeps ~2.4·10⁷ small
/// allocations live at once, which costs tens of seconds of allocator
/// time on its own — an order of magnitude more than computing the paths.
/// The collector instead appends every path into three shared pools and
/// hands out [`PathRef`] views, so an assignment of any size is exactly
/// three allocations.
#[derive(Debug, Clone, Default)]
pub struct PathCollector {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
    spans: Vec<PathSpan>,
}

impl PathCollector {
    /// An empty collector expecting sequential [`push`](Self::push)es.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector with one pre-sized slot per flow, for consolidators
    /// that place flows out of flow-id order (set each slot with
    /// [`set`](Self::set)).
    pub fn for_flows(n: usize) -> Self {
        PathCollector {
            nodes: Vec::new(),
            links: Vec::new(),
            spans: vec![UNSET_SPAN; n],
        }
    }

    /// Pre-sizes the pools for `flows` paths of at most `max_hops` hops
    /// each. Growth-by-doubling would copy the (large) pools several
    /// times; on machines where faulting in fresh pages is the dominant
    /// cost of bulk storage, reserving once roughly halves the bill.
    pub fn reserve(&mut self, flows: usize, max_hops: usize) {
        self.spans.reserve(flows);
        self.nodes.reserve(flows * (max_hops + 1));
        self.links.reserve(flows * max_hops);
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the collector has no slots.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    fn append(&mut self, p: PathRef<'_>) -> PathSpan {
        debug_assert_eq!(p.nodes.len(), p.links.len() + 1, "malformed path");
        let span = PathSpan {
            node_off: u32::try_from(self.nodes.len()).expect("node pool fits u32 offsets"),
            link_off: u32::try_from(self.links.len()).expect("link pool fits u32 offsets"),
            hops: p.links.len() as u32,
        };
        self.nodes.extend_from_slice(p.nodes);
        self.links.extend_from_slice(p.links);
        span
    }

    /// Appends the next flow's path (flow-id order).
    pub fn push(&mut self, p: PathRef<'_>) {
        let span = self.append(p);
        self.spans.push(span);
    }

    /// Sets flow `i`'s path. Replacing an already-set slot appends fresh
    /// storage and strands the old bytes — fine for the rare repair path,
    /// wasteful in a loop.
    pub fn set(&mut self, i: usize, p: PathRef<'_>) {
        self.spans[i] = self.append(p);
    }

    /// Flow `i`'s path as a borrowed view.
    #[inline]
    pub fn get(&self, i: usize) -> PathRef<'_> {
        let s = self.spans[i];
        debug_assert_ne!(s.hops, u32::MAX, "slot {i} never set");
        let (no, lo, h) = (s.node_off as usize, s.link_off as usize, s.hops as usize);
        PathRef {
            nodes: &self.nodes[no..no + h + 1],
            links: &self.links[lo..lo + h],
        }
    }

    /// Iterates all paths in flow-id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = PathRef<'_>> + '_ {
        (0..self.spans.len()).map(|i| self.get(i))
    }
}

/// The result of consolidation: one path per flow plus the implied active
/// subgraph and (unscaled) link loads.
#[derive(Debug, Clone)]
pub struct Assignment {
    store: PathCollector,
    state: NetworkState,
}

impl Assignment {
    /// Builds an assignment from collected paths: switches on a path are
    /// activated, links used by at least one flow are activated, and each
    /// flow's *actual* (unscaled) demand is added along its path.
    pub fn from_collector(
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        store: PathCollector,
    ) -> Self {
        assert_eq!(store.len(), flows.len(), "one path per flow");
        let topo = net.topology();
        let mut state = NetworkState::with_active_switches(topo, &[]);
        // Activate path switches. Walk spans rather than the raw pools:
        // replaced slots may have stranded stale bytes in the pools.
        for p in store.iter() {
            for &n in p.nodes {
                state.set_node(n, true);
            }
        }
        state.refresh_links(topo);
        // Only links actually carrying traffic stay on.
        let mut used = vec![false; topo.num_links()];
        for p in store.iter() {
            for &l in p.links {
                used[l.0] = true;
            }
        }
        for (id, _) in topo.links() {
            if !used[id.0] {
                // refresh_links turned on every link between active nodes;
                // power down the unused ones.
                state.set_link(id, false);
            }
        }
        for (i, flow) in flows.flows().iter().enumerate() {
            state.add_path_load(topo, store.get(i), flow.demand_mbps);
        }
        Assignment { store, state }
    }

    /// [`Self::from_collector`] over owned paths, for small-instance
    /// callers (the MILP consolidators, tests) that already hold a
    /// `Vec<Path>`.
    pub fn from_paths(net: &dyn MultipathTopology, flows: &FlowSet, paths: Vec<Path>) -> Self {
        let mut store = PathCollector::new();
        for p in &paths {
            store.push(PathRef::of(p));
        }
        Self::from_collector(net, flows, store)
    }

    /// The chosen path of a flow, as a view into the pooled storage.
    #[inline]
    pub fn path(&self, flow: crate::flow::FlowId) -> PathRef<'_> {
        self.store.get(flow.0)
    }

    /// All paths, flow-id order.
    #[inline]
    pub fn iter_paths(&self) -> impl ExactSizeIterator<Item = PathRef<'_>> + '_ {
        self.store.iter()
    }

    /// The resulting network state (active sets + loads).
    #[inline]
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Mutable network state (for simulators adding transient load).
    #[inline]
    pub fn state_mut(&mut self) -> &mut NetworkState {
        &mut self.state
    }

    /// Number of active switches.
    pub fn active_switch_count(&self, net: &dyn MultipathTopology) -> usize {
        self.state.active_switch_count(net.topology())
    }

    /// DCN power under a power model.
    pub fn network_power_w(&self, net: &dyn MultipathTopology, model: &NetworkPowerModel) -> f64 {
        model.power_w(net.topology(), &self.state)
    }

    /// Highest link utilization (actual loads).
    pub fn max_utilization(&self, net: &dyn MultipathTopology) -> f64 {
        net.topology()
            .links()
            .map(|(id, _)| self.state.utilization(id))
            .fold(0.0, f64::max)
    }

    /// Verifies that scaled demands respect usable per-direction
    /// capacities and that every path is available. Returns a description
    /// of the first violation, if any.
    pub fn validate(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
    ) -> Result<(), String> {
        let topo = net.topology();
        let mut reserved = vec![0.0; topo.num_links() * 2];
        for (flow, p) in flows.flows().iter().zip(self.store.iter()) {
            if p.src() != flow.src || p.dst() != flow.dst {
                return Err(format!("flow {:?} routed between wrong endpoints", flow.id));
            }
            if !p.is_consistent(topo) {
                return Err(format!("flow {:?} has an inconsistent path", flow.id));
            }
            if !self.state.path_available(p) {
                return Err(format!("flow {:?} uses a powered-off element", flow.id));
            }
            for (from, _, l) in p.hops() {
                let dir = crate::links::direction_from(topo, l, from);
                reserved[l.0 * 2 + dir] += flow.scaled_demand(cfg.scale_k);
            }
        }
        for (id, l) in topo.links() {
            let usable = cfg.usable_capacity(l.capacity_mbps);
            for dir in 0..2 {
                if reserved[id.0 * 2 + dir] > usable + 1e-6 {
                    return Err(format!(
                        "link {:?} dir {} over-reserved: {} > {} Mbps",
                        id,
                        dir,
                        reserved[id.0 * 2 + dir],
                        usable
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Assignment {
    /// Repairs the assignment after a switch failure: every flow whose
    /// path crosses `failed` is re-routed onto its best surviving
    /// candidate path (fewest newly-activated switches, then lowest
    /// bottleneck), activating additional switches if needed — the
    /// runtime counterpart of §IV-B's "backup paths" mitigation.
    ///
    /// Returns the indices of re-routed flows, or an error naming the
    /// first flow that has no surviving path. The repair is atomic: on
    /// `Err` the assignment is exactly its pre-call state (no half-moved
    /// loads, no paths through a down switch).
    pub fn repair_after_switch_failure(
        &mut self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        failed: NodeId,
    ) -> Result<Vec<usize>, ConsolidationError> {
        let topo = net.topology();
        // Mark the switch down and power off only its incident links: a
        // wholesale refresh_links would re-enable links the consolidator
        // deliberately powered down between active switches.
        let take_down = |state: &mut NetworkState| {
            state.set_node(failed, false);
            for &(_, l) in topo.neighbors(failed) {
                state.set_link(l, false);
            }
        };
        let mut rerouted = Vec::new();
        // Which flows cross the failed switch?
        let victims: Vec<usize> = (0..flows.len())
            .filter(|&i| self.store.get(i).nodes.contains(&failed))
            .collect();
        if victims.is_empty() {
            take_down(&mut self.state);
            return Ok(rerouted);
        }
        let checkpoint = self.clone();
        // Remove the victims' load, then mark the switch down.
        for &i in &victims {
            let demand = flows.flows()[i].demand_mbps;
            let Assignment { store, state } = &mut *self;
            state.remove_path_load(topo, store.get(i), demand);
        }
        take_down(&mut self.state);

        for &i in &victims {
            let flow = &flows.flows()[i];
            let mut best: Option<(usize, f64, usize)> = None; // (new switches, bottleneck, idx)
            let mut idx = 0usize;
            net.for_each_candidate(flow.src, flow.dst, &mut |p| {
                let this = idx;
                idx += 1;
                if p.nodes.contains(&failed) {
                    return;
                }
                let new_switches = p
                    .interior()
                    .iter()
                    .filter(|&&n| !self.state.node_on(n))
                    .count();
                let bottleneck = self
                    .state
                    .path_utilizations_ref(topo, p)
                    .fold(0.0, f64::max);
                let key = (new_switches, bottleneck, this);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            });
            let Some((_, _, idx)) = best else {
                *self = checkpoint;
                return Err(ConsolidationError::NoFeasiblePath { flow: i });
            };
            let p = net
                .nth_candidate(flow.src, flow.dst, idx)
                .expect("index valid");
            for &n in &p.nodes {
                if n != failed {
                    self.state.set_node(n, true);
                }
            }
            for &l in &p.links {
                self.state.set_link(l, true);
            }
            self.state.add_path_load(topo, &p, flow.demand_mbps);
            self.store.set(i, PathRef::of(&p));
            rerouted.push(i);
        }
        Ok(rerouted)
    }
}

/// The interface every consolidation strategy implements. Strategies are
/// topology-generic (§IV-B: "our optimization model is independent of the
/// network topology"): any [`MultipathTopology`] — fat-tree, leaf–spine —
/// can be consolidated.
pub trait Consolidator {
    /// Chooses a path per flow, minimizing DCN power subject to scaled
    /// demands fitting under usable link capacities.
    fn consolidate(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
    ) -> Result<Assignment, ConsolidationError>;
}

/// Routes flows on a *fixed* active topology (an aggregation level of
/// Fig. 9), balancing load by picking, per flow, the available candidate
/// path whose most-loaded link ends up least loaded. Unlike the optimizing
/// consolidators it never powers anything down below the preset and does
/// not enforce capacity (overload shows up as latency, which is exactly the
/// effect Figs. 10 and 13 study).
#[derive(Debug, Clone)]
pub struct AggregationRouter {
    /// Switches allowed to carry traffic.
    pub active: Vec<NodeId>,
}

impl AggregationRouter {
    /// Router restricted to an aggregation level's active set.
    pub fn for_level(ft: &FatTree, level: eprons_topo::AggregationLevel) -> Self {
        AggregationRouter {
            active: level.active_switches(ft),
        }
    }
}

impl Consolidator for AggregationRouter {
    fn consolidate(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
    ) -> Result<Assignment, ConsolidationError> {
        let _t = eprons_obs::Timer::scoped("net.consolidate.aggregation_s");
        let mut sp = eprons_obs::Span::enter("net.consolidate");
        if eprons_obs::enabled() {
            sp.note(format!("algo=aggregation flows={}", flows.len()));
        }
        let topo = net.topology();
        let allowed = |n: NodeId| {
            !topo.node(n).kind.is_switch() || (self.active.contains(&n) && !cfg.is_excluded(n))
        };
        let mut reserved = vec![0.0; topo.num_links() * 2];
        let mut chosen = PathCollector::new();
        let mut nbuf = Vec::new();
        let mut lbuf = Vec::new();
        for flow in flows.flows() {
            let demand = flow.scaled_demand(cfg.scale_k);
            let mut best: Option<(f64, usize)> = None;
            let mut idx = 0usize;
            net.for_each_candidate(flow.src, flow.dst, &mut |p| {
                let this = idx;
                idx += 1;
                if !p.nodes.iter().all(|&n| allowed(n)) {
                    return;
                }
                // Bottleneck directional reservation if this path were
                // chosen (full-duplex links: only the traversal direction
                // contends).
                let bottleneck = p
                    .hops()
                    .map(|(from, _, l)| {
                        let dir = crate::links::direction_from(topo, l, from);
                        reserved[l.0 * 2 + dir] + demand
                    })
                    .fold(0.0, f64::max);
                if best.is_none_or(|(b, _)| bottleneck < b - 1e-9) {
                    best = Some((bottleneck, this));
                }
            });
            let Some((_, idx)) = best else {
                return Err(ConsolidationError::NoFeasiblePath { flow: flow.id.0 });
            };
            assert!(
                net.nth_candidate_into(flow.src, flow.dst, idx, &mut nbuf, &mut lbuf),
                "index valid"
            );
            let p = PathRef {
                nodes: &nbuf,
                links: &lbuf,
            };
            for (from, _, l) in p.hops() {
                let dir = crate::links::direction_from(topo, l, from);
                reserved[l.0 * 2 + dir] += demand;
            }
            chosen.push(p);
        }
        // The preset keeps its whole active set powered (that is the point
        // of the Fig. 10/13 experiments), so build state from the preset,
        // not from used paths. Masked (failed) switches stay dark.
        let mut assignment = Assignment::from_collector(net, flows, chosen);
        for &s in &self.active {
            if !cfg.is_excluded(s) {
                assignment.state.set_node(s, true);
            }
        }
        assignment.state.refresh_links(topo);
        if eprons_obs::enabled() {
            eprons_obs::registry()
                .counter("net.consolidate.passes")
                .inc();
            eprons_obs::record(eprons_obs::Event::ConsolidationPass {
                algo: "aggregation".into(),
                flows: flows.len() as u64,
                placed: flows.len() as u64,
                active_switches: assignment.active_switch_count(net) as u64,
            });
        }
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowClass;
    use eprons_topo::AggregationLevel;

    fn three_flow_setup() -> (FatTree, FlowSet) {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(2, 0, 0),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.host(0, 1, 0),
            ft.host(3, 0, 0),
            20.0,
            FlowClass::LatencySensitive,
        );
        (ft, fs)
    }

    #[test]
    fn aggregation_router_stays_on_active_set() {
        let (ft, fs) = three_flow_setup();
        let router = AggregationRouter::for_level(&ft, AggregationLevel::Agg3);
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = router.consolidate(&ft, &fs, &cfg).unwrap();
        let active = AggregationLevel::Agg3.active_switches(&ft);
        for p in a.iter_paths() {
            for &n in p.interior() {
                assert!(active.contains(&n), "path used inactive switch");
            }
        }
        assert_eq!(a.active_switch_count(&ft), 13);
    }

    #[test]
    fn aggregation_router_balances_on_agg0() {
        let (ft, fs) = three_flow_setup();
        let router = AggregationRouter::for_level(&ft, AggregationLevel::Agg0);
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = router.consolidate(&ft, &fs, &cfg).unwrap();
        // With everything on, the two query flows should avoid the
        // elephant's bottleneck links.
        let elephant = a.path(crate::flow::FlowId(0));
        let q1 = a.path(crate::flow::FlowId(1));
        let shared: Vec<_> = q1
            .links
            .iter()
            .filter(|l| elephant.links.contains(l))
            .collect();
        assert!(
            shared.is_empty(),
            "load-balanced routing should separate the query from the elephant"
        );
    }

    #[test]
    fn assignment_loads_are_unscaled() {
        let (ft, fs) = three_flow_setup();
        let router = AggregationRouter::for_level(&ft, AggregationLevel::Agg3);
        let cfg = ConsolidationConfig::with_k(3.0);
        let a = router.consolidate(&ft, &fs, &cfg).unwrap();
        // Total load across host uplinks equals total unscaled demand on
        // the sending side.
        let src_up = ft.host_uplink(ft.host(0, 0, 0));
        assert!((a.state().load(src_up) - 900.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_over_reservation() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        // Two 600 Mbps elephants from the same host pair: any single path
        // over-reserves (1200 > 950).
        fs.add(
            ft.host(0, 0, 0),
            ft.host(0, 0, 1),
            600.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 0),
            ft.host(0, 0, 1),
            600.0,
            FlowClass::LatencyTolerant,
        );
        let router = AggregationRouter::for_level(&ft, AggregationLevel::Agg0);
        let cfg = ConsolidationConfig::with_k(1.0);
        // Same-edge pairs have exactly one path, so the router must pack
        // both onto it; validation flags the over-reservation.
        let a = router.consolidate(&ft, &fs, &cfg).unwrap();
        assert!(a.validate(&ft, &fs, &cfg).is_err());
    }

    #[test]
    fn usable_capacity_applies_margin() {
        let cfg = ConsolidationConfig::default();
        assert_eq!(cfg.usable_capacity(1000.0), 950.0);
        assert_eq!(cfg.usable_capacity(20.0), 0.0);
    }
}
