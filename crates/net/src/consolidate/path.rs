//! Path-based MILP consolidation.
//!
//! An exact reformulation of the paper's eqs. 2–9 specialized to fat-trees:
//! because every minimal route is an up/down ECMP path, the per-arc flow
//! variables `f_i(u,v)` and no-split indicators `Z_i(u,v)` collapse into a
//! single binary *path selector* `z_{i,p}` per flow × candidate path. Link
//! (`X`) and switch (`Y`) on/off indicators can then stay continuous: the
//! constraints `X_l ≥ z_{i,p}` (for every path `p` crossing `l`) and
//! `Y_s ≥ X_l` (for every link adjacent to `s`) pin them to 1 whenever used,
//! and the minimized power objective pins them to 0 otherwise. The optimum
//! therefore equals the arc model's at a fraction of the binaries.

use eprons_lp::{solve_milp_with_incumbent, Cmp, MilpOptions, Model, Sense, SolveError, VarId};
use eprons_topo::{MultipathTopology, Path};

use super::{Assignment, ConsolidationConfig, ConsolidationError, Consolidator};
use crate::flow::FlowSet;

/// Exact MILP consolidator over ECMP candidate paths.
#[derive(Debug, Clone, Default)]
pub struct PathMilpConsolidator {
    /// Branch-and-bound options.
    pub options: MilpOptions,
}

/// The built model plus handles, exposed so benches can time model
/// construction and solving separately.
pub struct PathModel {
    /// The MILP.
    pub model: Model,
    /// Candidate paths per flow (same order as the z variables).
    pub candidates: Vec<Vec<Path>>,
    /// z variable per (flow, candidate index).
    pub z: Vec<Vec<VarId>>,
    /// X variable per link (indexed by `LinkId`).
    pub x: Vec<VarId>,
    /// Y variable per node (`None` for hosts), indexed by `NodeId`.
    pub y: Vec<Option<VarId>>,
}

impl PathModel {
    /// Expands chosen path indices (one per flow, from a previous solve of
    /// a structurally-identical model) into a full variable assignment
    /// usable as a MILP incumbent: `z` selectors set per choice, `X`/`Y`
    /// set to the cost-minimal indicator of the used links/switches.
    ///
    /// Returns `None` when the choices don't match this model's shape; a
    /// returned vector may still be infeasible here (e.g. the new `K`
    /// overflows a link), which the MILP detects and ignores.
    pub fn incumbent_from_choices(&self, choices: &[usize]) -> Option<Vec<f64>> {
        if choices.len() != self.candidates.len() {
            return None;
        }
        let mut vals = vec![0.0; self.model.num_vars()];
        for (fi, &pi) in choices.iter().enumerate() {
            let path = self.candidates[fi].get(pi)?;
            vals[self.z[fi][pi].index()] = 1.0;
            for (from, to, l) in path.hops() {
                vals[self.x[l.0].index()] = 1.0;
                for endpoint in [from, to] {
                    if let Some(yv) = self.y[endpoint.0] {
                        vals[yv.index()] = 1.0;
                    }
                }
            }
        }
        Some(vals)
    }
}

/// Builds the path-based consolidation MILP.
pub fn build_path_model(
    net: &dyn MultipathTopology,
    flows: &FlowSet,
    cfg: &ConsolidationConfig,
) -> PathModel {
    let topo = net.topology();
    let mut model = Model::new(Sense::Minimize);

    // X per link, Y per switch (continuous in [0,1]; see module docs).
    let x: Vec<VarId> = topo
        .links()
        .map(|(id, _)| model.add_var(format!("X[{}]", id.0), 0.0, 1.0, cfg.power.link_w))
        .collect();
    let mut y = vec![None; topo.num_nodes()];
    for (id, n) in topo.nodes() {
        if n.kind.is_switch() {
            y[id.0] = Some(model.add_var(format!("Y[{}]", n.name), 0.0, 1.0, cfg.power.switch_w));
        }
    }

    // Y_s >= X_l for each link adjacent to switch s (paper eq. 7).
    for (lid, link) in topo.links() {
        for endpoint in [link.a, link.b] {
            if let Some(ys) = y[endpoint.0] {
                model.add_constraint(
                    format!("on[{}->{}]", lid.0, endpoint.0),
                    vec![(ys, 1.0), (x[lid.0], -1.0)],
                    Cmp::Ge,
                    0.0,
                );
            }
        }
    }

    // Path selectors.
    let mut candidates = Vec::with_capacity(flows.len());
    let mut z: Vec<Vec<VarId>> = Vec::with_capacity(flows.len());
    // Per-(link, direction) capacity terms, accumulated across flows
    // (full-duplex links contend per direction).
    let mut cap_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.num_links() * 2];
    for flow in flows.flows() {
        // Candidates through masked (failed) switches are dropped; a flow
        // left with none surfaces as an empty (infeasible) route
        // constraint, which the solver reports as Infeasible.
        let paths: Vec<Path> = net
            .candidate_paths(flow.src, flow.dst)
            .into_iter()
            .filter(|p| !p.nodes.iter().any(|&n| cfg.is_excluded(n)))
            .collect();
        let demand = flow.scaled_demand(cfg.scale_k);
        let mut zf = Vec::with_capacity(paths.len());
        for (pi, p) in paths.iter().enumerate() {
            let zv = model.add_binary(format!("z[{},{}]", flow.id.0, pi), 0.0);
            for (from, _, l) in p.hops() {
                // X_l >= z (activation, eq. 9's Z→link coupling).
                model.add_constraint(
                    format!("use[{},{},{}]", flow.id.0, pi, l.0),
                    vec![(x[l.0], 1.0), (zv, -1.0)],
                    Cmp::Ge,
                    0.0,
                );
                let dir = crate::links::direction_from(topo, l, from);
                cap_terms[l.0 * 2 + dir].push((zv, demand));
            }
            zf.push(zv);
        }
        // Exactly one path per flow (eqs. 5, 6, 9: conservation + no split).
        model.add_constraint(
            format!("route[{}]", flow.id.0),
            zf.iter().map(|&v| (v, 1.0)).collect(),
            Cmp::Eq,
            1.0,
        );
        candidates.push(paths);
        z.push(zf);
    }

    // Capacity with safety margin (eq. 3), per direction.
    for (lid, link) in topo.links() {
        for dir in 0..2 {
            if cap_terms[lid.0 * 2 + dir].is_empty() {
                continue;
            }
            model.add_constraint(
                format!("cap[{},{}]", lid.0, dir),
                cap_terms[lid.0 * 2 + dir].clone(),
                Cmp::Le,
                cfg.usable_capacity(link.capacity_mbps),
            );
        }
    }

    PathModel {
        model,
        candidates,
        z,
        x,
        y,
    }
}

impl PathMilpConsolidator {
    /// [`Consolidator::consolidate`] with warm-start chaining: an optional
    /// previous solution's path choices seed the branch-and-bound's
    /// initial incumbent (adjacent K candidates share the model structure,
    /// so the old assignment is a ready feasibility certificate), and the
    /// new solution's choices are returned for the next candidate.
    ///
    /// An infeasible or mismatched hint degrades silently to the cold
    /// path. Note that with alternate optima a warm solve may pick a
    /// different equal-power assignment than a cold one — callers needing
    /// bit-identical sweeps (the core optimizer) use [`Consolidator::consolidate`].
    ///
    /// # Errors
    /// Same failure modes as [`Consolidator::consolidate`].
    pub fn consolidate_warm(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
        prev_choices: Option<&[usize]>,
    ) -> Result<(Assignment, Vec<usize>), ConsolidationError> {
        let pm = build_path_model(net, flows, cfg);
        // A flow whose every candidate crosses a masked switch has an
        // empty route constraint; report it before solving.
        if let Some(fi) = pm.candidates.iter().position(|c| c.is_empty()) {
            return Err(ConsolidationError::NoFeasiblePath { flow: fi });
        }
        let incumbent = prev_choices.and_then(|ch| pm.incumbent_from_choices(ch));
        let sol = match solve_milp_with_incumbent(&pm.model, &self.options, incumbent.as_deref()) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => return Err(ConsolidationError::Infeasible),
            Err(e) => return Err(ConsolidationError::SolverFailed(e.to_string())),
        };
        let mut chosen = Vec::with_capacity(flows.len());
        let mut choices = Vec::with_capacity(flows.len());
        for (fi, zf) in pm.z.iter().enumerate() {
            let pi = zf
                .iter()
                .position(|&zv| sol.value(zv) > 0.5)
                .expect("route constraint guarantees one chosen path");
            chosen.push(pm.candidates[fi][pi].clone());
            choices.push(pi);
        }
        Ok((Assignment::from_paths(net, flows, chosen), choices))
    }
}

impl Consolidator for PathMilpConsolidator {
    fn consolidate(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
    ) -> Result<Assignment, ConsolidationError> {
        self.consolidate_warm(net, flows, cfg, None).map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::greedy::GreedyConsolidator;
    use crate::flow::{FlowClass, FlowSet};
    use crate::power::NetworkPowerModel;
    use eprons_topo::FatTree;

    fn fig2_flows(ft: &FatTree) -> FlowSet {
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(1, 0, 1),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.host(0, 1, 0),
            ft.host(1, 1, 0),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs
    }

    #[test]
    fn fig2_k1_optimal_is_seven_switches() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = PathMilpConsolidator::default()
            .consolidate(&ft, &fs, &cfg)
            .unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        assert_eq!(a.active_switch_count(&ft), 7);
    }

    #[test]
    fn fig2_scale_factor_progression() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let milp = PathMilpConsolidator::default();
        let mut prev = 0usize;
        for k in [1.0, 2.0, 3.0] {
            let cfg = ConsolidationConfig::with_k(k);
            let a = milp.consolidate(&ft, &fs, &cfg).unwrap();
            a.validate(&ft, &fs, &cfg).unwrap();
            let n = a.active_switch_count(&ft);
            assert!(n >= prev, "K={k} shrank the active set");
            prev = n;
        }
        assert!(prev > 7, "K=3 must use more than the K=1 minimum");
    }

    #[test]
    fn milp_never_worse_than_greedy() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let power = NetworkPowerModel::default();
        for k in [1.0, 2.0, 3.0] {
            let cfg = ConsolidationConfig::with_k(k);
            let opt = PathMilpConsolidator::default()
                .consolidate(&ft, &fs, &cfg)
                .unwrap();
            let heur = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
            let p_opt = opt.network_power_w(&ft, &power);
            let p_heur = heur.network_power_w(&ft, &power);
            assert!(
                p_opt <= p_heur + 1e-6,
                "K={k}: MILP ({p_opt} W) worse than greedy ({p_heur} W)"
            );
        }
    }

    #[test]
    fn milp_detects_infeasibility() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            600.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 0),
            ft.host(2, 0, 0),
            600.0,
            FlowClass::LatencyTolerant,
        );
        let r = PathMilpConsolidator::default().consolidate(
            &ft,
            &fs,
            &ConsolidationConfig::with_k(1.0),
        );
        assert_eq!(r.unwrap_err(), ConsolidationError::Infeasible);
    }

    #[test]
    fn model_dimensions_scale_with_flows() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let pm = build_path_model(&ft, &fs, &ConsolidationConfig::with_k(1.0));
        // 48 X + 20 Y + z variables (4 candidates per cross-pod flow × 3).
        assert_eq!(pm.model.num_vars(), 48 + 20 + 12);
        assert_eq!(pm.z.iter().map(|z| z.len()).sum::<usize>(), 12);
    }

    #[test]
    fn warm_chain_across_the_k_ladder_matches_cold_power() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let milp = PathMilpConsolidator::default();
        let power = NetworkPowerModel::default();
        let mut prev: Option<Vec<usize>> = None;
        for k in [1.0, 2.0, 3.0] {
            let cfg = ConsolidationConfig::with_k(k);
            let (warm_a, choices) = milp
                .consolidate_warm(&ft, &fs, &cfg, prev.as_deref())
                .unwrap();
            warm_a.validate(&ft, &fs, &cfg).unwrap();
            let cold_a = milp.consolidate(&ft, &fs, &cfg).unwrap();
            // Alternate optima may differ in routing, never in power.
            assert!(
                (warm_a.network_power_w(&ft, &power) - cold_a.network_power_w(&ft, &power)).abs()
                    < 1e-6,
                "K={k}: warm and cold optima disagree on power"
            );
            prev = Some(choices);
        }
    }

    #[test]
    fn incumbent_expansion_is_feasible_for_the_same_model() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let cfg = ConsolidationConfig::with_k(1.0);
        let milp = PathMilpConsolidator::default();
        let (_, choices) = milp.consolidate_warm(&ft, &fs, &cfg, None).unwrap();
        let pm = build_path_model(&ft, &fs, &cfg);
        let vals = pm.incumbent_from_choices(&choices).unwrap();
        assert!(
            pm.model.is_feasible(&vals, 1e-6),
            "expanded incumbent must satisfy its own model"
        );
        // Mismatched shape degrades to None, not a panic.
        assert!(pm.incumbent_from_choices(&[0]).is_none());
        assert!(pm.incumbent_from_choices(&[99, 99, 99]).is_none());
    }

    #[test]
    fn larger_instance_solves() {
        // 8 cross-pod query flows; optimal packing uses a single core.
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        for p in 0..4usize {
            for h in 0..2 {
                fs.add(
                    ft.host(p, 0, h),
                    ft.host((p + 2) % 4, 0, h),
                    15.0,
                    FlowClass::LatencySensitive,
                );
            }
        }
        let cfg = ConsolidationConfig::with_k(2.0);
        let a = PathMilpConsolidator::default()
            .consolidate(&ft, &fs, &cfg)
            .unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        // 4 edges (only edge 0 of each pod is used) + 4 aggs + 1 core = 9.
        assert_eq!(a.active_switch_count(&ft), 9);
    }
}
