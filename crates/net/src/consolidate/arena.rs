//! Shared candidate-path arena.
//!
//! Every consolidator asks the topology for each flow's ECMP candidate
//! paths. Enumeration walks the graph and allocates per call, and the K
//! ladder repeats the identical question once per candidate — the demands
//! scale with `K` but the endpoints never change. [`PathArena`] enumerates
//! every ordered host pair once up front and serves clones from the arena
//! thereafter. It implements [`MultipathTopology`] itself, so the greedy,
//! aggregation-preset, and MILP consolidators all benefit through the
//! trait without code changes.

use std::collections::HashMap;

use eprons_topo::{MultipathTopology, NodeId, Path, Topology};

/// A precomputed candidate-path table over an inner topology.
///
/// Cheap to share: build once per scenario (`ScenarioContext` holds one)
/// and pass `&arena` wherever a `&dyn MultipathTopology` is expected.
/// Lookup order has no effect on results — the arena returns exactly what
/// the inner topology would, so consolidation stays bit-identical.
#[derive(Debug, Clone)]
pub struct PathArena<T> {
    inner: T,
    paths: HashMap<(NodeId, NodeId), Vec<Path>>,
}

impl<T: MultipathTopology> PathArena<T> {
    /// Enumerates candidate paths for every ordered host pair of `inner`.
    pub fn build(inner: T) -> Self {
        let hosts: Vec<NodeId> = inner.host_list().to_vec();
        let mut paths = HashMap::with_capacity(hosts.len() * hosts.len());
        for &src in &hosts {
            for &dst in &hosts {
                if src != dst {
                    paths.insert((src, dst), inner.candidate_paths(src, dst));
                }
            }
        }
        PathArena { inner, paths }
    }

    /// Number of precomputed (src, dst) pairs.
    pub fn num_pairs(&self) -> usize {
        self.paths.len()
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: MultipathTopology> MultipathTopology for PathArena<T> {
    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn host_list(&self) -> &[NodeId] {
        self.inner.host_list()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        match self.paths.get(&(src, dst)) {
            Some(p) => p.clone(),
            // Not a precomputed pair (e.g. a switch endpoint): delegate.
            None => self.inner.candidate_paths(src, dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_topo::FatTree;

    #[test]
    fn arena_serves_identical_paths() {
        let ft = FatTree::new(4, 1000.0);
        let arena = PathArena::build(&ft);
        assert_eq!(arena.num_pairs(), 16 * 15);
        let hosts = arena.host_list().to_vec();
        for &src in &hosts[..4] {
            for &dst in &hosts[12..] {
                assert_eq!(
                    arena.candidate_paths(src, dst),
                    ft.candidate_paths(src, dst),
                    "arena must be invisible to results"
                );
            }
        }
        assert_eq!(arena.topology().num_links(), ft.topology().num_links());
    }

    #[test]
    fn arena_is_shareable_through_the_trait() {
        let ft = std::sync::Arc::new(FatTree::new(4, 1000.0));
        let arena = PathArena::build(ft.clone());
        let dynamic: &dyn MultipathTopology = &arena;
        let paths = dynamic.candidate_paths(dynamic.host_list()[0], dynamic.host_list()[15]);
        assert_eq!(paths.len(), 4);
    }
}
