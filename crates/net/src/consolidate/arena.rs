//! Shared candidate-path arena.
//!
//! Every consolidator asks the topology for each flow's ECMP candidate
//! paths. Enumeration walks the graph and allocates per call, and the K
//! ladder repeats the identical question once per candidate — the demands
//! scale with `K` but the endpoints never change. [`PathArena`] answers
//! from precomputed storage. It implements [`MultipathTopology`] itself,
//! so the greedy, aggregation-preset, and MILP consolidators all benefit
//! through the trait without code changes.
//!
//! # Storage
//!
//! Naive per-host-pair caching is quadratic in hosts and explodes at
//! scale: a k=16 fat-tree has ~1M ordered host pairs × 64 candidates,
//! gigabytes of duplicated switch sequences. But when every host is
//! single-homed (degree 1 — true of fat-trees and leaf–spines), a
//! candidate path factors as `[src] + interior + [dst]` with
//! `[uplink(src)] + interior_links + [uplink(dst)]`, and the interior
//! depends only on the ordered pair of *access switches*. The arena
//! therefore stores one flat interior-segment table per access pair —
//! `(k²/4)²` entries instead of `(k³/4)²` — and assembles full paths on
//! demand from contiguous `u32` slices. Any topology with a multi-homed
//! host falls back to per-host-pair owned paths.

use std::collections::HashMap;

use eprons_topo::{LinkId, MultipathTopology, NodeId, Path, PathRef, Topology};

/// Interior segments shared across all host pairs with the same ordered
/// access-switch pair. All index vectors are flat SoA over `u32` ids.
#[derive(Debug, Clone)]
struct SharedStore {
    /// `NodeId.0` → host ordinal, `u32::MAX` for non-hosts.
    host_ord: Vec<u32>,
    /// Per host ordinal: its single access switch.
    access: Vec<NodeId>,
    /// Per host ordinal: its uplink.
    uplink: Vec<LinkId>,
    /// `NodeId.0` → compact access-switch index, `u32::MAX` otherwise.
    acc_idx: Vec<u32>,
    n_acc: usize,
    /// Ordered access pair `i * n_acc + j` → candidate-id range
    /// `pair_off[p]..pair_off[p + 1]`.
    pair_off: Vec<u32>,
    /// Candidate id → interior-node range in `seg_nodes`.
    cand_node_off: Vec<u32>,
    /// Candidate id → interior-link range in `seg_links`.
    cand_link_off: Vec<u32>,
    seg_nodes: Vec<u32>,
    seg_links: Vec<u32>,
    /// Longest interior node segment — sizes assembly scratch exactly.
    max_seg: usize,
}

impl SharedStore {
    /// Candidate-id range for `(src, dst)` if both are known hosts with
    /// distinct access info resolvable in this store.
    fn pair_candidates(&self, src: NodeId, dst: NodeId) -> Option<std::ops::Range<usize>> {
        if src == dst {
            return None;
        }
        let so = *self.host_ord.get(src.0)?;
        let do_ = *self.host_ord.get(dst.0)?;
        if so == u32::MAX || do_ == u32::MAX {
            return None;
        }
        let i = self.acc_idx[self.access[so as usize].0] as usize;
        let j = self.acc_idx[self.access[do_ as usize].0] as usize;
        let p = i * self.n_acc + j;
        Some(self.pair_off[p] as usize..self.pair_off[p + 1] as usize)
    }

    /// Assembles candidate `c` for `(src, dst)` into the scratch buffers.
    fn assemble(
        &self,
        src: NodeId,
        dst: NodeId,
        c: usize,
        nodes: &mut Vec<NodeId>,
        links: &mut Vec<LinkId>,
    ) {
        let so = self.host_ord[src.0] as usize;
        let do_ = self.host_ord[dst.0] as usize;
        nodes.clear();
        links.clear();
        nodes.push(src);
        let nr = self.cand_node_off[c] as usize..self.cand_node_off[c + 1] as usize;
        for &v in &self.seg_nodes[nr] {
            nodes.push(NodeId(v as usize));
        }
        nodes.push(dst);
        links.push(self.uplink[so]);
        let lr = self.cand_link_off[c] as usize..self.cand_link_off[c + 1] as usize;
        for &l in &self.seg_links[lr] {
            links.push(LinkId(l as usize));
        }
        links.push(self.uplink[do_]);
    }

    fn bytes(&self) -> usize {
        self.overhead_bytes() + self.seg_nodes.len() * 4 + self.seg_links.len() * 4
    }

    /// Everything except the interior segments themselves: host remap
    /// tables and offset arrays, not attributable to any one access pair.
    fn overhead_bytes(&self) -> usize {
        self.host_ord.len() * 4
            + self.access.len() * std::mem::size_of::<NodeId>()
            + self.uplink.len() * std::mem::size_of::<LinkId>()
            + self.acc_idx.len() * 4
            + self.pair_off.len() * 4
            + self.cand_node_off.len() * 4
            + self.cand_link_off.len() * 4
    }

    /// Segment bytes of one ordered access pair `p = i·n_acc + j`.
    fn pair_seg_bytes(&self, p: usize) -> usize {
        let c0 = self.pair_off[p] as usize;
        let c1 = self.pair_off[p + 1] as usize;
        let nodes = (self.cand_node_off[c1] - self.cand_node_off[c0]) as usize;
        let links = (self.cand_link_off[c1] - self.cand_link_off[c0]) as usize;
        (nodes + links) * 4
    }
}

/// Where an arena's bytes live, split by a caller-supplied grouping of
/// the path sources (see [`PathArena::byte_partition`]). The invariant
/// `per_group.sum() + shared == arena_bytes()` keeps the
/// `net.arena.bytes` gauge meaningful when the arena is viewed as
/// pod-local slices: a pod's slice cost is `per_group[pod]` plus its
/// share of the unattributable `shared` overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaByteBreakdown {
    /// Bytes attributed to each group (e.g. fat-tree pod).
    pub per_group: Vec<usize>,
    /// Bytes not attributable to any group: remap tables, offset
    /// arrays, and storage whose source the grouping declined.
    pub shared: usize,
}

impl ArenaByteBreakdown {
    /// Total across groups and shared — always equals
    /// [`PathArena::arena_bytes`].
    pub fn total(&self) -> usize {
        self.per_group.iter().sum::<usize>() + self.shared
    }
}

/// Backing storage: shared interior segments, or per-pair owned paths
/// when the single-homed-host factoring doesn't hold.
#[derive(Debug, Clone)]
enum Store {
    Shared(SharedStore),
    PerPair(HashMap<(NodeId, NodeId), Vec<Path>>),
}

/// A precomputed candidate-path table over an inner topology.
///
/// Cheap to share: build once per scenario (`ScenarioContext` holds one)
/// and pass `&arena` wherever a `&dyn MultipathTopology` is expected.
/// Lookup order has no effect on results — the arena returns exactly what
/// the inner topology would, so consolidation stays bit-identical.
#[derive(Debug, Clone)]
pub struct PathArena<T> {
    inner: T,
    store: Store,
}

impl<T: MultipathTopology> PathArena<T> {
    /// Builds the arena. Single-homed hosts (every fat-tree and
    /// leaf–spine) get the shared-segment store, enumerating one
    /// representative host pair per ordered access pair; otherwise every
    /// ordered host pair is enumerated and stored outright.
    pub fn build(inner: T) -> Self {
        let store = Self::build_shared(&inner).unwrap_or_else(|| Self::build_per_pair(&inner));
        let arena = PathArena { inner, store };
        eprons_obs::registry()
            .gauge("net.arena.bytes")
            .set(arena.arena_bytes() as f64);
        arena
    }

    /// Shared-segment store, or `None` if the topology's candidate paths
    /// don't factor through access-switch pairs.
    fn build_shared(inner: &T) -> Option<Store> {
        let topo = inner.topology();
        let hosts = inner.host_list();
        if hosts.is_empty() {
            return Some(Store::Shared(SharedStore {
                host_ord: Vec::new(),
                access: Vec::new(),
                uplink: Vec::new(),
                acc_idx: Vec::new(),
                n_acc: 0,
                pair_off: vec![0],
                cand_node_off: vec![0],
                cand_link_off: vec![0],
                seg_nodes: Vec::new(),
                seg_links: Vec::new(),
                max_seg: 0,
            }));
        }

        let mut host_ord = vec![u32::MAX; topo.num_nodes()];
        let mut access = Vec::with_capacity(hosts.len());
        let mut uplink = Vec::with_capacity(hosts.len());
        for (ord, &h) in hosts.iter().enumerate() {
            let nbrs = topo.neighbors(h);
            if nbrs.len() != 1 {
                return None; // multi-homed host: factoring invalid
            }
            host_ord[h.0] = ord as u32;
            access.push(nbrs[0].0);
            uplink.push(nbrs[0].1);
        }

        // Compact access-switch indexing, plus up to two representative
        // hosts per access switch (two are needed for the diagonal).
        let mut acc_idx = vec![u32::MAX; topo.num_nodes()];
        let mut acc_nodes: Vec<NodeId> = Vec::new();
        let mut reps: Vec<(NodeId, Option<NodeId>)> = Vec::new();
        for (ord, &a) in access.iter().enumerate() {
            let h = hosts[ord];
            if acc_idx[a.0] == u32::MAX {
                acc_idx[a.0] = acc_nodes.len() as u32;
                acc_nodes.push(a);
                reps.push((h, None));
            } else {
                let r = &mut reps[acc_idx[a.0] as usize];
                if r.1.is_none() {
                    r.1 = Some(h);
                }
            }
        }
        let n_acc = acc_nodes.len();

        let mut pair_off: Vec<u32> = Vec::with_capacity(n_acc * n_acc + 1);
        pair_off.push(0);
        let mut cand_node_off: Vec<u32> = vec![0];
        let mut cand_link_off: Vec<u32> = vec![0];
        let mut seg_nodes: Vec<u32> = Vec::new();
        let mut seg_links: Vec<u32> = Vec::new();
        let mut max_seg = 0usize;
        let mut n_cand = 0u32;

        for i in 0..n_acc {
            for j in 0..n_acc {
                let pair = if i == j {
                    // Two distinct hosts under the same access switch;
                    // if there is only one, the pair is never queried.
                    reps[i].1.map(|b| (reps[i].0, b))
                } else {
                    Some((reps[i].0, reps[j].0))
                };
                if let Some((ra, rb)) = pair {
                    for p in inner.candidate_paths(ra, rb) {
                        let n = p.nodes.len();
                        // The factoring assumption, checked on the
                        // representative: endpoints in place, first/last
                        // hop are the hosts' uplinks.
                        let ok = n >= 3
                            && p.nodes[0] == ra
                            && p.nodes[n - 1] == rb
                            && p.nodes[1] == access[host_ord[ra.0] as usize]
                            && p.nodes[n - 2] == access[host_ord[rb.0] as usize]
                            && p.links[0] == uplink[host_ord[ra.0] as usize]
                            && p.links[p.links.len() - 1] == uplink[host_ord[rb.0] as usize];
                        if !ok {
                            return None;
                        }
                        for &v in &p.nodes[1..n - 1] {
                            seg_nodes.push(v.0 as u32);
                        }
                        for &l in &p.links[1..p.links.len() - 1] {
                            seg_links.push(l.0 as u32);
                        }
                        max_seg = max_seg.max(n - 2);
                        cand_node_off.push(seg_nodes.len() as u32);
                        cand_link_off.push(seg_links.len() as u32);
                        n_cand += 1;
                    }
                }
                pair_off.push(n_cand);
            }
        }

        Some(Store::Shared(SharedStore {
            host_ord,
            access,
            uplink,
            acc_idx,
            n_acc,
            pair_off,
            cand_node_off,
            cand_link_off,
            seg_nodes,
            seg_links,
            max_seg,
        }))
    }

    fn build_per_pair(inner: &T) -> Store {
        let hosts: Vec<NodeId> = inner.host_list().to_vec();
        let mut paths = HashMap::with_capacity(hosts.len() * hosts.len());
        for &src in &hosts {
            for &dst in &hosts {
                if src != dst {
                    paths.insert((src, dst), inner.candidate_paths(src, dst));
                }
            }
        }
        Store::PerPair(paths)
    }

    /// Number of precomputed (src, dst) pairs.
    pub fn num_pairs(&self) -> usize {
        match &self.store {
            Store::Shared(_) => {
                let h = self.inner.host_list().len();
                h * h.saturating_sub(1)
            }
            Store::PerPair(map) => map.len(),
        }
    }

    /// Approximate bytes held by the arena's path storage (reported as
    /// the `net.arena.bytes` gauge).
    pub fn arena_bytes(&self) -> usize {
        match &self.store {
            Store::Shared(s) => s.bytes(),
            Store::PerPair(map) => {
                map.values()
                    .flatten()
                    .map(|p| {
                        p.nodes.len() * std::mem::size_of::<NodeId>()
                            + p.links.len() * std::mem::size_of::<LinkId>()
                    })
                    .sum::<usize>()
                    + map.len() * 2 * std::mem::size_of::<NodeId>()
            }
        }
    }

    /// Splits [`Self::arena_bytes`] across `n_groups` buckets.
    ///
    /// Storage is attributed to `group_of(source)` — the *source access
    /// switch* of each ordered pair in the shared store, the source
    /// *host* in the per-pair store; the pod-decomposed consolidator
    /// passes `FatTree::pod_of`, so a pod's bucket is exactly the
    /// interior segments its pod-local [`eprons_topo::PodView`] slice of
    /// the arena can originate. `None` (or an out-of-range group) and
    /// all remap/offset overhead land in the `shared` bucket, so
    /// `breakdown.total() == arena_bytes()` always holds.
    pub fn byte_partition(
        &self,
        n_groups: usize,
        group_of: impl Fn(NodeId) -> Option<usize>,
    ) -> ArenaByteBreakdown {
        let mut per_group = vec![0usize; n_groups];
        let mut shared;
        match &self.store {
            Store::Shared(s) => {
                shared = s.overhead_bytes();
                // Invert the compact access index once.
                let mut acc_node = vec![NodeId(usize::MAX); s.n_acc];
                for (raw, &ci) in s.acc_idx.iter().enumerate() {
                    if ci != u32::MAX {
                        acc_node[ci as usize] = NodeId(raw);
                    }
                }
                for (i, &an) in acc_node.iter().enumerate() {
                    let bucket = group_of(an).filter(|&g| g < n_groups);
                    for j in 0..s.n_acc {
                        let b = s.pair_seg_bytes(i * s.n_acc + j);
                        match bucket {
                            Some(g) => per_group[g] += b,
                            None => shared += b,
                        }
                    }
                }
            }
            Store::PerPair(map) => {
                shared = map.len() * 2 * std::mem::size_of::<NodeId>();
                for (&(src, _), paths) in map {
                    let b: usize = paths
                        .iter()
                        .map(|p| {
                            p.nodes.len() * std::mem::size_of::<NodeId>()
                                + p.links.len() * std::mem::size_of::<LinkId>()
                        })
                        .sum();
                    match group_of(src).filter(|&g| g < n_groups) {
                        Some(g) => per_group[g] += b,
                        None => shared += b,
                    }
                }
            }
        }
        ArenaByteBreakdown { per_group, shared }
    }

    /// `true` when the compact shared-segment store is in use.
    pub fn is_shared(&self) -> bool {
        matches!(self.store, Store::Shared(_))
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: MultipathTopology> MultipathTopology for PathArena<T> {
    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn host_list(&self) -> &[NodeId] {
        self.inner.host_list()
    }

    fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
        match &self.store {
            Store::Shared(s) => match s.pair_candidates(src, dst) {
                Some(range) => {
                    let mut out = Vec::with_capacity(range.len());
                    let mut nodes = Vec::with_capacity(s.max_seg + 2);
                    let mut links = Vec::with_capacity(s.max_seg + 1);
                    for c in range {
                        s.assemble(src, dst, c, &mut nodes, &mut links);
                        out.push(Path {
                            nodes: nodes.clone(),
                            links: links.clone(),
                        });
                    }
                    out
                }
                // Not a host pair (e.g. a switch endpoint): delegate.
                None => self.inner.candidate_paths(src, dst),
            },
            Store::PerPair(map) => match map.get(&(src, dst)) {
                Some(p) => p.clone(),
                None => self.inner.candidate_paths(src, dst),
            },
        }
    }

    fn for_each_candidate(&self, src: NodeId, dst: NodeId, f: &mut dyn FnMut(PathRef<'_>)) {
        match &self.store {
            Store::Shared(s) => match s.pair_candidates(src, dst) {
                Some(range) => {
                    // Two scratch buffers per call, reused across
                    // candidates — no per-path allocation.
                    let mut nodes = Vec::with_capacity(s.max_seg + 2);
                    let mut links = Vec::with_capacity(s.max_seg + 1);
                    for c in range {
                        s.assemble(src, dst, c, &mut nodes, &mut links);
                        f(PathRef {
                            nodes: &nodes,
                            links: &links,
                        });
                    }
                }
                None => self.inner.for_each_candidate(src, dst, f),
            },
            Store::PerPair(map) => match map.get(&(src, dst)) {
                Some(ps) => {
                    for p in ps {
                        f(PathRef::of(p));
                    }
                }
                None => self.inner.for_each_candidate(src, dst, f),
            },
        }
    }

    fn nth_candidate(&self, src: NodeId, dst: NodeId, idx: usize) -> Option<Path> {
        match &self.store {
            Store::Shared(s) => match s.pair_candidates(src, dst) {
                Some(range) => {
                    let c = range.start + idx;
                    if c >= range.end {
                        return None;
                    }
                    let mut nodes = Vec::with_capacity(s.max_seg + 2);
                    let mut links = Vec::with_capacity(s.max_seg + 1);
                    s.assemble(src, dst, c, &mut nodes, &mut links);
                    Some(Path { nodes, links })
                }
                None => self.inner.nth_candidate(src, dst, idx),
            },
            Store::PerPair(map) => match map.get(&(src, dst)) {
                Some(ps) => ps.get(idx).cloned(),
                None => self.inner.nth_candidate(src, dst, idx),
            },
        }
    }

    fn nth_candidate_into(
        &self,
        src: NodeId,
        dst: NodeId,
        idx: usize,
        nodes: &mut Vec<NodeId>,
        links: &mut Vec<LinkId>,
    ) -> bool {
        match &self.store {
            Store::Shared(s) => match s.pair_candidates(src, dst) {
                Some(range) => {
                    let c = range.start + idx;
                    if c >= range.end {
                        return false;
                    }
                    s.assemble(src, dst, c, nodes, links);
                    true
                }
                None => self.inner.nth_candidate_into(src, dst, idx, nodes, links),
            },
            Store::PerPair(map) => match map.get(&(src, dst)) {
                Some(ps) => match ps.get(idx) {
                    Some(p) => {
                        nodes.clear();
                        links.clear();
                        nodes.extend_from_slice(&p.nodes);
                        links.extend_from_slice(&p.links);
                        true
                    }
                    None => false,
                },
                None => self.inner.nth_candidate_into(src, dst, idx, nodes, links),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_topo::{FatTree, LeafSpine, NodeKind};

    #[test]
    fn arena_serves_identical_paths() {
        let ft = FatTree::new(4, 1000.0);
        let arena = PathArena::build(&ft);
        assert!(arena.is_shared());
        assert_eq!(arena.num_pairs(), 16 * 15);
        let hosts = arena.host_list().to_vec();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    arena.candidate_paths(src, dst),
                    ft.candidate_paths(src, dst),
                    "arena must be invisible to results"
                );
            }
        }
        assert_eq!(arena.topology().num_links(), ft.topology().num_links());
    }

    #[test]
    fn arena_is_shareable_through_the_trait() {
        let ft = std::sync::Arc::new(FatTree::new(4, 1000.0));
        let arena = PathArena::build(ft.clone());
        let dynamic: &dyn MultipathTopology = &arena;
        let paths = dynamic.candidate_paths(dynamic.host_list()[0], dynamic.host_list()[15]);
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn visitors_match_owned_enumeration() {
        let ls = LeafSpine::new(3, 2, 4, 1000.0);
        let arena = PathArena::build(&ls);
        assert!(arena.is_shared());
        let hosts = arena.host_list().to_vec();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                let owned = ls.candidate_paths(src, dst);
                let mut seen = Vec::new();
                arena.for_each_candidate(src, dst, &mut |p| seen.push(p.to_path()));
                assert_eq!(seen, owned);
                for (i, p) in owned.iter().enumerate() {
                    assert_eq!(arena.nth_candidate(src, dst, i).as_ref(), Some(p));
                }
                assert!(arena.nth_candidate(src, dst, owned.len()).is_none());
            }
        }
        assert!(arena.arena_bytes() > 0);
    }

    /// A toy fabric with one dual-homed host — the access-pair factoring
    /// does not apply, so the arena must take the per-pair store.
    #[derive(Debug)]
    struct DualHomed {
        topo: Topology,
        hosts: Vec<NodeId>,
    }

    impl DualHomed {
        fn new() -> Self {
            let mut topo = Topology::new();
            let a = topo.add_node(NodeKind::Host, "a");
            let b = topo.add_node(NodeKind::Host, "b");
            let s1 = topo.add_node(NodeKind::EdgeSwitch, "s1");
            let s2 = topo.add_node(NodeKind::EdgeSwitch, "s2");
            topo.add_link(a, s1, 1000.0);
            topo.add_link(a, s2, 1000.0); // dual-homed
            topo.add_link(b, s1, 1000.0);
            topo.add_link(b, s2, 1000.0);
            DualHomed {
                topo,
                hosts: vec![a, b],
            }
        }
    }

    impl MultipathTopology for DualHomed {
        fn topology(&self) -> &Topology {
            &self.topo
        }

        fn host_list(&self) -> &[NodeId] {
            &self.hosts
        }

        fn candidate_paths(&self, src: NodeId, dst: NodeId) -> Vec<Path> {
            assert_ne!(src, dst);
            [2usize, 3]
                .iter()
                .map(|&s| {
                    let sw = NodeId(s);
                    Path {
                        nodes: vec![src, sw, dst],
                        links: vec![
                            self.topo.link_between(src, sw).unwrap(),
                            self.topo.link_between(sw, dst).unwrap(),
                        ],
                    }
                })
                .collect()
        }
    }

    #[test]
    fn byte_partition_conserves_arena_bytes() {
        for k in [4usize, 8] {
            let ft = FatTree::new(k, 1000.0);
            let arena = PathArena::build(&ft);
            let bd = arena.byte_partition(ft.num_pods(), |n| ft.pod_of(n));
            assert_eq!(bd.per_group.len(), k);
            assert_eq!(
                bd.total(),
                arena.arena_bytes(),
                "k={k}: per-pod bytes + shared must reproduce the gauge value"
            );
            // Pods are structurally identical, so their slices cost the
            // same, and with real traffic sources each pod is non-empty.
            assert!(bd.per_group.iter().all(|&b| b > 0 && b == bd.per_group[0]));
            assert!(bd.shared > 0);
        }
    }

    #[test]
    fn byte_partition_routes_unmapped_groups_to_shared() {
        let ft = FatTree::new(4, 1000.0);
        let arena = PathArena::build(&ft);
        let none = arena.byte_partition(4, |_| None);
        assert_eq!(none.per_group, vec![0; 4]);
        assert_eq!(none.shared, arena.arena_bytes());
        // Out-of-range groups also fall into shared rather than panic.
        let oob = arena.byte_partition(1, |n| ft.pod_of(n));
        assert_eq!(oob.total(), arena.arena_bytes());
        assert!(oob.per_group[0] > 0);

        // Per-pair store obeys the same invariant.
        let fabric = DualHomed::new();
        let pp = PathArena::build(&fabric);
        assert!(!pp.is_shared());
        let bd = pp.byte_partition(2, |n| Some(n.0 % 2));
        assert_eq!(bd.total(), pp.arena_bytes());
    }

    #[test]
    fn multi_homed_hosts_fall_back_to_per_pair() {
        let fabric = DualHomed::new();
        let arena = PathArena::build(&fabric);
        assert!(!arena.is_shared());
        assert_eq!(arena.num_pairs(), 2);
        let (a, b) = (fabric.hosts[0], fabric.hosts[1]);
        assert_eq!(arena.candidate_paths(a, b), fabric.candidate_paths(a, b));
        let mut seen = Vec::new();
        arena.for_each_candidate(a, b, &mut |p| seen.push(p.to_path()));
        assert_eq!(seen, fabric.candidate_paths(a, b));
        assert_eq!(
            arena.nth_candidate(a, b, 1),
            Some(fabric.candidate_paths(a, b)[1].clone())
        );
        assert!(arena.arena_bytes() > 0);
    }
}
