//! Greedy bin-packing consolidation — the paper's deployable heuristic
//! (§IV-B, "similar to the greedy bin-packing algorithm in \[2\]"
//! i.e. ElasticTree).
//!
//! Flows are placed largest-scaled-demand first. For each flow, the
//! candidate path chosen is the one that (1) fits the scaled demand under
//! every link's usable capacity, (2) activates the fewest *new* switches,
//! and (3) among ties prefers the leftmost (lowest-index) candidate — the
//! deterministic bias that concentrates traffic on a minimal subtree.

use eprons_topo::{MultipathTopology, PathRef};

use super::{Assignment, ConsolidationConfig, ConsolidationError, Consolidator, PathCollector};
use crate::flow::FlowSet;

/// Greedy first-fit-decreasing consolidator.
///
/// ```
/// use eprons_net::flow::FlowSet;
/// use eprons_net::{ConsolidationConfig, Consolidator, FlowClass, GreedyConsolidator};
/// use eprons_topo::FatTree;
///
/// let ft = FatTree::new(4, 1000.0);
/// let mut flows = FlowSet::new();
/// flows.add(ft.host(0, 0, 0), ft.host(1, 0, 0), 200.0, FlowClass::LatencySensitive);
/// let cfg = ConsolidationConfig::with_k(2.0); // reserve 2× headroom
/// let a = GreedyConsolidator.consolidate(&ft, &flows, &cfg).unwrap();
/// // One cross-pod flow: 2 edges + 2 aggs + 1 core active.
/// assert_eq!(a.active_switch_count(&ft), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreedyConsolidator;

impl Consolidator for GreedyConsolidator {
    fn consolidate(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
    ) -> Result<Assignment, ConsolidationError> {
        let _t = eprons_obs::Timer::scoped("net.consolidate.greedy_s");
        let mut sp = eprons_obs::Span::enter("net.consolidate");
        if eprons_obs::enabled() {
            sp.note(format!("algo=greedy flows={}", flows.len()));
        }
        let topo = net.topology();
        // Largest scaled demand first; ties broken by flow id so the
        // placement is deterministic.
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by(|&a, &b| {
            let da = flows.flows()[a].scaled_demand(cfg.scale_k);
            let db = flows.flows()[b].scaled_demand(cfg.scale_k);
            db.partial_cmp(&da)
                .expect("demands are finite")
                .then(a.cmp(&b))
        });

        let mut reserved = vec![0.0; topo.num_links() * 2];
        let mut switch_active = vec![false; topo.num_nodes()];
        let mut chosen = PathCollector::for_flows(flows.len());
        let mut nbuf = Vec::new();
        let mut lbuf = Vec::new();

        for &fi in &order {
            let flow = &flows.flows()[fi];
            let demand = flow.scaled_demand(cfg.scale_k);
            // Selection pass: walk candidates as borrowed slices (no
            // allocation per path); only the winner is materialized.
            let mut best: Option<(usize, usize)> = None; // (new_switches, idx)
            let mut idx = 0usize;
            net.for_each_candidate(flow.src, flow.dst, &mut |p| {
                let this = idx;
                idx += 1;
                if p.nodes.iter().any(|&n| cfg.is_excluded(n)) {
                    return;
                }
                let fits = p.hops().all(|(from, _, l)| {
                    let usable = cfg.usable_capacity(topo.link(l).capacity_mbps);
                    let dir = crate::links::direction_from(topo, l, from);
                    reserved[l.0 * 2 + dir] + demand <= usable + 1e-9
                });
                if !fits {
                    return;
                }
                let new_switches = p
                    .interior()
                    .iter()
                    .filter(|&&n| !switch_active[n.0])
                    .count();
                let key = (new_switches, this);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            });
            let Some((_, idx)) = best else {
                if eprons_obs::enabled() {
                    eprons_obs::registry()
                        .counter("net.consolidate.infeasible")
                        .inc();
                }
                return Err(ConsolidationError::NoFeasiblePath { flow: fi });
            };
            assert!(
                net.nth_candidate_into(flow.src, flow.dst, idx, &mut nbuf, &mut lbuf),
                "index valid"
            );
            let p = PathRef {
                nodes: &nbuf,
                links: &lbuf,
            };
            for (from, _, l) in p.hops() {
                let dir = crate::links::direction_from(topo, l, from);
                reserved[l.0 * 2 + dir] += demand;
            }
            for &n in p.nodes {
                switch_active[n.0] = true;
            }
            chosen.set(fi, p);
        }

        let assignment = Assignment::from_collector(net, flows, chosen);
        if eprons_obs::enabled() {
            eprons_obs::registry()
                .counter("net.consolidate.passes")
                .inc();
            eprons_obs::record(eprons_obs::Event::ConsolidationPass {
                algo: "greedy".into(),
                flows: flows.len() as u64,
                placed: flows.len() as u64,
                active_switches: assignment.active_switch_count(net) as u64,
            });
        }
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowClass, FlowId, FlowSet};
    use eprons_topo::FatTree;

    /// The paper's Fig. 2 scenario: 1 Gbps links, 50 Mbps margin, one
    /// 900 Mbps elephant plus two 20 Mbps latency-sensitive flows.
    fn fig2_flows(ft: &FatTree) -> FlowSet {
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(1, 0, 1),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.host(0, 1, 0),
            ft.host(1, 1, 0),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs
    }

    #[test]
    fn fig2_k1_minimal_switches() {
        // K=1: 900 + 20 + 20 = 940 <= 950 — everything shares one path
        // tree; minimal active switches (Fig. 2a).
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let a = GreedyConsolidator
            .consolidate(&ft, &fs, &ConsolidationConfig::with_k(1.0))
            .unwrap();
        a.validate(&ft, &fs, &ConsolidationConfig::with_k(1.0))
            .unwrap();
        // src edges: edge(0,0) and edge(0,1); dst edges: edge(1,0), edge(1,1);
        // plus 1 agg per pod + 1 core = 7 switches minimum.
        assert_eq!(a.active_switch_count(&ft), 7);
        // The inter-pod links carry all three flows → shared core.
        let core_of = |f: usize| a.path(FlowId(f)).nodes[3];
        assert_eq!(core_of(0), core_of(1));
    }

    #[test]
    fn fig2_k2_splits_one_query_off() {
        // K=2: sensitive flows reserve 40 each; 900+40+40 = 980 > 950, so
        // at least one query flow moves to a new path (Fig. 2b).
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let cfg = ConsolidationConfig::with_k(2.0);
        let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        let k1 = GreedyConsolidator
            .consolidate(&ft, &fs, &ConsolidationConfig::with_k(1.0))
            .unwrap();
        assert!(
            a.active_switch_count(&ft) > k1.active_switch_count(&ft),
            "K=2 must activate more switches than K=1"
        );
    }

    #[test]
    fn fig2_k3_splits_both_queries_off() {
        // K=3: each query reserves 60; 900+60 = 960 > 950, so *neither*
        // query can share the elephant's links (Fig. 2c).
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let cfg = ConsolidationConfig::with_k(3.0);
        let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        let elephant = a.path(FlowId(0));
        for f in [1usize, 2] {
            let q = a.path(FlowId(f));
            assert!(
                q.links.iter().all(|l| !elephant.links.contains(l)),
                "flow {f} still shares a link with the elephant at K=3"
            );
        }
        let k2 = GreedyConsolidator
            .consolidate(&ft, &fs, &ConsolidationConfig::with_k(2.0))
            .unwrap();
        assert!(a.active_switch_count(&ft) >= k2.active_switch_count(&ft));
    }

    #[test]
    fn active_switches_grow_monotonically_with_k() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let mut prev = 0usize;
        for k in [1.0, 2.0, 3.0] {
            let a = GreedyConsolidator
                .consolidate(&ft, &fs, &ConsolidationConfig::with_k(k))
                .unwrap();
            let n = a.active_switch_count(&ft);
            assert!(n >= prev, "K={k}: switches decreased");
            prev = n;
        }
    }

    #[test]
    fn infeasible_when_demand_exceeds_capacity() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        // Two 600 Mbps flows from one host: its single uplink can't hold
        // 1200 Mbps.
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            600.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 0),
            ft.host(2, 0, 0),
            600.0,
            FlowClass::LatencyTolerant,
        );
        let r = GreedyConsolidator.consolidate(&ft, &fs, &ConsolidationConfig::with_k(1.0));
        assert!(matches!(r, Err(ConsolidationError::NoFeasiblePath { .. })));
    }

    #[test]
    fn many_flows_consolidate_to_subtree() {
        // 16 small cross-pod flows, K=1: all fit on a minimal subtree of
        // shared switches rather than spreading across all cores.
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        for p in 0..4usize {
            for i in 0..2 {
                for h in 0..2 {
                    let src = ft.host(p, i, h);
                    let dst = ft.host((p + 1) % 4, i, h);
                    fs.add(src, dst, 10.0, FlowClass::LatencySensitive);
                }
            }
        }
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        // All 8 edges stay active (flows originate everywhere), but only
        // one agg per pod and one core are needed: 8 + 4 + 1 = 13.
        assert_eq!(a.active_switch_count(&ft), 13);
    }

    #[test]
    fn deterministic_across_runs() {
        let ft = FatTree::new(4, 1000.0);
        let fs = fig2_flows(&ft);
        let cfg = ConsolidationConfig::with_k(2.0);
        let a = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        let b = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        for f in 0..fs.len() {
            assert_eq!(a.path(FlowId(f)).nodes, b.path(FlowId(f)).nodes);
        }
    }
}
