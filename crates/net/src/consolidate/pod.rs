//! Hierarchical pod-decomposed consolidation.
//!
//! A k-ary fat-tree is structurally hierarchical: intra-pod traffic
//! never leaves its pod, and inter-pod flows contend only on the
//! agg→core tier. This module exploits that to split the monolithic
//! greedy consolidation into
//!
//! 1. **per-pod sub-problems** — each pod places its intra-pod flows
//!    over its own edge/agg bipartite tier ([`eprons_topo::PodView`]
//!    geometry), a pure function of pod-local inputs only, so pods are
//!    embarrassingly parallel *and* a failure masked into one pod
//!    provably leaves every other pod's solve byte-identical;
//! 2. **a core stitch** — a serial pass that walks the inter-pod flows
//!    in global greedy order and consolidates them onto core switches,
//!    charging each placement against the pod solves' residual edge→agg
//!    capacities plus the agg↔core links.
//!
//! When the stitch cannot carry a pod's uplink aggregate because that
//! pod's intra placement consumed edge→agg capacity the inter traffic
//! needs, it *pushes back* a tightened uplink budget (per-edge floors
//! spread across the stitch-usable groups), the pod re-solves, and the
//! stitch re-runs — bounded to [`PodDecompOptions::max_rounds`] rounds.
//! Anything the decomposition cannot place falls back to the monolithic
//! [`GreedyConsolidator`], which therefore remains the differential
//! oracle: feasibility verdicts always agree, and the objective tracks
//! within the tolerance pinned by `crates/core/tests/diff_pod_decomp.rs`.
//!
//! Determinism: pods are solved in fixed order (the runner must
//! preserve order, as `parallel_map_range` does), the stitch walks one
//! globally sorted flow list, and every tie-break is by ordinal — no
//! iteration over hash maps anywhere on the decision path.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use eprons_topo::{FatTree, MultipathTopology, PathRef};

use super::greedy::GreedyConsolidator;
use super::{Assignment, ConsolidationConfig, ConsolidationError, Consolidator, PathCollector};
use crate::flow::FlowSet;

const EPS: f64 = 1e-9;

/// The pure outcome of one pod-local solve: candidate choices for the
/// pod's intra flows plus the residual edge→agg capacities and active
/// switches the core stitch builds on. Depends only on pod-local inputs
/// (the pod's flows, its slice of the failure mask, and any push-back
/// floors), never on other pods' decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct PodSolve {
    /// `(flow id, candidate index)` per intra flow, in pod-local greedy
    /// order. Same-edge flows pick candidate 0; cross-edge flows pick
    /// the agg index `j`.
    choices: Vec<(u32, u32)>,
    /// Residual usable capacity edge `i` → agg `j` (`i·(k/2)+j`) after
    /// intra reservations. Push-back floors are *not* subtracted — they
    /// were reserved for the stitch, which spends from these residuals.
    res_up: Vec<f64>,
    /// Residual agg `j` → edge `i` (same indexing as `res_up`).
    res_dn: Vec<f64>,
    /// Aggs activated by intra placements.
    agg_active: Vec<bool>,
    /// Set when some intra flow (or a host uplink aggregate) cannot be
    /// placed; the caller falls back to the monolithic path, which
    /// reproduces the exact monolithic error.
    infeasible: bool,
}

impl PodSolve {
    /// `(flow id, candidate index)` per intra flow, pod-local greedy
    /// order. The byte-identity regression of pod-masked repair compares
    /// these across runs.
    pub fn choices(&self) -> &[(u32, u32)] {
        &self.choices
    }

    /// Whether this pod's sub-problem was infeasible.
    pub fn is_infeasible(&self) -> bool {
        self.infeasible
    }
}

/// Outcome of obtaining one pod's solve (fresh or cached).
pub struct PodOutcome {
    /// The solve, possibly shared with a [`PodSolveCache`].
    pub solve: Arc<PodSolve>,
    /// Whether it was served from the cache.
    pub cached: bool,
}

/// Driver for the embarrassingly-parallel round-0 pod solves: given the
/// pod count and a solve closure, returns the outcomes **in pod order**.
/// `eprons-core` passes an adapter over its thread-budgeted
/// `parallel_map_range`; `None` in [`PodDecompOptions`] runs serially.
pub type PodRunner<'a> =
    &'a (dyn Fn(usize, &(dyn Fn(usize) -> PodOutcome + Sync)) -> Vec<PodOutcome> + Sync);

/// A [`PodSolveCache`] key: `(flow-set fingerprint, scale-K bits, pod,
/// stitch-usable group bitmask, sorted excluded node ids inside the
/// pod)`.
type PodSolveKey = (u64, u64, usize, u32, Vec<u32>);

/// Cache of round-0 pod solves keyed by `(flow-set fingerprint,
/// scale K, pod, stitch-usable group bitmask, pod-local failure mask)`.
/// The fingerprint hashes every flow's endpoints, demand bits, and
/// class, so a cache may be shared across contexts whose flow sets
/// differ (e.g. the epochs of a day-scoped incremental run, where
/// background demand — and with it the flow set — drifts): entries are
/// only ever served to a pass over the identical flow set. The config
/// must still match modulo `scale_k`/`excluded`, which is true within
/// one day (the `ClusterConfig` is fixed). The group bitmask is in the
/// key because the round-0 floors reserve capacity only across
/// stitch-usable groups: one dead core leaves its group usable (the
/// bitmask — and thus every cached solve — is untouched, only the
/// stitch re-runs), while losing a whole core group reshapes the floors
/// of *every* pod and must re-solve. Push-back re-solves (floored) are
/// never cached.
#[derive(Debug, Default)]
pub struct PodSolveCache {
    inner: Mutex<HashMap<PodSolveKey, Arc<PodSolve>>>,
}

impl PodSolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached pod solves.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached solve.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    fn get(&self, key: &PodSolveKey) -> Option<Arc<PodSolve>> {
        self.inner.lock().unwrap().get(key).cloned()
    }

    fn insert(&self, key: PodSolveKey, v: Arc<PodSolve>) {
        self.inner.lock().unwrap().insert(key, v);
    }
}

/// Knobs for [`consolidate_pod_decomposed`].
pub struct PodDecompOptions<'a> {
    /// Maximum stitch rounds (round 0 plus push-back re-runs); the
    /// tentpole contract bounds this to 2 before falling back.
    pub max_rounds: usize,
    /// Parallel driver for the round-0 pod solves (`None` = serial).
    pub runner: Option<PodRunner<'a>>,
    /// Round-0 solve cache (`None` = always solve fresh).
    pub cache: Option<&'a PodSolveCache>,
}

impl Default for PodDecompOptions<'static> {
    fn default() -> Self {
        PodDecompOptions {
            max_rounds: 2,
            runner: None,
            cache: None,
        }
    }
}

/// How a pod-decomposed pass went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodDecompStats {
    /// Pods in the fabric.
    pub pods: usize,
    /// Round-0 solves computed fresh.
    pub solved: usize,
    /// Round-0 solves served from the cache.
    pub cached: usize,
    /// Push-back re-solves.
    pub resolves: usize,
    /// Stitch rounds executed (0 when the pass fell back before any).
    pub rounds: usize,
    /// Headroom-balanced stitch retries (a packed stitch wedged on
    /// member fragmentation and was re-run with spreading).
    pub balanced: usize,
    /// Whether the monolithic path produced the assignment.
    pub fell_back: bool,
}

/// A pod-decomposed consolidation result.
#[derive(Debug)]
pub struct PodDecompReport {
    /// The (validated-shape) assignment, one path per flow.
    pub assignment: Assignment,
    /// Pass statistics (also exported as `net.pods.*` counters and a
    /// `PodConsolidation` journal event).
    pub stats: PodDecompStats,
    /// The per-pod solves the assignment was stitched from, pod order.
    /// Empty when the pass fell back to the monolithic path.
    pub solves: Vec<Arc<PodSolve>>,
}

struct PodFlow {
    id: u32,
    si: u32,
    di: u32,
    d: f64,
}

struct InterFlow {
    id: u32,
    sp: u32,
    si: u32,
    dp: u32,
    di: u32,
    d: f64,
}

/// Everything the pod solves and the stitch read, computed once per
/// pass. All per-pod slices are pod-local; the stitch owns the rest.
struct Prep {
    half: usize,
    n_pods: usize,
    intra: Vec<Vec<PodFlow>>,
    inter: Vec<InterFlow>,
    /// Scaled egress/ingress per host ordinal (forced host-uplink hops).
    host_eg: Vec<f64>,
    host_in: Vec<f64>,
    host_usable: Vec<f64>,
    /// Usable capacity of edge(p,i)↔agg(p,j) per `(p, i, j)`.
    ea_usable: Vec<f64>,
    /// Usable capacity of agg(p,j)↔core(j,m) per `(p, j, m)`.
    ac_usable: Vec<f64>,
    edge_ex: Vec<bool>,
    agg_ex: Vec<bool>,
    core_ex: Vec<bool>,
    /// Per pod: the sorted excluded node ids inside it (cache key part).
    pod_mask: Vec<Vec<u32>>,
    /// Fingerprint of the flow set (cache key part).
    flows_fp: u64,
}

/// Order-sensitive fingerprint of a flow set: endpoints, exact demand
/// bits, and class of every flow, hashed with the (deterministically
/// keyed) [`DefaultHasher`]. Two passes see the same fingerprint iff
/// they consolidate the same flows, which is what makes a
/// [`PodSolveCache`] safely shareable across scenario contexts.
pub fn flow_set_fingerprint(flows: &FlowSet) -> u64 {
    let mut h = DefaultHasher::new();
    flows.len().hash(&mut h);
    for f in flows.flows() {
        f.src.0.hash(&mut h);
        f.dst.0.hash(&mut h);
        f.demand_mbps.to_bits().hash(&mut h);
        matches!(f.class, crate::flow::FlowClass::LatencySensitive).hash(&mut h);
    }
    h.finish()
}

struct Fallback(&'static str);

fn prepare(ft: &FatTree, flows: &FlowSet, cfg: &ConsolidationConfig) -> Result<Prep, Fallback> {
    let half = ft.k() / 2;
    let n_pods = ft.num_pods();
    let topo = ft.topology();
    let n_hosts = ft.hosts().len();

    let mut host_eg = vec![0.0; n_hosts];
    let mut host_in = vec![0.0; n_hosts];
    let mut host_usable = vec![0.0; n_hosts];
    for (ord, &h) in ft.hosts().iter().enumerate() {
        if cfg.is_excluded(h) {
            // An excluded endpoint host kills every candidate path of its
            // flows; let the monolithic pass produce the exact verdict.
            return Err(Fallback("host excluded"));
        }
        host_usable[ord] = cfg.usable_capacity(topo.link(ft.host_uplink(h)).capacity_mbps);
    }

    let mut intra: Vec<Vec<PodFlow>> = (0..n_pods).map(|_| Vec::new()).collect();
    let mut inter: Vec<InterFlow> = Vec::new();
    for flow in flows.flows() {
        let Some((sp, si, ss)) = ft.host_slot(flow.src) else {
            return Err(Fallback("endpoint not a fat-tree host"));
        };
        let Some((dp, di, ds)) = ft.host_slot(flow.dst) else {
            return Err(Fallback("endpoint not a fat-tree host"));
        };
        let d = flow.scaled_demand(cfg.scale_k);
        host_eg[(sp * half + si) * half + ss] += d;
        host_in[(dp * half + di) * half + ds] += d;
        if sp == dp {
            intra[sp].push(PodFlow {
                id: flow.id.0 as u32,
                si: si as u32,
                di: di as u32,
                d,
            });
        } else {
            inter.push(InterFlow {
                id: flow.id.0 as u32,
                sp: sp as u32,
                si: si as u32,
                dp: dp as u32,
                di: di as u32,
                d,
            });
        }
    }
    // Greedy order everywhere: largest scaled demand first, then flow id.
    let by_demand = |da: f64, a: u32, db: f64, db_id: u32| {
        db.partial_cmp(&da)
            .expect("demands are finite")
            .then(a.cmp(&db_id))
    };
    for l in &mut intra {
        l.sort_by(|x, y| by_demand(x.d, x.id, y.d, y.id));
    }
    inter.sort_by(|x, y| by_demand(x.d, x.id, y.d, y.id));

    let mut ea_usable = vec![0.0; n_pods * half * half];
    let mut ac_usable = vec![0.0; n_pods * half * half];
    for p in 0..n_pods {
        let pv = ft.pod_view(p);
        for i in 0..half {
            for j in 0..half {
                let l = pv.edge_agg_link(i, j);
                ea_usable[(p * half + i) * half + j] =
                    cfg.usable_capacity(topo.link(l).capacity_mbps);
            }
        }
        pv.for_each_core_uplink(|j, m, _, l| {
            ac_usable[(p * half + j) * half + m] = cfg.usable_capacity(topo.link(l).capacity_mbps);
        });
    }

    let mut edge_ex = vec![false; n_pods * half];
    let mut agg_ex = vec![false; n_pods * half];
    let mut core_ex = vec![false; half * half];
    let mut pod_mask: Vec<Vec<u32>> = (0..n_pods).map(|_| Vec::new()).collect();
    for &n in &cfg.excluded {
        if let Some((p, i)) = ft.edge_ordinal(n) {
            edge_ex[p * half + i] = true;
            pod_mask[p].push(n.0 as u32);
        } else if let Some((p, j)) = ft.agg_ordinal(n) {
            agg_ex[p * half + j] = true;
            pod_mask[p].push(n.0 as u32);
        } else if let Some((g, m)) = ft.core_ordinal(n) {
            core_ex[g * half + m] = true;
        }
    }

    Ok(Prep {
        half,
        n_pods,
        intra,
        inter,
        host_eg,
        host_in,
        host_usable,
        ea_usable,
        ac_usable,
        edge_ex,
        agg_ex,
        core_ex,
        pod_mask,
        flows_fp: flow_set_fingerprint(flows),
    })
}

/// Push-back floors for one pod: capacity the intra placement must keep
/// free on the edge→agg tier for the stitch.
struct PodFloors {
    up: Vec<f64>,
    dn: Vec<f64>,
}

/// Solves one pod: place its intra flows greedily over the edge/agg
/// bipartite tier, mirroring the monolithic greedy's candidate order
/// (same-edge → the single 2-hop path, cross-edge → one 4-hop path per
/// agg `j`), fit rule, and `(new switches, candidate index)` key.
fn solve_pod(prep: &Prep, pod: usize, floors: Option<&PodFloors>) -> PodSolve {
    let half = prep.half;
    let hp = half * half;
    let mut out = PodSolve {
        choices: Vec::with_capacity(prep.intra[pod].len()),
        res_up: vec![0.0; hp],
        res_dn: vec![0.0; hp],
        agg_active: vec![false; half],
        infeasible: false,
    };
    // Forced host-uplink hops: every candidate path of a host's flow
    // crosses its single uplink, so the aggregate check is equivalent to
    // the monolithic incremental one for feasibility.
    for h in 0..hp {
        let ord = pod * hp + h;
        if prep.host_eg[ord] > prep.host_usable[ord] + EPS
            || prep.host_in[ord] > prep.host_usable[ord] + EPS
        {
            out.infeasible = true;
            return out;
        }
    }
    let ea = |i: usize, j: usize| prep.ea_usable[(pod * half + i) * half + j];
    let mut up = vec![0.0; hp]; // reserved edge i → agg j
    let mut dn = vec![0.0; hp]; // reserved agg j → edge i
    let mut edge_active = vec![false; half];
    let zero;
    let (fl_up, fl_dn) = match floors {
        Some(f) => (&f.up, &f.dn),
        None => {
            zero = vec![0.0; hp];
            (&zero, &zero)
        }
    };

    for f in &prep.intra[pod] {
        let (si, di) = (f.si as usize, f.di as usize);
        if prep.edge_ex[pod * half + si] || prep.edge_ex[pod * half + di] {
            out.infeasible = true;
            return out;
        }
        if si == di {
            // Single 2-hop candidate; host links are aggregate-checked.
            edge_active[si] = true;
            out.choices.push((f.id, 0));
            continue;
        }
        let mut best: Option<(usize, usize)> = None; // (new switches, j)
        for j in 0..half {
            if prep.agg_ex[pod * half + j] {
                continue;
            }
            let fits = up[si * half + j] + f.d + fl_up[si * half + j] <= ea(si, j) + EPS
                && dn[di * half + j] + f.d + fl_dn[di * half + j] <= ea(di, j) + EPS;
            if !fits {
                continue;
            }
            let new =
                !edge_active[si] as usize + !out.agg_active[j] as usize + !edge_active[di] as usize;
            if best.is_none_or(|b| (new, j) < b) {
                best = Some((new, j));
            }
        }
        let Some((_, j)) = best else {
            out.infeasible = true;
            return out;
        };
        up[si * half + j] += f.d;
        dn[di * half + j] += f.d;
        edge_active[si] = true;
        edge_active[di] = true;
        out.agg_active[j] = true;
        out.choices.push((f.id, j as u32));
    }
    for i in 0..half {
        for j in 0..half {
            out.res_up[i * half + j] = ea(i, j) - up[i * half + j];
            out.res_dn[i * half + j] = ea(i, j) - dn[i * half + j];
        }
    }
    out
}

enum StitchOutcome {
    /// `(flow id, candidate index)` per inter flow.
    Done(Vec<(u32, u32)>),
    /// Edge→agg residuals blocked a flow; tighten these pods and retry.
    PushBack {
        src_pod: Option<usize>,
        dst_pod: Option<usize>,
    },
    /// Blocked on the agg↔core tier (or exclusions) — push-back cannot
    /// help; fall back to the monolithic path.
    Stuck,
}

/// Consolidates the inter-pod flows onto core switches against the pod
/// solves' residuals. Serial and deterministic: one globally sorted
/// walk; candidate `(g, m)` order matches the monolithic candidate
/// enumeration (`idx = g·(k/2)+m`), the key is `(new switches, idx)`,
/// and a per-pod-pair cursor short-circuits to the pair's last core —
/// always zero-new-switch once set — so repeat pairs cost O(1).
///
/// `balance` switches the cost tie-break from lowest index to largest
/// bilateral headroom (the minimum residual of the four links a
/// candidate consumes). Packed mode saturates low `(g, m)` first, which
/// near fabric saturation can drain a source pod's and a destination
/// pod's core members in disjoint orders until no shared member is left
/// despite ample aggregate slack; headroom-aware spreading keeps both
/// sides' member residuals wide so a common `(g, m)` survives. It never
/// activates more switches than packed mode needs — the switch-count
/// cost still dominates the key — so it is the wedge-recovery retry,
/// not the default.
fn run_stitch(prep: &Prep, solves: &[Arc<PodSolve>], balance: bool) -> StitchOutcome {
    let half = prep.half;
    let np = prep.n_pods;
    let hp = half * half;
    let mut ea_up = vec![0.0; np * hp];
    let mut ea_dn = vec![0.0; np * hp];
    for (p, s) in solves.iter().enumerate() {
        ea_up[p * hp..(p + 1) * hp].copy_from_slice(&s.res_up);
        ea_dn[p * hp..(p + 1) * hp].copy_from_slice(&s.res_dn);
    }
    let mut ac = prep.ac_usable.clone(); // residual agg(p,g) → core(g,m)
    let mut ca = prep.ac_usable.clone(); // residual core(g,m) → agg(p,g)
    let mut agg_on: Vec<bool> = solves
        .iter()
        .flat_map(|s| s.agg_active.iter().copied())
        .collect();
    let mut core_on = vec![false; hp];
    let mut cursor = vec![u32::MAX; np * np];
    let mut choices = Vec::with_capacity(prep.inter.len());

    for f in &prep.inter {
        let (sp, si, dp, di) = (f.sp as usize, f.si as usize, f.dp as usize, f.di as usize);
        if prep.edge_ex[sp * half + si] || prep.edge_ex[dp * half + di] {
            return StitchOutcome::Stuck;
        }
        let fits = |g: usize, m: usize, ea_up: &[f64], ea_dn: &[f64], ac: &[f64], ca: &[f64]| {
            f.d <= ea_up[(sp * half + si) * half + g] + EPS
                && f.d <= ac[(sp * half + g) * half + m] + EPS
                && f.d <= ca[(dp * half + g) * half + m] + EPS
                && f.d <= ea_dn[(dp * half + di) * half + g] + EPS
        };
        let mut chosen: Option<u32> = None;
        let cur = cursor[sp * np + dp];
        if cur != u32::MAX {
            let (g, m) = (cur as usize / half, cur as usize % half);
            // The cursor's aggs and core are active (this pair activated
            // them), so it is always a zero-new-switch candidate.
            if fits(g, m, &ea_up, &ea_dn, &ac, &ca) {
                chosen = Some(cur);
            }
        }
        if chosen.is_none() {
            let mut best: Option<(usize, u32)> = None; // (new switches, idx)
            let mut best_head = f64::NEG_INFINITY;
            let mut ea_blocked_src = false;
            let mut ea_blocked_dst = false;
            'scan: for g in 0..half {
                if prep.agg_ex[sp * half + g] || prep.agg_ex[dp * half + g] {
                    continue;
                }
                let up_res = ea_up[(sp * half + si) * half + g];
                let dn_res = ea_dn[(dp * half + di) * half + g];
                let up_ok = f.d <= up_res + EPS;
                let dn_ok = f.d <= dn_res + EPS;
                for m in 0..half {
                    if prep.core_ex[g * half + m] {
                        continue;
                    }
                    let ac_res = ac[(sp * half + g) * half + m];
                    let ca_res = ca[(dp * half + g) * half + m];
                    let core_ok = f.d <= ac_res + EPS && f.d <= ca_res + EPS;
                    if !(up_ok && dn_ok) {
                        if core_ok {
                            ea_blocked_src |= !up_ok;
                            ea_blocked_dst |= !dn_ok;
                        }
                        continue;
                    }
                    if !core_ok {
                        continue;
                    }
                    let new = !agg_on[sp * half + g] as usize
                        + !core_on[g * half + m] as usize
                        + !agg_on[dp * half + g] as usize;
                    let idx = (g * half + m) as u32;
                    if balance {
                        // Same switch-count cost, tie broken toward the
                        // candidate whose tightest link has the most
                        // residual left (then low idx, via the ascending
                        // scan replacing only on strict improvement).
                        let head = up_res.min(dn_res).min(ac_res).min(ca_res);
                        let better = match best {
                            None => true,
                            Some((bn, _)) => new < bn || (new == bn && head > best_head),
                        };
                        if better {
                            best = Some((new, idx));
                            best_head = head;
                        }
                    } else {
                        if new == 0 {
                            // Scanning in idx order: the first
                            // zero-new-switch fit is the global minimum
                            // of (new, idx).
                            best = Some((0, idx));
                            break 'scan;
                        }
                        if best.is_none_or(|b| (new, idx) < b) {
                            best = Some((new, idx));
                        }
                    }
                }
            }
            match best {
                Some((_, idx)) => chosen = Some(idx),
                None => {
                    if ea_blocked_src || ea_blocked_dst {
                        return StitchOutcome::PushBack {
                            src_pod: ea_blocked_src.then_some(sp),
                            dst_pod: ea_blocked_dst.then_some(dp),
                        };
                    }
                    return StitchOutcome::Stuck;
                }
            }
        }
        let idx = chosen.expect("placed");
        let (g, m) = (idx as usize / half, idx as usize % half);
        ea_up[(sp * half + si) * half + g] -= f.d;
        ac[(sp * half + g) * half + m] -= f.d;
        ca[(dp * half + g) * half + m] -= f.d;
        ea_dn[(dp * half + di) * half + g] -= f.d;
        agg_on[sp * half + g] = true;
        agg_on[dp * half + g] = true;
        core_on[g * half + m] = true;
        cursor[sp * np + dp] = idx;
        choices.push((f.id, idx));
    }
    StitchOutcome::Done(choices)
}

/// The agg groups of `pod` the stitch can actually route through:
/// unmasked agg in this pod and at least one unmasked core in the group.
/// A pure function of pod-local inputs (own mask slice) plus the core
/// mask, which is shared stitch-layer state every pod sees identically.
fn stitch_usable_groups(prep: &Prep, pod: usize) -> Vec<usize> {
    let half = prep.half;
    (0..half)
        .filter(|&g| !prep.agg_ex[pod * half + g] && (0..half).any(|m| !prep.core_ex[g * half + m]))
        .collect()
}

/// Per-edge totals of this pod's inter egress/ingress (scaled demand).
fn inter_sums(prep: &Prep, pod: usize) -> (Vec<f64>, Vec<f64>) {
    let mut s_up = vec![0.0; prep.half];
    let mut s_dn = vec![0.0; prep.half];
    for f in &prep.inter {
        if f.sp as usize == pod {
            s_up[f.si as usize] += f.d;
        }
        if f.dp as usize == pod {
            s_dn[f.di as usize] += f.d;
        }
    }
    (s_up, s_dn)
}

/// Round-0 floors: each edge's inter egress/ingress reserved *low-group
/// first* across the stitch-usable groups, capped per link. The stitch
/// breaks cost ties toward low `(g, m)` indices, so concentrating the
/// reservation low means intra placement packs around exactly the
/// capacity the stitch will ask for — mirroring how the monolithic
/// greedy's demand-ordered interleaving lets inter elephants claim the
/// low groups first. Zero floors when no group is usable (the stitch
/// will block and the pass falls back with the monolithic verdict).
fn floors_low_first(prep: &Prep, pod: usize) -> PodFloors {
    let half = prep.half;
    let groups = stitch_usable_groups(prep, pod);
    let (s_up, s_dn) = inter_sums(prep, pod);
    let mut up = vec![0.0; half * half];
    let mut dn = vec![0.0; half * half];
    for i in 0..half {
        let (mut need_up, mut need_dn) = (s_up[i], s_dn[i]);
        for &g in &groups {
            let cap = prep.ea_usable[(pod * half + i) * half + g];
            up[i * half + g] = need_up.min(cap);
            dn[i * half + g] = need_dn.min(cap);
            need_up = (need_up - cap).max(0.0);
            need_dn = (need_dn - cap).max(0.0);
        }
    }
    PodFloors { up, dn }
}

/// Push-back floors: the same totals spread *evenly* across the
/// stitch-usable groups — a genuinely different arrangement for when
/// low-first concentration left per-group residuals too lumpy for the
/// stitch's per-flow placements. `None` when no group is usable.
fn floors_even(prep: &Prep, pod: usize) -> Option<PodFloors> {
    let half = prep.half;
    let groups = stitch_usable_groups(prep, pod);
    if groups.is_empty() {
        return None;
    }
    let (s_up, s_dn) = inter_sums(prep, pod);
    let mut up = vec![0.0; half * half];
    let mut dn = vec![0.0; half * half];
    let share = groups.len() as f64;
    for i in 0..half {
        for &g in &groups {
            let cap = prep.ea_usable[(pod * half + i) * half + g];
            up[i * half + g] = (s_up[i] / share).min(cap);
            dn[i * half + g] = (s_dn[i] / share).min(cap);
        }
    }
    Some(PodFloors { up, dn })
}

/// Consolidates `flows` via the two-level pod decomposition, falling
/// back to the monolithic [`GreedyConsolidator`] whenever the
/// decomposition cannot place everything (so feasibility verdicts are
/// always identical to the monolithic path's).
///
/// `ft` supplies the pod structure; `net` is what paths are enumerated
/// and materialized on (typically the shared-segment
/// [`super::arena::PathArena`] over the same tree).
///
/// # Errors
/// Only when the monolithic fallback itself fails — i.e. the instance
/// is infeasible.
pub fn consolidate_pod_decomposed(
    ft: &FatTree,
    net: &dyn MultipathTopology,
    flows: &FlowSet,
    cfg: &ConsolidationConfig,
    opts: &PodDecompOptions<'_>,
) -> Result<PodDecompReport, ConsolidationError> {
    let _t = eprons_obs::Timer::scoped("net.consolidate.pod_s");
    let mut sp = eprons_obs::Span::enter("net.consolidate");
    if eprons_obs::enabled() {
        sp.note(format!(
            "algo=pod_decomposed flows={} pods={}",
            flows.len(),
            ft.num_pods()
        ));
    }
    let mut stats = PodDecompStats {
        pods: ft.num_pods(),
        solved: 0,
        cached: 0,
        resolves: 0,
        rounds: 0,
        balanced: 0,
        fell_back: false,
    };
    let result = try_decomposed(ft, net, flows, cfg, opts, sp.id(), &mut stats);
    let report = match result {
        Ok((assignment, solves)) => Ok(PodDecompReport {
            assignment,
            stats,
            solves,
        }),
        Err(Fallback(reason)) => {
            stats.fell_back = true;
            if eprons_obs::enabled() {
                eprons_obs::registry().counter("net.pods.fallbacks").inc();
                sp.note(format!(
                    "algo=pod_decomposed flows={} pods={} fallback={reason}",
                    flows.len(),
                    ft.num_pods()
                ));
            }
            GreedyConsolidator
                .consolidate(net, flows, cfg)
                .map(|assignment| PodDecompReport {
                    assignment,
                    stats,
                    solves: Vec::new(),
                })
        }
    };
    // Telemetry runs whether or not the monolithic fallback succeeded:
    // the pass happened either way, and the `PodConsolidation` event must
    // reconcile 1:1 with the `net.consolidate` span (`obsctl audit`
    // counts both sides), even when the instance is infeasible.
    if eprons_obs::enabled() {
        let reg = eprons_obs::registry();
        reg.counter("net.pods.solved").add(stats.solved as u64);
        reg.counter("net.pods.cache_hits").add(stats.cached as u64);
        reg.counter("net.pods.resolves").add(stats.resolves as u64);
        reg.counter("net.pods.balanced_stitches")
            .add(stats.balanced as u64);
        reg.counter("net.consolidate.passes").inc();
        eprons_obs::record(eprons_obs::Event::PodConsolidation {
            pods: stats.pods as u64,
            solved: stats.solved as u64,
            cached: stats.cached as u64,
            resolves: stats.resolves as u64,
            rounds: stats.rounds as u64,
            balanced: stats.balanced as u64,
            fallback: stats.fell_back,
        });
        if let Ok(report) = &report {
            if !stats.fell_back {
                eprons_obs::record(eprons_obs::Event::ConsolidationPass {
                    algo: "pod_decomposed".into(),
                    flows: flows.len() as u64,
                    placed: flows.len() as u64,
                    active_switches: report.assignment.active_switch_count(net) as u64,
                });
            }
        }
    }
    report
}

fn try_decomposed(
    ft: &FatTree,
    net: &dyn MultipathTopology,
    flows: &FlowSet,
    cfg: &ConsolidationConfig,
    opts: &PodDecompOptions<'_>,
    parent_span: u64,
    stats: &mut PodDecompStats,
) -> Result<(Assignment, Vec<Arc<PodSolve>>), Fallback> {
    let prep = prepare(ft, flows, cfg)?;
    let n_pods = prep.n_pods;

    // Round 0: embarrassingly parallel pod solves (cache-aware).
    let solve_one = |p: usize| -> PodOutcome {
        let mut psp = eprons_obs::Span::enter_under(parent_span, "pod.consolidate");
        // The usable-group bitmask folds the core mask into the key at
        // exactly the granularity the solve depends on (the round-0
        // floors spread over usable groups, never individual cores).
        let groups_bits = stitch_usable_groups(&prep, p)
            .iter()
            .fold(0u32, |m, &g| m | (1 << g));
        let key = (
            prep.flows_fp,
            cfg.scale_k.to_bits(),
            p,
            groups_bits,
            prep.pod_mask[p].clone(),
        );
        if let Some(cache) = opts.cache {
            if let Some(hit) = cache.get(&key) {
                if eprons_obs::enabled() {
                    psp.note(format!("pod={p} of={n_pods} cached=true"));
                }
                return PodOutcome {
                    solve: hit,
                    cached: true,
                };
            }
        }
        // Round 0 reserves low-first floors for the pod's own inter
        // traffic; if the floors themselves make intra infeasible (they
        // over-reserve), retry unfloored — the stitch may still manage,
        // and if not the push-back/fallback ladder takes over. Both
        // attempts are pure in pod-local inputs, so caching stays sound.
        let floors = floors_low_first(&prep, p);
        let mut solved = solve_pod(&prep, p, Some(&floors));
        if solved.infeasible {
            solved = solve_pod(&prep, p, None);
        }
        let s = Arc::new(solved);
        if let Some(cache) = opts.cache {
            cache.insert(key, Arc::clone(&s));
        }
        if eprons_obs::enabled() {
            psp.note(format!("pod={p} of={n_pods} cached=false"));
        }
        PodOutcome {
            solve: s,
            cached: false,
        }
    };
    let outcomes: Vec<PodOutcome> = match opts.runner {
        Some(run) => run(n_pods, &solve_one),
        None => (0..n_pods).map(solve_one).collect(),
    };
    assert_eq!(outcomes.len(), n_pods, "pod runner must preserve arity");
    let mut solves: Vec<Arc<PodSolve>> = Vec::with_capacity(n_pods);
    for o in outcomes {
        if o.cached {
            stats.cached += 1;
        } else {
            stats.solved += 1;
        }
        solves.push(o.solve);
    }
    if solves.iter().any(|s| s.infeasible) {
        return Err(Fallback("pod sub-problem infeasible"));
    }
    // Stitch, with bounded push-back. Each round tries the packed walk
    // first and, if it wedges, retries balanced against the same pod
    // solves — member fragmentation is stitch-internal, so no pod
    // re-solve can fix it and no pod re-solve is paid for it.
    let inter_choices = loop {
        stats.rounds += 1;
        let mut ssp = eprons_obs::Span::enter_under(parent_span, "pod.stitch");
        if eprons_obs::enabled() {
            ssp.note(format!("round={} inter={}", stats.rounds, prep.inter.len()));
        }
        let outcome = match run_stitch(&prep, &solves, false) {
            StitchOutcome::Done(c) => StitchOutcome::Done(c),
            _ => {
                stats.balanced += 1;
                if eprons_obs::enabled() {
                    ssp.note(format!(
                        "round={} inter={} balanced=true",
                        stats.rounds,
                        prep.inter.len()
                    ));
                }
                run_stitch(&prep, &solves, true)
            }
        };
        match outcome {
            StitchOutcome::Done(c) => break c,
            StitchOutcome::Stuck => return Err(Fallback("core tier exhausted")),
            StitchOutcome::PushBack { src_pod, dst_pod } => {
                if stats.rounds >= opts.max_rounds {
                    return Err(Fallback("push-back rounds exhausted"));
                }
                let mut pods: Vec<usize> = src_pod.into_iter().chain(dst_pod).collect();
                pods.dedup();
                for p in pods {
                    let Some(floors) = floors_even(&prep, p) else {
                        return Err(Fallback("no stitch-usable group"));
                    };
                    let mut rsp = eprons_obs::Span::enter_under(parent_span, "pod.consolidate");
                    if eprons_obs::enabled() {
                        rsp.note(format!("pod={p} of={n_pods} cached=false resolve=true"));
                    }
                    let s = solve_pod(&prep, p, Some(&floors));
                    drop(rsp);
                    if s.infeasible {
                        return Err(Fallback("floored pod sub-problem infeasible"));
                    }
                    solves[p] = Arc::new(s);
                    stats.resolves += 1;
                }
            }
        }
    };

    // Deterministic bit-stable merge: collect every choice, then
    // materialize paths in flow-id order.
    let mut choice = vec![u32::MAX; flows.len()];
    for s in &solves {
        for &(fid, c) in &s.choices {
            choice[fid as usize] = c;
        }
    }
    for &(fid, c) in &inter_choices {
        choice[fid as usize] = c;
    }
    let mut store = PathCollector::new();
    // Fat-tree paths are at most 6 hops (host–edge–agg–core–agg–edge–host).
    store.reserve(flows.len(), 6);
    let mut nbuf = Vec::new();
    let mut lbuf = Vec::new();
    for flow in flows.flows() {
        let c = choice[flow.id.0];
        debug_assert_ne!(c, u32::MAX, "every flow must have a choice");
        assert!(
            net.nth_candidate_into(flow.src, flow.dst, c as usize, &mut nbuf, &mut lbuf),
            "candidate index within enumeration"
        );
        store.push(PathRef {
            nodes: &nbuf,
            links: &lbuf,
        });
    }
    let a = Assignment::from_collector(net, flows, store);
    Ok((a, solves))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowClass, FlowId};

    fn decomp(ft: &FatTree, flows: &FlowSet, cfg: &ConsolidationConfig) -> PodDecompReport {
        consolidate_pod_decomposed(ft, ft, flows, cfg, &PodDecompOptions::default()).unwrap()
    }

    /// A representative mix: elephants, cross-pod queries, intra traffic.
    fn mixed_flows(ft: &FatTree) -> FlowSet {
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(1, 0, 1),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.host(0, 1, 0),
            ft.host(1, 1, 0),
            20.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.host(2, 0, 0),
            ft.host(2, 1, 0),
            300.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(2, 0, 1),
            ft.host(2, 0, 0),
            50.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.host(3, 0, 0),
            ft.host(0, 1, 1),
            120.0,
            FlowClass::LatencySensitive,
        );
        fs
    }

    #[test]
    fn valid_and_close_to_monolithic() {
        let ft = FatTree::new(4, 1000.0);
        let fs = mixed_flows(&ft);
        for k in [1.0, 2.0, 3.0] {
            let cfg = ConsolidationConfig::with_k(k);
            let r = decomp(&ft, &fs, &cfg);
            assert!(!r.stats.fell_back, "K={k} fell back");
            r.assignment.validate(&ft, &fs, &cfg).unwrap();
            let mono = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
            let dw = r.assignment.network_power_w(&ft, &cfg.power);
            let mw = mono.network_power_w(&ft, &cfg.power);
            assert!(
                (dw - mw).abs() <= 0.005 * mw + 1e-9,
                "K={k}: decomposed {dw} W vs monolithic {mw} W"
            );
        }
    }

    #[test]
    fn intra_only_traffic_lights_no_cores() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        for p in 0..4 {
            fs.add(
                ft.host(p, 0, 0),
                ft.host(p, 1, 0),
                100.0,
                FlowClass::LatencySensitive,
            );
        }
        let cfg = ConsolidationConfig::with_k(1.0);
        let r = decomp(&ft, &fs, &cfg);
        assert!(!r.stats.fell_back);
        for &c in ft.core_switches() {
            assert!(
                !r.assignment.state().node_on(c),
                "core lit by intra-only traffic"
            );
        }
        r.assignment.validate(&ft, &fs, &cfg).unwrap();
    }

    #[test]
    fn repeat_pod_pairs_share_one_core() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        for i in 0..2 {
            for h in 0..2 {
                fs.add(
                    ft.host(0, i, h),
                    ft.host(2, i, h),
                    30.0,
                    FlowClass::LatencySensitive,
                );
            }
        }
        let cfg = ConsolidationConfig::with_k(1.0);
        let r = decomp(&ft, &fs, &cfg);
        let lit: Vec<_> = ft
            .core_switches()
            .iter()
            .filter(|&&c| r.assignment.state().node_on(c))
            .collect();
        assert_eq!(
            lit.len(),
            1,
            "pod-pair cursor should consolidate onto one core"
        );
    }

    #[test]
    fn foreign_pod_mask_leaves_other_solves_byte_identical() {
        let ft = FatTree::new(4, 1000.0);
        let fs = mixed_flows(&ft);
        let cfg = ConsolidationConfig::with_k(2.0);
        let base = decomp(&ft, &fs, &cfg);
        // Mask one agg of pod 1; pods 0/2/3 see identical inputs.
        let masked_cfg = ConsolidationConfig::with_k(2.0).with_excluded(vec![ft.agg(1, 0)]);
        let masked = decomp(&ft, &fs, &masked_cfg);
        assert!(!base.stats.fell_back && !masked.stats.fell_back);
        for p in [0usize, 2, 3] {
            assert_eq!(
                base.solves[p].choices(),
                masked.solves[p].choices(),
                "pod {p} solve changed under a foreign-pod mask"
            );
        }
        assert!(
            !masked.solves[1].agg_active[0],
            "masked agg must not be activated"
        );
    }

    #[test]
    fn cache_reuses_solves_across_masks() {
        let ft = FatTree::new(4, 1000.0);
        let fs = mixed_flows(&ft);
        let cfg = ConsolidationConfig::with_k(2.0);
        let cache = PodSolveCache::new();
        let opts = PodDecompOptions {
            cache: Some(&cache),
            ..Default::default()
        };
        let a = consolidate_pod_decomposed(&ft, &ft, &fs, &cfg, &opts).unwrap();
        assert_eq!(a.stats.solved, 4);
        assert_eq!(a.stats.cached, 0);
        // Same config again: all pods cached.
        let b = consolidate_pod_decomposed(&ft, &ft, &fs, &cfg, &opts).unwrap();
        assert_eq!(b.stats.cached, 4);
        assert_eq!(b.stats.solved, 0);
        // Masking pod 1 re-solves only pod 1.
        let masked = ConsolidationConfig::with_k(2.0).with_excluded(vec![ft.agg(1, 1)]);
        let c = consolidate_pod_decomposed(&ft, &ft, &fs, &masked, &opts).unwrap();
        assert_eq!(c.stats.cached, 3);
        assert_eq!(c.stats.solved, 1);
        for p in [0usize, 2, 3] {
            assert!(
                Arc::ptr_eq(&b.solves[p], &c.solves[p]),
                "pod {p} not shared"
            );
        }
    }

    #[test]
    fn cache_distinguishes_core_group_masks() {
        let ft = FatTree::new(4, 1000.0);
        let fs = mixed_flows(&ft);
        let cfg = ConsolidationConfig::with_k(2.0);
        let cache = PodSolveCache::new();
        let opts = PodDecompOptions {
            cache: Some(&cache),
            ..Default::default()
        };
        let a = consolidate_pod_decomposed(&ft, &ft, &fs, &cfg, &opts).unwrap();
        assert_eq!((a.stats.solved, a.stats.cached), (4, 0));
        // One dead core leaves its group stitch-usable: the floors — and
        // with them every cached solve — still apply, so a core failure
        // re-runs only the stitch.
        let one = ConsolidationConfig::with_k(2.0).with_excluded(vec![ft.core(1, 0)]);
        let b = consolidate_pod_decomposed(&ft, &ft, &fs, &one, &opts).unwrap();
        assert_eq!((b.stats.solved, b.stats.cached), (0, 4));
        for p in 0..4 {
            assert!(
                Arc::ptr_eq(&a.solves[p], &b.solves[p]),
                "pod {p} not shared"
            );
        }
        // Losing the whole group reshapes the stitch-usable set and so
        // the round-0 floors of every pod: nothing may be reused.
        let group =
            ConsolidationConfig::with_k(2.0).with_excluded(vec![ft.core(1, 0), ft.core(1, 1)]);
        let c = consolidate_pod_decomposed(&ft, &ft, &fs, &group, &opts).unwrap();
        assert_eq!((c.stats.solved, c.stats.cached), (4, 0));
    }

    #[test]
    fn infeasible_matches_monolithic_verdict() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        // One host's uplink cannot carry 1200 Mbps.
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            600.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 0),
            ft.host(2, 0, 0),
            600.0,
            FlowClass::LatencyTolerant,
        );
        let cfg = ConsolidationConfig::with_k(1.0);
        let dec = consolidate_pod_decomposed(&ft, &ft, &fs, &cfg, &PodDecompOptions::default());
        let mono = GreedyConsolidator.consolidate(&ft, &fs, &cfg);
        assert_eq!(dec.unwrap_err(), mono.unwrap_err());
    }

    #[test]
    fn proactive_floors_survive_core_masked_uplink_contention() {
        // Cores of group 1 are masked, so inter traffic must ride group
        // 0. The round-0 low-first floors reserve the 900 Mbps elephant's
        // share of edge0→agg0 before intra placement, so intra packs onto
        // agg 1 and the stitch succeeds in a single round.
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(0, 1, 0),
            500.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(0, 1, 1),
            400.0,
            FlowClass::LatencyTolerant,
        );
        let cfg =
            ConsolidationConfig::with_k(1.0).with_excluded(vec![ft.core(1, 0), ft.core(1, 1)]);
        let r = decomp(&ft, &fs, &cfg);
        assert!(
            !r.stats.fell_back,
            "floors should have pre-empted the contention"
        );
        assert_eq!(r.stats.rounds, 1);
        assert_eq!(r.stats.resolves, 0);
        r.assignment.validate(&ft, &fs, &cfg).unwrap();
        // The inter elephant rides group 0 (the only stitch-usable one).
        let inter_path = r.assignment.path(FlowId(0));
        assert!(
            inter_path.nodes.contains(&ft.core(0, 0)) || inter_path.nodes.contains(&ft.core(0, 1))
        );
    }

    #[test]
    fn push_back_respreads_when_concentration_is_too_lumpy() {
        // Edge 0 of pod 0 sends two 500 Mbps inter elephants (1000 total,
        // more than one 950 Mbps-usable uplink) plus 900 Mbps of intra.
        // Low-first floors concentrate 950 on group 0, shoving all intra
        // onto agg 1 — after which the second elephant fits neither group
        // (g0 residual 450, g1 residual 50). The push-back's even-spread
        // floors (500/500) split the intra across both aggs instead, and
        // the round-2 stitch places one elephant per group.
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            500.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(1, 1, 0),
            500.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 0),
            ft.host(0, 1, 0),
            450.0,
            FlowClass::LatencyTolerant,
        );
        fs.add(
            ft.host(0, 0, 1),
            ft.host(0, 1, 1),
            450.0,
            FlowClass::LatencyTolerant,
        );
        let cfg = ConsolidationConfig::with_k(1.0);
        let r = decomp(&ft, &fs, &cfg);
        assert!(
            !r.stats.fell_back,
            "even-spread push-back should have recovered"
        );
        assert_eq!(r.stats.rounds, 2);
        assert_eq!(r.stats.resolves, 1);
        r.assignment.validate(&ft, &fs, &cfg).unwrap();
        // The monolithic oracle also places this instance; power parity
        // within one switch.
        let mono = GreedyConsolidator.consolidate(&ft, &fs, &cfg).unwrap();
        let dw = r.assignment.network_power_w(&ft, &cfg.power);
        let mw = mono.network_power_w(&ft, &cfg.power);
        assert!(
            (dw - mw).abs() <= 40.0,
            "decomposed {dw} W vs monolithic {mw} W"
        );
    }

    #[test]
    fn excluded_edge_falls_back_with_monolithic_error() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            100.0,
            FlowClass::LatencySensitive,
        );
        let cfg = ConsolidationConfig::with_k(1.0).with_excluded(vec![ft.edge(0, 0)]);
        let dec = consolidate_pod_decomposed(&ft, &ft, &fs, &cfg, &PodDecompOptions::default());
        let mono = GreedyConsolidator.consolidate(&ft, &fs, &cfg);
        assert_eq!(dec.unwrap_err(), mono.unwrap_err());
    }

    #[test]
    fn deterministic_across_runs_and_runners() {
        let ft = FatTree::new(8, 1000.0);
        let mut fs = FlowSet::new();
        let hosts = ft.hosts();
        for a in 0..24usize {
            let b = (a * 7 + 13) % hosts.len();
            if hosts[a] == hosts[b] {
                continue;
            }
            fs.add(
                hosts[a],
                hosts[b],
                15.0 + a as f64,
                FlowClass::LatencySensitive,
            );
        }
        let cfg = ConsolidationConfig::with_k(1.5);
        let serial = decomp(&ft, &fs, &cfg);
        // A deliberately reordered (but order-preserving in results)
        // runner must not change anything.
        let runner: PodRunner<'_> = &|n, f| {
            let mut out: Vec<Option<PodOutcome>> = (0..n).map(|_| None).collect();
            for p in (0..n).rev() {
                out[p] = Some(f(p));
            }
            out.into_iter().map(|o| o.unwrap()).collect()
        };
        let opts = PodDecompOptions {
            runner: Some(runner),
            ..Default::default()
        };
        let alt = consolidate_pod_decomposed(&ft, &ft, &fs, &cfg, &opts).unwrap();
        for i in 0..fs.len() {
            assert_eq!(
                serial.assignment.path(FlowId(i)).nodes,
                alt.assignment.path(FlowId(i)).nodes,
                "flow {i} diverged across runners"
            );
        }
    }

    #[test]
    fn empty_flow_set_is_trivially_placed() {
        let ft = FatTree::new(4, 1000.0);
        let fs = FlowSet::new();
        let cfg = ConsolidationConfig::with_k(1.0);
        let r = decomp(&ft, &fs, &cfg);
        assert!(!r.stats.fell_back);
        assert_eq!(r.stats.rounds, 1);
        assert_eq!(r.assignment.active_switch_count(&ft), 0);
    }
}
