//! The faithful arc-based MILP of paper eqs. 2–9.
//!
//! Variables, as in the paper:
//!
//! * `X_{u,v}` — link on/off (eq. 7 makes it symmetric; we model one
//!   variable per undirected link);
//! * `Y_u`   — switch on/off;
//! * `Z_i(u,v)` — flow `i` uses arc `u→v` (binary, eq. 9: no splitting, so
//!   `f_i(u,v) = K·d_i·Z_i(u,v)`);
//! * flow conservation (eq. 5), skew symmetry (eq. 4, implicit in the
//!   directed-arc encoding), capacity with the scale factor (eq. 3),
//!   link→switch coupling (eq. 7) and switch shutdown (eq. 8).
//!
//! This is the exact model the paper hands to CPLEX. It is exponential in
//! practice (the paper: 42 min for 3000 flows), so it is exercised on small
//! instances and cross-validated against [`super::path`], which is the
//! tractable equivalent on fat-trees.

use eprons_lp::{solve_milp_with_incumbent, Cmp, MilpOptions, Model, Sense, SolveError, VarId};
use eprons_topo::{LinkId, MultipathTopology, Path};

use super::{Assignment, ConsolidationConfig, ConsolidationError, Consolidator};
use crate::flow::FlowSet;

/// Tiny per-arc cost that suppresses gratuitous cycles (a cycle on already
/// active links would otherwise cost nothing).
const ARC_EPS: f64 = 1e-3;

/// Exact arc-based consolidator (paper eqs. 2–9).
#[derive(Debug, Clone)]
pub struct ArcMilpConsolidator {
    /// Branch-and-bound options.
    pub options: MilpOptions,
}

impl Default for ArcMilpConsolidator {
    fn default() -> Self {
        ArcMilpConsolidator {
            options: MilpOptions {
                max_nodes: 50_000,
                ..Default::default()
            },
        }
    }
}

/// The built arc MILP plus variable handles, mirroring
/// [`super::path::PathModel`] so solves can be chained across candidates.
pub struct ArcModel {
    /// The MILP.
    pub model: Model,
    /// X variable per undirected link (indexed by `LinkId`).
    pub x: Vec<VarId>,
    /// Y variable per node (`None` for hosts), indexed by `NodeId`.
    pub y: Vec<Option<VarId>>,
    /// Z variable per (flow, link, direction), row-major.
    pub z: Vec<VarId>,
    /// Link count (stride for `z` indexing).
    pub nl: usize,
}

impl ArcModel {
    /// The Z selector of flow `fi` on link `l`, direction `dir`.
    pub fn z_at(&self, fi: usize, l: LinkId, dir: usize) -> VarId {
        self.z[(fi * self.nl + l.0) * 2 + dir]
    }

    /// Expands a previous assignment's paths (one per flow, same flow
    /// order, from a structurally-identical instance) into a full variable
    /// vector usable as a MILP incumbent. Returns `None` on a shape
    /// mismatch; the result may still be infeasible for this instance
    /// (higher `K`, masked switch), which the MILP detects and ignores.
    pub fn incumbent_from_paths<'a>(
        &self,
        topo: &eprons_topo::Topology,
        paths: impl ExactSizeIterator<Item = eprons_topo::PathRef<'a>>,
        num_flows: usize,
    ) -> Option<Vec<f64>> {
        if paths.len() != num_flows {
            return None;
        }
        let mut vals = vec![0.0; self.model.num_vars()];
        for (fi, p) in paths.enumerate() {
            for (from, to, l) in p.hops() {
                let link = topo.link(l);
                let dir = if from == link.a { 0 } else { 1 };
                vals[self.z_at(fi, l, dir).index()] = 1.0;
                vals[self.x[l.0].index()] = 1.0;
                for endpoint in [from, to] {
                    if let Some(yv) = self.y[endpoint.0] {
                        vals[yv.index()] = 1.0;
                    }
                }
            }
        }
        Some(vals)
    }
}

/// Builds the arc-based consolidation MILP (paper eqs. 2–9).
pub fn build_arc_model(
    net: &dyn MultipathTopology,
    flows: &FlowSet,
    cfg: &ConsolidationConfig,
) -> ArcModel {
    let topo = net.topology();
    let mut model = Model::new(Sense::Minimize);

    // X per undirected link (eq. 7 collapses the two directions).
    let x: Vec<VarId> = topo
        .links()
        .map(|(id, _)| model.add_var(format!("X[{}]", id.0), 0.0, 1.0, cfg.power.link_w))
        .collect();
    // Y per switch. Masked (failed) switches get an upper bound of 0:
    // eq. 7's Y ≥ X then forces their links off, and eq. 9's X ≥ Z
    // keeps every flow away from them.
    let mut y = vec![None; topo.num_nodes()];
    for (id, n) in topo.nodes() {
        if n.kind.is_switch() {
            let ub = if cfg.is_excluded(id) { 0.0 } else { 1.0 };
            y[id.0] = Some(model.add_var(format!("Y[{}]", n.name), 0.0, ub, cfg.power.switch_w));
        }
    }

    // Z_i per directed arc. Arc (l, dir): dir 0 = a→b, dir 1 = b→a.
    let nf = flows.len();
    let nl = topo.num_links();
    let mut z: Vec<VarId> = Vec::with_capacity(nf * nl * 2);
    for flow in flows.flows() {
        for (lid, _) in topo.links() {
            for dir in 0..2 {
                z.push(model.add_binary(format!("Z[{},{},{}]", flow.id.0, lid.0, dir), ARC_EPS));
            }
        }
    }
    let z_at = |fi: usize, l: LinkId, dir: usize| z[(fi * nl + l.0) * 2 + dir];

    // Flow conservation (eq. 5): Σ_h f_i(u,h) = K·d_i at the source,
    // −K·d_i at the sink, 0 elsewhere. Dividing by K·d_i it becomes a
    // unit-flow constraint on the Z indicators.
    for (fi, flow) in flows.flows().iter().enumerate() {
        for (nid, _) in topo.nodes() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &(nbr, l) in topo.neighbors(nid) {
                let link = topo.link(l);
                // dir 0 is a→b: outgoing from nid iff nid == link.a.
                let (out_dir, in_dir) = if nid == link.a { (0, 1) } else { (1, 0) };
                let _ = nbr;
                terms.push((z_at(fi, l, out_dir), 1.0));
                terms.push((z_at(fi, l, in_dir), -1.0));
            }
            let rhs = if nid == flow.src {
                1.0
            } else if nid == flow.dst {
                -1.0
            } else {
                0.0
            };
            model.add_constraint(
                format!("cons[{},{}]", flow.id.0, nid.0),
                terms,
                Cmp::Eq,
                rhs,
            );
        }
    }

    // Capacity (eq. 3) per direction, and activation X >= Z.
    for (lid, link) in topo.links() {
        let usable = cfg.usable_capacity(link.capacity_mbps);
        for dir in 0..2 {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for (fi, flow) in flows.flows().iter().enumerate() {
                let zv = z_at(fi, lid, dir);
                terms.push((zv, flow.scaled_demand(cfg.scale_k)));
                model.add_constraint(
                    format!("act[{},{},{}]", fi, lid.0, dir),
                    vec![(x[lid.0], 1.0), (zv, -1.0)],
                    Cmp::Ge,
                    0.0,
                );
            }
            model.add_constraint(format!("cap[{},{}]", lid.0, dir), terms, Cmp::Le, usable);
        }
    }

    // Link→switch coupling (eq. 7) and shutdown (eq. 8).
    for (lid, link) in topo.links() {
        for endpoint in [link.a, link.b] {
            if let Some(ys) = y[endpoint.0] {
                model.add_constraint(
                    format!("on[{},{}]", lid.0, endpoint.0),
                    vec![(ys, 1.0), (x[lid.0], -1.0)],
                    Cmp::Ge,
                    0.0,
                );
            }
        }
    }
    for (nid, n) in topo.nodes() {
        if let Some(ys) = y[nid.0] {
            let _ = n;
            let mut terms = vec![(ys, 1.0)];
            for &(_, l) in topo.neighbors(nid) {
                terms.push((x[l.0], -1.0));
            }
            model.add_constraint(format!("shut[{}]", nid.0), terms, Cmp::Le, 0.0);
        }
    }

    let _ = nf;
    ArcModel { model, x, y, z, nl }
}

impl ArcMilpConsolidator {
    /// [`Consolidator::consolidate`] with warm-start chaining: a previous
    /// assignment from a structurally-identical instance (same flows and
    /// topology, different `K` or power weights) seeds the branch-and-
    /// bound's initial incumbent so dominated subtrees prune immediately.
    /// An infeasible or mismatched hint degrades silently to the cold
    /// path; with alternate optima a warm solve may return a different
    /// equal-power assignment than a cold one.
    ///
    /// # Errors
    /// Same failure modes as [`Consolidator::consolidate`].
    pub fn consolidate_warm(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
        prev: Option<&Assignment>,
    ) -> Result<Assignment, ConsolidationError> {
        let topo = net.topology();
        let am = build_arc_model(net, flows, cfg);
        let nf = flows.len();
        let incumbent = prev.and_then(|a| am.incumbent_from_paths(topo, a.iter_paths(), nf));
        let sol = match solve_milp_with_incumbent(&am.model, &self.options, incumbent.as_deref()) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => return Err(ConsolidationError::Infeasible),
            Err(e) => return Err(ConsolidationError::SolverFailed(e.to_string())),
        };

        // Trace each flow's path by walking the chosen arcs from src.
        let mut chosen: Vec<Path> = Vec::with_capacity(nf);
        for (fi, flow) in flows.flows().iter().enumerate() {
            let mut nodes = vec![flow.src];
            let mut links = Vec::new();
            let mut cur = flow.src;
            let mut guard = 0;
            while cur != flow.dst {
                guard += 1;
                if guard > topo.num_nodes() {
                    return Err(ConsolidationError::SolverFailed(
                        "cyclic arc solution".into(),
                    ));
                }
                let mut advanced = false;
                for &(nbr, l) in topo.neighbors(cur) {
                    let link = topo.link(l);
                    let out_dir = if cur == link.a { 0 } else { 1 };
                    if sol.value(am.z_at(fi, l, out_dir)) > 0.5 && !links.contains(&l) {
                        nodes.push(nbr);
                        links.push(l);
                        cur = nbr;
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    return Err(ConsolidationError::SolverFailed(
                        "broken arc solution".into(),
                    ));
                }
            }
            chosen.push(Path { nodes, links });
        }
        Ok(Assignment::from_paths(net, flows, chosen))
    }
}

impl Consolidator for ArcMilpConsolidator {
    fn consolidate(
        &self,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        cfg: &ConsolidationConfig,
    ) -> Result<Assignment, ConsolidationError> {
        self.consolidate_warm(net, flows, cfg, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consolidate::path::PathMilpConsolidator;
    use crate::flow::{FlowClass, FlowSet};
    use crate::power::NetworkPowerModel;
    use eprons_topo::FatTree;

    #[test]
    fn k2_single_flow_routes_minimally() {
        // k=2 fat-tree: 2 hosts, 5 switches, 6 links; the only path is
        // h0-e0-a0-c-a1-e1-h1 — all 5 switches on.
        let ft = FatTree::new(2, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.hosts()[0],
            ft.hosts()[1],
            100.0,
            FlowClass::LatencySensitive,
        );
        let cfg = ConsolidationConfig::with_k(1.0);
        let a = ArcMilpConsolidator::default()
            .consolidate(&ft, &fs, &cfg)
            .unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        assert_eq!(a.active_switch_count(&ft), 5);
        assert_eq!(a.iter_paths().next().unwrap().hop_count(), 6);
    }

    #[test]
    fn k2_infeasible_when_over_capacity() {
        let ft = FatTree::new(2, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.hosts()[0],
            ft.hosts()[1],
            990.0, // > 950 usable
            FlowClass::LatencySensitive,
        );
        let r =
            ArcMilpConsolidator::default().consolidate(&ft, &fs, &ConsolidationConfig::with_k(1.0));
        assert_eq!(r.unwrap_err(), ConsolidationError::Infeasible);
    }

    #[test]
    fn k4_same_pod_flow_matches_path_model() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(0, 1, 0),
            200.0,
            FlowClass::LatencySensitive,
        );
        let cfg = ConsolidationConfig::with_k(1.0);
        let arc = ArcMilpConsolidator::default()
            .consolidate(&ft, &fs, &cfg)
            .unwrap();
        let path = PathMilpConsolidator::default()
            .consolidate(&ft, &fs, &cfg)
            .unwrap();
        let power = NetworkPowerModel::default();
        let pa = arc.network_power_w(&ft, &power);
        let pp = path.network_power_w(&ft, &power);
        assert!(
            (pa - pp).abs() < 1e-6,
            "arc model ({pa} W) and path model ({pp} W) must agree"
        );
        // Same-pod route: 3 switches (2 edges + 1 agg), 4 hops.
        assert_eq!(arc.active_switch_count(&ft), 3);
        arc.validate(&ft, &fs, &cfg).unwrap();
    }

    #[test]
    fn warm_incumbent_chain_matches_cold_power() {
        let ft = FatTree::new(2, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.hosts()[0],
            ft.hosts()[1],
            100.0,
            FlowClass::LatencySensitive,
        );
        let milp = ArcMilpConsolidator::default();
        let power = NetworkPowerModel::default();
        let mut prev: Option<Assignment> = None;
        for k in [1.0, 2.0, 3.0] {
            let cfg = ConsolidationConfig::with_k(k);
            let warm = milp
                .consolidate_warm(&ft, &fs, &cfg, prev.as_ref())
                .unwrap();
            warm.validate(&ft, &fs, &cfg).unwrap();
            let cold = milp.consolidate(&ft, &fs, &cfg).unwrap();
            assert!(
                (warm.network_power_w(&ft, &power) - cold.network_power_w(&ft, &power)).abs()
                    < 1e-6,
                "K={k}: warm and cold optima disagree on power"
            );
            prev = Some(warm);
        }
    }

    #[test]
    fn k2_two_flows_share_the_subtree() {
        // Two small flows in opposite directions share all links.
        let ft = FatTree::new(2, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.hosts()[0],
            ft.hosts()[1],
            100.0,
            FlowClass::LatencySensitive,
        );
        fs.add(
            ft.hosts()[1],
            ft.hosts()[0],
            100.0,
            FlowClass::LatencySensitive,
        );
        let cfg = ConsolidationConfig::with_k(2.0);
        let a = ArcMilpConsolidator::default()
            .consolidate(&ft, &fs, &cfg)
            .unwrap();
        a.validate(&ft, &fs, &cfg).unwrap();
        assert_eq!(a.active_switch_count(&ft), 5);
    }
}
