//! Fault injection and graceful degradation (paper §IV-B's "backup
//! paths" remark, made concrete).
//!
//! The paper defers switch failures to "backup paths"; ElasticTree and
//! CARPO both observe that a consolidated topology is most fragile
//! exactly when the fewest switches are on. This module supplies the
//! machinery a controller needs to exercise that regime:
//!
//! * [`FailureSchedule`] — a deterministic, seedable timeline of switch
//!   fail/recover events. Script events explicitly, or sample them from
//!   exponential MTTF/MTTR distributions with a fixed seed.
//! * [`DegradationPolicy`] — the controller-side ladder: (1) in-epoch
//!   repair via [`Assignment::repair_after_switch_failure`], pricing the
//!   woken backups' boot energy through [`TransitionModel`]; (2) if the
//!   repair fails, the caller reconsolidates with the failed switches
//!   masked out; (3) as a last resort, the all-on configuration.
//! * [`DegradationStage`] — which rung of that ladder an epoch ended on.
//!
//! The schedule is pure data: it never touches the network itself, so
//! epochs that consult it stay independent (and parallelizable).

use eprons_topo::{MultipathTopology, NodeId};

use crate::consolidate::{Assignment, ConsolidationError};
use crate::flow::FlowSet;
use crate::power::NetworkPowerModel;
use crate::transition::{Churn, TransitionModel};
use eprons_sim::SimRng;

/// What happened to a switch at a schedule event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureEventKind {
    /// The switch stops forwarding (crash, line-card death, mis-push).
    Fail,
    /// The switch is repaired and boots back into the candidate pool.
    Recover,
}

impl FailureEventKind {
    /// Journal-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            FailureEventKind::Fail => "fail",
            FailureEventKind::Recover => "recover",
        }
    }
}

/// One timestamped fail/recover event on one switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// Minutes since midnight (fractional minutes allowed).
    pub minute: f64,
    /// Node index of the affected switch.
    pub switch: usize,
    /// Fail or recover.
    pub kind: FailureEventKind,
}

/// A deterministic timeline of switch fail/recover events for one day.
///
/// Events are kept sorted by `(minute, switch)`; the schedule is pure
/// data and therefore safe to consult from parallel epoch evaluations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// The empty schedule: a failure-free day.
    pub fn none() -> Self {
        FailureSchedule { events: Vec::new() }
    }

    /// A schedule from explicit events (sorted internally).
    ///
    /// # Panics
    /// Panics if any event minute is non-finite.
    pub fn scripted(mut events: Vec<FailureEvent>) -> Self {
        assert!(
            events.iter().all(|e| e.minute.is_finite()),
            "event minutes must be finite"
        );
        events.sort_by(|a, b| {
            a.minute
                .partial_cmp(&b.minute)
                .expect("finite minutes")
                .then(a.switch.cmp(&b.switch))
        });
        FailureSchedule { events }
    }

    /// Samples a schedule over `horizon_minutes` for the given switches:
    /// each switch alternates up/down periods drawn from exponential
    /// distributions with the given mean time to failure / to repair.
    /// Per-switch streams are forked from `seed`, so the schedule is a
    /// pure function of its arguments.
    ///
    /// # Panics
    /// Panics if either mean is not strictly positive.
    pub fn sample(
        seed: u64,
        switches: &[usize],
        horizon_minutes: f64,
        mttf_minutes: f64,
        mttr_minutes: f64,
    ) -> Self {
        assert!(
            mttf_minutes > 0.0 && mttr_minutes > 0.0,
            "MTTF/MTTR must be positive"
        );
        let mut rng = SimRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for &s in switches {
            let mut r = rng.fork(s as u64);
            let mut t = r.exponential(1.0 / mttf_minutes);
            while t < horizon_minutes {
                events.push(FailureEvent {
                    minute: t,
                    switch: s,
                    kind: FailureEventKind::Fail,
                });
                t += r.exponential(1.0 / mttr_minutes);
                if t >= horizon_minutes {
                    break;
                }
                events.push(FailureEvent {
                    minute: t,
                    switch: s,
                    kind: FailureEventKind::Recover,
                });
                t += r.exponential(1.0 / mttf_minutes);
            }
        }
        Self::scripted(events)
    }

    /// All events, sorted by `(minute, switch)`.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// True for the failure-free schedule.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Switches down at `minute`: those whose latest event at or before
    /// `minute` is a failure. Sorted by node index.
    pub fn failed_at(&self, minute: f64) -> Vec<usize> {
        let mut state: std::collections::BTreeMap<usize, bool> = std::collections::BTreeMap::new();
        for e in &self.events {
            if e.minute > minute {
                break;
            }
            state.insert(e.switch, e.kind == FailureEventKind::Fail);
        }
        state
            .into_iter()
            .filter_map(|(s, down)| down.then_some(s))
            .collect()
    }

    /// Events in the half-open window `[from, to)`, in order.
    pub fn events_in(&self, from: f64, to: f64) -> Vec<FailureEvent> {
        self.events
            .iter()
            .filter(|e| e.minute >= from && e.minute < to)
            .copied()
            .collect()
    }
}

/// How far down the degradation ladder an epoch had to go. Ordered:
/// later variants are worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationStage {
    /// Rung 1: victims re-routed in place; SLA evaluation stands.
    Repaired,
    /// Rung 2: the optimizer re-ran with failed switches masked out.
    Reconsolidated,
    /// Rung 3: fell back to the all-on configuration (minus failures).
    AllOnFallback,
    /// Rung 4: no surviving configuration; the epoch ran with broken
    /// paths and its SLA flag is forced false.
    Unprotected,
}

impl DegradationStage {
    /// Journal/CSV-friendly label.
    pub fn label(self) -> &'static str {
        match self {
            DegradationStage::Repaired => "repaired",
            DegradationStage::Reconsolidated => "reconsolidated",
            DegradationStage::AllOnFallback => "all-on-fallback",
            DegradationStage::Unprotected => "unprotected",
        }
    }
}

/// Outcome of a successful in-epoch repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Indices of re-routed flows.
    pub rerouted: Vec<usize>,
    /// Switches woken to carry the re-routed traffic (node indices).
    pub woken: Vec<usize>,
    /// Boot energy charged for the woken backups (joules).
    pub boot_energy_j: f64,
    /// Power the crashed switch (and its still-lit ports) keeps drawing
    /// until the epoch-boundary power cycle (watts). A failed switch is
    /// hung, not gracefully powered down.
    pub dead_draw_w: f64,
}

/// The degradation ladder's knobs plus the transition model that prices
/// boot energy for woken backups and recovering switches.
#[derive(Debug, Clone)]
pub struct DegradationPolicy {
    /// Rung 1: attempt an in-epoch repair before anything drastic.
    pub attempt_repair: bool,
    /// Rung 2: if the repair fails, re-run the optimizer with failed
    /// switches masked out of every candidate.
    pub attempt_reconsolidate: bool,
    /// Boot-energy pricing (§IV-B: 72.52 s power-on per HPE switch).
    pub transition: TransitionModel,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            attempt_repair: true,
            attempt_reconsolidate: true,
            transition: TransitionModel::default(),
        }
    }
}

impl DegradationPolicy {
    /// Rung 1: repairs `assignment` around `failed`, returning what the
    /// repair cost. Wraps [`Assignment::repair_after_switch_failure`]
    /// (atomic: on `Err` the assignment is untouched) and prices the
    /// woken backups' boot energy through the transition model. The
    /// crashed switch's own draw until the next epoch boundary is
    /// reported as [`RepairReport::dead_draw_w`] so callers can keep
    /// charging it: a hung switch burns power without forwarding.
    pub fn try_repair(
        &self,
        assignment: &mut Assignment,
        net: &dyn MultipathTopology,
        flows: &FlowSet,
        failed: NodeId,
        power: &NetworkPowerModel,
    ) -> Result<RepairReport, ConsolidationError> {
        let mut sp = eprons_obs::Span::enter("net.repair");
        if eprons_obs::enabled() {
            sp.note(format!("failed={}", failed.0));
        }
        let topo = net.topology();
        let mut dead_draw_w = 0.0;
        if assignment.state().node_on(failed) {
            dead_draw_w += power.switch_w;
            for &(_, l) in topo.neighbors(failed) {
                if assignment.state().link_on(l) {
                    dead_draw_w += power.link_w;
                }
            }
        }
        let before = active_switch_ids(net, assignment);
        let rerouted = assignment.repair_after_switch_failure(net, flows, failed)?;
        let after = active_switch_ids(net, assignment);
        let woken = Churn::between(&before, &after).turned_on;
        let boot_energy_j =
            woken.len() as f64 * self.transition.boot_power_w * self.transition.power_on_s;
        Ok(RepairReport {
            rerouted,
            woken,
            boot_energy_j,
            dead_draw_w,
        })
    }

    /// Boot energy (joules) a repaired switch pays to rejoin the
    /// candidate pool after a recover event.
    pub fn recovery_boot_energy_j(&self) -> f64 {
        self.transition.boot_power_w * self.transition.power_on_s
    }
}

/// Active switch node indices of an assignment, sorted.
fn active_switch_ids(net: &dyn MultipathTopology, a: &Assignment) -> Vec<usize> {
    net.topology()
        .switches()
        .into_iter()
        .filter(|&n| a.state().node_on(n))
        .map(|n| n.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(minute: f64, switch: usize, kind: FailureEventKind) -> FailureEvent {
        FailureEvent {
            minute,
            switch,
            kind,
        }
    }

    #[test]
    fn scripted_events_are_sorted_and_queried_by_time() {
        let s = FailureSchedule::scripted(vec![
            ev(770.0, 3, FailureEventKind::Recover),
            ev(730.0, 3, FailureEventKind::Fail),
            ev(100.0, 7, FailureEventKind::Fail),
        ]);
        let minutes: Vec<f64> = s.events().iter().map(|e| e.minute).collect();
        assert_eq!(minutes, vec![100.0, 730.0, 770.0]);
        assert_eq!(s.failed_at(0.0), Vec::<usize>::new());
        assert_eq!(s.failed_at(200.0), vec![7]);
        assert_eq!(s.failed_at(740.0), vec![3, 7]);
        assert_eq!(s.failed_at(800.0), vec![7]); // 3 recovered at 770
    }

    #[test]
    fn events_in_window_is_half_open() {
        let s = FailureSchedule::scripted(vec![
            ev(60.0, 1, FailureEventKind::Fail),
            ev(120.0, 1, FailureEventKind::Recover),
        ]);
        assert_eq!(s.events_in(0.0, 60.0).len(), 0);
        assert_eq!(s.events_in(60.0, 120.0).len(), 1);
        assert_eq!(s.events_in(120.0, 180.0).len(), 1);
        assert!(s.events_in(0.0, 240.0).len() == 2);
    }

    #[test]
    fn sampled_schedule_is_deterministic_and_alternates() {
        let switches: Vec<usize> = (16..36).collect();
        let a = FailureSchedule::sample(7, &switches, 1440.0, 400.0, 30.0);
        let b = FailureSchedule::sample(7, &switches, 1440.0, 400.0, 30.0);
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        let c = FailureSchedule::sample(8, &switches, 1440.0, 400.0, 30.0);
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty(), "MTTF 400 min over a 1440 min day must fire");
        // Per switch: strict alternation starting with a failure.
        for &s in &switches {
            let kinds: Vec<FailureEventKind> = a
                .events()
                .iter()
                .filter(|e| e.switch == s)
                .map(|e| e.kind)
                .collect();
            for (i, k) in kinds.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    FailureEventKind::Fail
                } else {
                    FailureEventKind::Recover
                };
                assert_eq!(*k, expect, "switch {s} event {i}");
            }
        }
        // At the end of any prefix, failed_at is consistent with the
        // alternation: a switch is down iff its prefix has odd length.
        let down = a.failed_at(720.0);
        for &s in &switches {
            let n = a
                .events()
                .iter()
                .filter(|e| e.switch == s && e.minute <= 720.0)
                .count();
            assert_eq!(down.contains(&s), n % 2 == 1);
        }
    }

    #[test]
    fn recovery_boot_energy_follows_transition_model() {
        let p = DegradationPolicy::default();
        let t = TransitionModel::default();
        assert!((p.recovery_boot_energy_j() - t.boot_power_w * t.power_on_s).abs() < 1e-9);
        assert!(p.recovery_boot_energy_j() > 0.0);
    }
}
