//! Flows: the unit of traffic the consolidator places.

use eprons_topo::NodeId;

/// Handle to a flow within a flow set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// Traffic class. The scale factor `K` applies to latency-sensitive flows
/// (requests/replies of search queries, §II); background elephants are
/// packed at their predicted demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// Search-query request/reply traffic with a deadline.
    LatencySensitive,
    /// Background bulk traffic (backups, index updates, …).
    LatencyTolerant,
}

/// A unidirectional flow between two hosts with a bandwidth demand.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Identifier (index in the flow set).
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Predicted bandwidth demand in Mbps (before any `K` scaling).
    pub demand_mbps: f64,
    /// Traffic class.
    pub class: FlowClass,
}

impl Flow {
    /// The demand the consolidator must reserve: latency-sensitive flows
    /// are inflated by `K` (paper §II), background flows are not.
    pub fn scaled_demand(&self, k: f64) -> f64 {
        match self.class {
            FlowClass::LatencySensitive => self.demand_mbps * k,
            FlowClass::LatencyTolerant => self.demand_mbps,
        }
    }
}

/// An ordered collection of flows with stable ids.
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a flow, returning its id.
    ///
    /// # Panics
    /// Panics if `src == dst` or the demand is not positive and finite.
    pub fn add(&mut self, src: NodeId, dst: NodeId, demand_mbps: f64, class: FlowClass) -> FlowId {
        assert_ne!(src, dst, "flow endpoints must differ");
        assert!(
            demand_mbps > 0.0 && demand_mbps.is_finite(),
            "flow demand must be positive and finite"
        );
        let id = FlowId(self.flows.len());
        self.flows.push(Flow {
            id,
            src,
            dst,
            demand_mbps,
            class,
        });
        id
    }

    /// All flows, id order.
    #[inline]
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// A flow by id.
    #[inline]
    pub fn get(&self, id: FlowId) -> &Flow {
        &self.flows[id.0]
    }

    /// Number of flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` iff no flows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total demand in Mbps (unscaled).
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand_mbps).sum()
    }

    /// Updates a flow's demand in place (used between controller epochs as
    /// new predictions arrive).
    ///
    /// # Panics
    /// Panics if the demand is not positive and finite.
    pub fn set_demand(&mut self, id: FlowId, demand_mbps: f64) {
        assert!(
            demand_mbps > 0.0 && demand_mbps.is_finite(),
            "flow demand must be positive and finite"
        );
        self.flows[id.0].demand_mbps = demand_mbps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_topo::FatTree;

    #[test]
    fn add_and_lookup() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        let id = fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.get(id).demand_mbps, 900.0);
        assert_eq!(fs.total_demand(), 900.0);
    }

    #[test]
    fn scale_factor_only_inflates_sensitive_flows() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        let bg = fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            900.0,
            FlowClass::LatencyTolerant,
        );
        let q = fs.add(
            ft.host(0, 0, 1),
            ft.host(2, 0, 0),
            20.0,
            FlowClass::LatencySensitive,
        );
        assert_eq!(fs.get(bg).scaled_demand(3.0), 900.0);
        assert_eq!(fs.get(q).scaled_demand(3.0), 60.0);
        assert_eq!(fs.get(q).scaled_demand(1.0), 20.0);
    }

    #[test]
    fn set_demand_updates() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        let id = fs.add(
            ft.host(0, 0, 0),
            ft.host(1, 0, 0),
            100.0,
            FlowClass::LatencyTolerant,
        );
        fs.set_demand(id, 250.0);
        assert_eq!(fs.get(id).demand_mbps, 250.0);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_flow_rejected() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        let h = ft.host(0, 0, 0);
        fs.add(h, h, 10.0, FlowClass::LatencySensitive);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_demand_rejected() {
        let ft = FatTree::new(4, 1000.0);
        let mut fs = FlowSet::new();
        fs.add(
            ft.host(0, 0, 0),
            ft.host(0, 0, 1),
            0.0,
            FlowClass::LatencySensitive,
        );
    }
}
