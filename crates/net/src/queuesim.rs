//! A packet-level M/M/1 link-queue simulator — the validation substrate
//! behind the analytic latency model.
//!
//! The paper measures the utilization→latency curve of Fig. 1 on real
//! switches; [`crate::LatencyModel`] reproduces the curve analytically
//! (deterministic base + exponential queueing with mean `coeff·u/(1−u)`).
//! This module closes the loop the way the paper's measurement did: it
//! *simulates* a link as an M/M/1 queue with the discrete-event kernel and
//! verifies that the measured sojourn times reproduce the analytic knee —
//! mean `1/(μ−λ)`, exponential tails, explosion near saturation.

use eprons_sim::{EventQueue, SimRng};

/// Result of simulating one link queue.
#[derive(Debug, Clone)]
pub struct QueueSimResult {
    /// Sojourn (queueing + service) time per packet, seconds, completion
    /// order.
    pub sojourn_s: Vec<f64>,
    /// Offered utilization `λ/μ`.
    pub utilization: f64,
}

impl QueueSimResult {
    /// Mean sojourn time.
    pub fn mean_s(&self) -> f64 {
        if self.sojourn_s.is_empty() {
            0.0
        } else {
            self.sojourn_s.iter().sum::<f64>() / self.sojourn_s.len() as f64
        }
    }

    /// Sojourn percentile. Total on every input the latency accounting
    /// can produce: an empty completion set (e.g. a zero-completion
    /// `--quick` epoch) reports `0.0` like [`Self::mean_s`], and the
    /// level is clamped into `[0, 1]` (a NaN level clamps to `1.0`), so
    /// neither a panic nor a NaN can escape into SLA scoring.
    pub fn percentile_s(&self, p: f64) -> f64 {
        if self.sojourn_s.is_empty() {
            return 0.0;
        }
        let p = if p.is_nan() { 1.0 } else { p.clamp(0.0, 1.0) };
        eprons_num::quantile::percentile(&self.sojourn_s, p)
    }
}

/// Events in the single-queue simulation.
enum Ev {
    Arrival,
    Departure,
}

/// Simulates an M/M/1 queue: Poisson arrivals at `lambda` packets/s,
/// exponential service at `mu` packets/s, for `n_packets` completed
/// packets. FIFO, infinite buffer.
///
/// # Panics
/// Panics unless `0 < lambda < mu`.
pub fn simulate_mm1(lambda: f64, mu: f64, n_packets: usize, seed: u64) -> QueueSimResult {
    assert!(
        lambda > 0.0 && mu > lambda,
        "need 0 < lambda < mu for stability"
    );
    let mut rng = SimRng::seed_from_u64(seed);
    let mut q = EventQueue::new();
    q.schedule(rng.exponential(lambda), Ev::Arrival);

    // FIFO arrival timestamps of waiting + in-service packets.
    let mut backlog: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    let mut in_service = false;
    let mut sojourn = Vec::with_capacity(n_packets);

    while sojourn.len() < n_packets {
        let (now, ev) = q.pop().expect("event stream never drains");
        match ev {
            Ev::Arrival => {
                backlog.push_back(now);
                if !in_service {
                    in_service = true;
                    q.schedule(now + rng.exponential(mu), Ev::Departure);
                }
                q.schedule(now + rng.exponential(lambda), Ev::Arrival);
            }
            Ev::Departure => {
                let arrived = backlog.pop_front().expect("departure without packet");
                sojourn.push(now - arrived);
                if backlog.is_empty() {
                    in_service = false;
                } else {
                    q.schedule(now + rng.exponential(mu), Ev::Departure);
                }
            }
        }
    }
    QueueSimResult {
        sojourn_s: sojourn,
        utilization: lambda / mu,
    }
}

/// Simulates a link of `capacity_mbps` carrying `utilization` worth of
/// packets of `packet_bits` each, returning per-packet latency in
/// **microseconds** — directly comparable to
/// [`crate::LatencyModel::per_hop_mean_us`].
pub fn simulate_link_latency_us(
    capacity_mbps: f64,
    utilization: f64,
    packet_bits: f64,
    n_packets: usize,
    seed: u64,
) -> QueueSimResult {
    assert!((0.0..1.0).contains(&utilization) && utilization > 0.0);
    // Service rate: packets per second the link can drain.
    let mu = capacity_mbps * 1.0e6 / packet_bits;
    let lambda = utilization * mu;
    let mut r = simulate_mm1(lambda, mu, n_packets, seed);
    for s in r.sojourn_s.iter_mut() {
        *s *= 1.0e6; // seconds → µs
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;

    #[test]
    fn mm1_mean_matches_theory() {
        // E[T] = 1/(μ−λ).
        let (lambda, mu) = (60.0, 100.0);
        let r = simulate_mm1(lambda, mu, 200_000, 7);
        let expect = 1.0 / (mu - lambda);
        let got = r.mean_s();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "mean sojourn {got} vs theory {expect}"
        );
    }

    #[test]
    fn mm1_sojourn_is_exponential() {
        // For M/M/1 the sojourn time is Exp(μ−λ): p95 ≈ 3·mean.
        let r = simulate_mm1(30.0, 100.0, 200_000, 8);
        let ratio = r.percentile_s(0.95) / r.mean_s();
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "p95/mean {ratio} should be ≈ln(20)≈3.0"
        );
    }

    #[test]
    fn knee_appears_in_simulation() {
        // Latency must explode superlinearly as u → 1: the Fig. 1 knee.
        let at = |u: f64| simulate_mm1(u * 100.0, 100.0, 100_000, 9).mean_s();
        let low = at(0.2);
        let mid = at(0.7);
        let high = at(0.95);
        assert!(mid > 2.0 * low, "mid {mid} vs low {low}");
        assert!(high > 4.0 * mid, "high {high} vs mid {mid}");
    }

    #[test]
    fn simulated_link_validates_the_analytic_model() {
        // Calibrate a LatencyModel to the simulated link's parameters and
        // check the queueing *growth* agrees within sampling error.
        // Link: 1 Gbps, 1500-byte packets → service time 12 µs.
        let service_us = 12.0;
        let model = LatencyModel {
            base_us: service_us,
            queue_coeff_us: service_us,
            max_utilization: 0.99,
        };
        for u in [0.3, 0.6, 0.8] {
            let sim = simulate_link_latency_us(1000.0, u, 12_000.0, 150_000, 10);
            let analytic = model.per_hop_mean_us(u);
            let measured = sim.mean_s();
            assert!(
                (measured - analytic).abs() / analytic < 0.08,
                "u={u}: simulated {measured} µs vs analytic {analytic} µs"
            );
        }
    }

    #[test]
    fn utilization_recorded() {
        let r = simulate_mm1(25.0, 100.0, 1000, 11);
        assert!((r.utilization - 0.25).abs() < 1e-12);
        assert_eq!(r.sojourn_s.len(), 1000);
        assert!(r.sojourn_s.iter().all(|&s| s > 0.0));
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_queue_rejected() {
        simulate_mm1(100.0, 100.0, 10, 0);
    }

    #[test]
    fn percentile_is_total_on_degenerate_inputs() {
        // Empty completion sets happen under `--quick` durations; the
        // percentile must degrade like `mean_s` instead of panicking.
        let empty = QueueSimResult {
            sojourn_s: Vec::new(),
            utilization: 0.3,
        };
        assert_eq!(empty.percentile_s(0.95), 0.0);
        assert_eq!(empty.percentile_s(0.0), 0.0);
        assert_eq!(empty.mean_s(), 0.0);

        let r = QueueSimResult {
            sojourn_s: vec![3.0, 1.0, 2.0],
            utilization: 0.3,
        };
        // Exact extremes at p = 0 and p = 1.
        assert_eq!(r.percentile_s(0.0), 1.0);
        assert_eq!(r.percentile_s(1.0), 3.0);
        // Out-of-range and NaN levels clamp instead of panicking, and
        // nothing produces a NaN.
        assert_eq!(r.percentile_s(-0.5), 1.0);
        assert_eq!(r.percentile_s(1.5), 3.0);
        assert_eq!(r.percentile_s(f64::NAN), 3.0);
        for p in [0.0, 0.25, 0.5, 0.95, 1.0, -1.0, 2.0] {
            assert!(r.percentile_s(p).is_finite());
        }
    }
}
