//! EPRONS-Network: latency-aware traffic consolidation (paper §II, §IV-B).
//!
//! This crate implements the network half of EPRONS:
//!
//! * [`flow`] — flows with a class (latency-sensitive query traffic vs.
//!   latency-tolerant background "elephants"), sources/destinations on a
//!   fat-tree, and bandwidth demands in Mbps.
//! * [`links`] — the active-subgraph state: which switches/links are on,
//!   per-link carried load and utilization.
//! * [`latency`] — the utilization→latency model with the queueing *knee*
//!   of the paper's Fig. 1 (≈139 µs flat region exploding to ≈12 ms), plus
//!   per-path latency sampling used to measure tail latencies.
//! * [`predict`] — the 90th-percentile bandwidth predictor with safety
//!   margin (§II step i).
//! * [`consolidate`] — three consolidators: the faithful arc-based MILP of
//!   eqs. 2–9, a practical path-based MILP over ECMP candidate paths, and
//!   the greedy bin-packing heuristic the paper deploys; all honor the
//!   scale factor *K* on latency-sensitive flows.
//! * [`power`] — switch/link power accounting (36 W constant-power
//!   switches per \[23\]; the measured HPE curve of Fig. 8).
//! * [`transition`] — switch on/off transition overheads (§IV-B's 72.52 s
//!   measured power-on time) and the backup-path hysteresis mitigation.
//! * [`failure`] — deterministic fault injection (seedable fail/recover
//!   schedules with MTTF/MTTR sampling) and the graceful-degradation
//!   ladder that makes §IV-B's "backup paths" remark concrete.
//! * [`queuesim`] — a packet-level M/M/1 link simulator validating the
//!   analytic latency model against an actual simulated queue (the role
//!   the paper's switch measurements played).

#![warn(missing_docs)]

pub mod consolidate;
pub mod failure;
pub mod flow;
pub mod latency;
pub mod links;
pub mod power;
pub mod predict;
pub mod queuesim;
pub mod transition;

pub use consolidate::{
    arc::ArcMilpConsolidator,
    arena::{ArenaByteBreakdown, PathArena},
    greedy::GreedyConsolidator,
    path::PathMilpConsolidator,
    pod::{
        consolidate_pod_decomposed, flow_set_fingerprint, PodDecompOptions, PodDecompReport,
        PodDecompStats, PodOutcome, PodRunner, PodSolve, PodSolveCache,
    },
    Assignment, ConsolidationConfig, ConsolidationError, Consolidator,
};
pub use failure::{
    DegradationPolicy, DegradationStage, FailureEvent, FailureEventKind, FailureSchedule,
    RepairReport,
};
pub use flow::{Flow, FlowClass, FlowId};
pub use latency::LatencyModel;
pub use links::{NetworkState, StateDelta};
pub use power::NetworkPowerModel;
pub use predict::DemandPredictor;
pub use transition::{Churn, TransitionModel};
