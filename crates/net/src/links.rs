//! Active-subgraph state: switch/link on-off bits and per-direction link
//! load.
//!
//! Links are **full duplex** (the paper's 1 Gbps switch ports, Fig. 8):
//! each undirected link carries independent capacity in each direction, so
//! load and utilization are tracked per `(link, direction)`. Direction 0
//! is `a → b` in the topology's link record, direction 1 is `b → a`.

use eprons_topo::{LinkId, NodeId, PathRef, Topology};

/// Which switches and links are powered on, and how much traffic each link
/// direction carries. Hosts are always "on".
#[derive(Debug, Clone)]
pub struct NetworkState {
    /// `true` per node id if powered (hosts always `true`).
    node_on: Vec<bool>,
    /// `true` per link id if powered.
    link_on: Vec<bool>,
    /// Carried load per link *direction* in Mbps: index `2·link + dir`.
    load_mbps: Vec<f64>,
    /// Capacity per link in Mbps (per direction; copied from topology).
    capacity_mbps: Vec<f64>,
}

/// Direction index of traversing `link` starting from node `from`.
///
/// # Panics
/// Panics if `from` is not an endpoint of the link.
pub fn direction_from(topo: &Topology, link: LinkId, from: NodeId) -> usize {
    let l = topo.link(link);
    if from == l.a {
        0
    } else if from == l.b {
        1
    } else {
        panic!("node {from:?} is not an endpoint of link {link:?}")
    }
}

impl NetworkState {
    /// A state with everything on and no load.
    pub fn all_on(topo: &Topology) -> Self {
        NetworkState {
            node_on: vec![true; topo.num_nodes()],
            link_on: vec![true; topo.num_links()],
            load_mbps: vec![0.0; topo.num_links() * 2],
            capacity_mbps: topo.links().map(|(_, l)| l.capacity_mbps).collect(),
        }
    }

    /// A state with only the listed switches active (plus all hosts); a
    /// link is on iff both endpoints are on.
    pub fn with_active_switches(topo: &Topology, active: &[NodeId]) -> Self {
        let mut node_on = vec![false; topo.num_nodes()];
        for (id, n) in topo.nodes() {
            if !n.kind.is_switch() {
                node_on[id.0] = true;
            }
        }
        for &s in active {
            node_on[s.0] = true;
        }
        let link_on = topo
            .links()
            .map(|(_, l)| node_on[l.a.0] && node_on[l.b.0])
            .collect();
        NetworkState {
            node_on,
            link_on,
            load_mbps: vec![0.0; topo.num_links() * 2],
            capacity_mbps: topo.links().map(|(_, l)| l.capacity_mbps).collect(),
        }
    }

    /// Is this node powered?
    #[inline]
    pub fn node_on(&self, n: NodeId) -> bool {
        self.node_on[n.0]
    }

    /// Is this link powered?
    #[inline]
    pub fn link_on(&self, l: LinkId) -> bool {
        self.link_on[l.0]
    }

    /// Powers a switch on/off (re-derive link state with
    /// [`NetworkState::refresh_links`] after batch changes).
    pub fn set_node(&mut self, n: NodeId, on: bool) {
        self.node_on[n.0] = on;
    }

    /// Powers a single link on/off directly (consolidation powers down
    /// unused links even between active switches).
    pub fn set_link(&mut self, l: LinkId, on: bool) {
        self.link_on[l.0] = on;
    }

    /// Recomputes link on/off from node states (a link is on iff both
    /// endpoints are on).
    pub fn refresh_links(&mut self, topo: &Topology) {
        for (id, l) in topo.links() {
            self.link_on[id.0] = self.node_on[l.a.0] && self.node_on[l.b.0];
        }
    }

    /// Carried load of one direction of a link, Mbps.
    #[inline]
    pub fn load_dir(&self, l: LinkId, dir: usize) -> f64 {
        self.load_mbps[l.0 * 2 + dir]
    }

    /// The heavier direction's load, Mbps.
    pub fn load(&self, l: LinkId) -> f64 {
        self.load_dir(l, 0).max(self.load_dir(l, 1))
    }

    /// Per-direction capacity of a link in Mbps.
    #[inline]
    pub fn capacity(&self, l: LinkId) -> f64 {
        self.capacity_mbps[l.0]
    }

    /// Utilization of one direction in `[0, ∞)` (can exceed 1 transiently
    /// when a prediction was wrong; the latency model clamps).
    #[inline]
    pub fn utilization_dir(&self, l: LinkId, dir: usize) -> f64 {
        self.load_dir(l, dir) / self.capacity_mbps[l.0]
    }

    /// Utilization of the heavier direction.
    pub fn utilization(&self, l: LinkId) -> f64 {
        self.load(l) / self.capacity_mbps[l.0]
    }

    /// Residual capacity of a direction against a usable cap of
    /// `capacity − margin`.
    pub fn residual_dir(&self, l: LinkId, dir: usize, margin_mbps: f64) -> f64 {
        (self.capacity_mbps[l.0] - margin_mbps - self.load_dir(l, dir)).max(0.0)
    }

    /// Adds `mbps` of load along a path (directional). Accepts owned
    /// paths (`&Path`) and borrowed views ([`PathRef`]) alike.
    pub fn add_path_load<'a>(&mut self, topo: &Topology, path: impl Into<PathRef<'a>>, mbps: f64) {
        for (from, _, l) in path.into().hops() {
            let dir = direction_from(topo, l, from);
            self.load_mbps[l.0 * 2 + dir] += mbps;
        }
    }

    /// Removes `mbps` of load along a path (clamped at zero).
    pub fn remove_path_load<'a>(
        &mut self,
        topo: &Topology,
        path: impl Into<PathRef<'a>>,
        mbps: f64,
    ) {
        for (from, _, l) in path.into().hops() {
            let dir = direction_from(topo, l, from);
            let slot = &mut self.load_mbps[l.0 * 2 + dir];
            *slot = (*slot - mbps).max(0.0);
        }
    }

    /// Clears all load.
    pub fn clear_load(&mut self) {
        self.load_mbps.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Utilizations along a path in hop order, each taken in the traversal
    /// direction.
    pub fn path_utilizations<'a>(&self, topo: &Topology, path: impl Into<PathRef<'a>>) -> Vec<f64> {
        let path = path.into();
        let mut out = Vec::with_capacity(path.links.len());
        self.path_utilizations_into(topo, path, &mut out);
        out
    }

    /// [`Self::path_utilizations`] into a caller-owned buffer (cleared
    /// first). The cluster pipeline samples two paths per (query, ISN)
    /// pair and reuses one buffer across the whole sweep instead of
    /// allocating per call.
    pub fn path_utilizations_into<'a>(
        &self,
        topo: &Topology,
        path: impl Into<PathRef<'a>>,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            path.into()
                .hops()
                .map(|(from, _, l)| self.utilization_dir(l, direction_from(topo, l, from))),
        );
    }

    /// Utilizations along a borrowed path view, as an iterator — the
    /// zero-allocation counterpart of [`Self::path_utilizations`] for
    /// arena-backed candidate walks.
    pub fn path_utilizations_ref<'a>(
        &'a self,
        topo: &'a Topology,
        path: PathRef<'a>,
    ) -> impl Iterator<Item = f64> + 'a {
        path.hops()
            .map(move |(from, _, l)| self.utilization_dir(l, direction_from(topo, l, from)))
    }

    /// Whether every node and link of `path` is powered.
    pub fn path_available<'a>(&self, path: impl Into<PathRef<'a>>) -> bool {
        let path = path.into();
        path.nodes.iter().all(|&n| self.node_on[n.0])
            && path.links.iter().all(|&l| self.link_on[l.0])
    }

    /// Count of powered switches.
    pub fn active_switch_count(&self, topo: &Topology) -> usize {
        topo.nodes()
            .filter(|(id, n)| n.kind.is_switch() && self.node_on[id.0])
            .count()
    }

    /// Count of powered links.
    pub fn active_link_count(&self) -> usize {
        self.link_on.iter().filter(|&&b| b).count()
    }

    /// Counts of switches/links that change power state going from `self`
    /// to `next`. Both states must come from the same topology (same node
    /// and link counts); host nodes never toggle so only switches count.
    ///
    /// # Panics
    /// Panics if the two states have different node or link counts.
    pub fn delta(&self, topo: &Topology, next: &NetworkState) -> StateDelta {
        assert_eq!(
            self.node_on.len(),
            next.node_on.len(),
            "node count mismatch"
        );
        assert_eq!(
            self.link_on.len(),
            next.link_on.len(),
            "link count mismatch"
        );
        let mut d = StateDelta::default();
        for (id, n) in topo.nodes() {
            if !n.kind.is_switch() {
                continue;
            }
            match (self.node_on[id.0], next.node_on[id.0]) {
                (false, true) => d.switches_on += 1,
                (true, false) => d.switches_off += 1,
                _ => {}
            }
        }
        for (was, is) in self.link_on.iter().zip(&next.link_on) {
            match (was, is) {
                (false, true) => d.links_on += 1,
                (true, false) => d.links_off += 1,
                _ => {}
            }
        }
        d
    }
}

/// Power-state churn between two [`NetworkState`]s (see
/// [`NetworkState::delta`]): how many switches and links were toggled on
/// or off across an epoch boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateDelta {
    /// Links powered up in the newer state.
    pub links_on: usize,
    /// Links powered down in the newer state.
    pub links_off: usize,
    /// Switches powered up in the newer state.
    pub switches_on: usize,
    /// Switches powered down in the newer state.
    pub switches_off: usize,
}

impl StateDelta {
    /// `true` when nothing toggled.
    pub fn is_empty(&self) -> bool {
        self.links_on == 0 && self.links_off == 0 && self.switches_on == 0 && self.switches_off == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_topo::{paths::candidate_paths, AggregationLevel, FatTree};

    #[test]
    fn all_on_initial_state() {
        let ft = FatTree::new(4, 1000.0);
        let st = NetworkState::all_on(ft.topology());
        assert_eq!(st.active_switch_count(ft.topology()), 20);
        assert_eq!(st.active_link_count(), 48);
        for (id, _) in ft.topology().links() {
            assert_eq!(st.load(id), 0.0);
            assert_eq!(st.utilization(id), 0.0);
        }
    }

    #[test]
    fn with_active_switches_matches_aggregation() {
        let ft = FatTree::new(4, 1000.0);
        let active = AggregationLevel::Agg3.active_switches(&ft);
        let st = NetworkState::with_active_switches(ft.topology(), &active);
        assert_eq!(st.active_switch_count(ft.topology()), 13);
        assert_eq!(
            st.active_link_count(),
            AggregationLevel::Agg3.active_links(&ft).len()
        );
        for &h in ft.hosts() {
            assert!(st.node_on(h));
        }
    }

    #[test]
    fn load_accounting_is_directional() {
        let ft = FatTree::new(4, 1000.0);
        let topo = ft.topology();
        let mut st = NetworkState::all_on(topo);
        let p = &candidate_paths(&ft, ft.host(0, 0, 0), ft.host(1, 0, 0))[0];
        st.add_path_load(topo, p, 300.0);
        // Forward direction loaded, reverse untouched.
        for (from, _, l) in p.hops() {
            let dir = direction_from(topo, l, from);
            assert_eq!(st.load_dir(l, dir), 300.0);
            assert_eq!(st.load_dir(l, 1 - dir), 0.0);
        }
        st.remove_path_load(topo, p, 300.0);
        for &l in &p.links {
            assert_eq!(st.load(l), 0.0);
        }
    }

    #[test]
    fn full_duplex_directions_are_independent() {
        // Opposite flows on the same links don't contend (full duplex).
        let ft = FatTree::new(4, 1000.0);
        let topo = ft.topology();
        let mut st = NetworkState::all_on(topo);
        let a = ft.host(0, 0, 0);
        let b = ft.host(0, 0, 1);
        let fwd = &candidate_paths(&ft, a, b)[0];
        let rev = &candidate_paths(&ft, b, a)[0];
        st.add_path_load(topo, fwd, 800.0);
        st.add_path_load(topo, rev, 800.0);
        for &l in &fwd.links {
            // Each direction at 0.8, never 1.6 summed.
            assert!((st.utilization(l) - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn remove_clamps_at_zero() {
        let ft = FatTree::new(4, 1000.0);
        let topo = ft.topology();
        let mut st = NetworkState::all_on(topo);
        let p = &candidate_paths(&ft, ft.host(0, 0, 0), ft.host(0, 0, 1))[0];
        st.add_path_load(topo, p, 10.0);
        st.remove_path_load(topo, p, 100.0);
        assert_eq!(st.load(p.links[0]), 0.0);
    }

    #[test]
    fn path_availability_tracks_switch_state() {
        let ft = FatTree::new(4, 1000.0);
        let mut st = NetworkState::all_on(ft.topology());
        let paths = candidate_paths(&ft, ft.host(0, 0, 0), ft.host(1, 0, 0));
        assert!(st.path_available(&paths[0]));
        let core = paths[0].nodes[3];
        st.set_node(core, false);
        st.refresh_links(ft.topology());
        assert!(!st.path_available(&paths[0]));
        assert!(paths.iter().any(|p| st.path_available(p)));
    }

    #[test]
    fn utilizations_along_path_follow_direction() {
        let ft = FatTree::new(4, 1000.0);
        let topo = ft.topology();
        let mut st = NetworkState::all_on(topo);
        let p = &candidate_paths(&ft, ft.host(2, 0, 0), ft.host(2, 1, 0))[0];
        st.add_path_load(topo, p, 500.0);
        let utils = st.path_utilizations(topo, p);
        assert_eq!(utils.len(), p.hop_count());
        assert!(utils.iter().all(|&u| (u - 0.5).abs() < 1e-12));
        // The reverse path sees empty links.
        let rev = &candidate_paths(&ft, ft.host(2, 1, 0), ft.host(2, 0, 0))[0];
        // Reverse of the same agg choice may differ; check its own
        // direction is unloaded wherever it shares links with `p`.
        for (from, _, l) in rev.hops() {
            if p.links.contains(&l) {
                let dir = direction_from(topo, l, from);
                assert_eq!(st.load_dir(l, dir), 0.0);
            }
        }
    }

    #[test]
    fn delta_counts_toggled_switches_and_links() {
        let ft = FatTree::new(4, 1000.0);
        let topo = ft.topology();
        let all = NetworkState::all_on(topo);
        // No change → empty delta.
        assert!(all.delta(topo, &all).is_empty());
        // all-on → Agg3 subtree: 20−13 = 7 switches power down, nothing up.
        let active = AggregationLevel::Agg3.active_switches(&ft);
        let agg = NetworkState::with_active_switches(topo, &active);
        let down = all.delta(topo, &agg);
        assert_eq!(down.switches_off, 7);
        assert_eq!(down.switches_on, 0);
        assert_eq!(down.links_off, 48 - agg.active_link_count());
        assert_eq!(down.links_on, 0);
        // And the reverse direction mirrors it.
        let up = agg.delta(topo, &all);
        assert_eq!(up.switches_on, 7);
        assert_eq!(up.switches_off, 0);
        assert_eq!(up.links_on, down.links_off);
        assert_eq!(up.links_off, 0);
    }

    #[test]
    fn residual_accounts_margin_per_direction() {
        let ft = FatTree::new(4, 1000.0);
        let topo = ft.topology();
        let mut st = NetworkState::all_on(topo);
        let p = &candidate_paths(&ft, ft.host(0, 0, 0), ft.host(0, 0, 1))[0];
        st.add_path_load(topo, p, 300.0);
        let (from, _, l) = p.hops().next().unwrap();
        let dir = direction_from(topo, l, from);
        assert_eq!(st.residual_dir(l, dir, 50.0), 650.0);
        assert_eq!(st.residual_dir(l, 1 - dir, 50.0), 950.0);
    }
}
