//! The utilization→latency model with the queueing knee (paper Fig. 1).
//!
//! The paper measures average search-query latency against link utilization
//! and finds an M/M/1-shaped curve: flat (≈139 µs) at low utilization, then
//! exploding past a knee (to ≈11.981 ms). We model mean per-hop latency as
//!
//! ```text
//! mean(u) = base + coeff · u / (1 − u)        (u clamped below u_max)
//! ```
//!
//! and draw per-hop latencies as the deterministic `base` (transmission +
//! propagation, which does not fluctuate) plus an exponential *queueing*
//! term with mean `coeff · u/(1−u)` — the M/M/1 waiting-time shape. Path
//! latency is a sum of independent per-hop draws, so *tail* latencies
//! emerge naturally and explode past the knee (the partition–aggregate
//! maximum over 15 ISN replies amplifies them further, exactly the effect
//! the paper's Figs. 10–11 show).

use eprons_sim::SimRng;

/// Calibrated utilization→latency model.
///
/// ```
/// use eprons_net::LatencyModel;
/// let m = LatencyModel::default(); // Fig. 1 calibration
/// assert!((m.per_hop_mean_us(0.0) - 139.0).abs() < 1e-9);
/// assert!(m.per_hop_mean_us(0.98) > 11_000.0); // past the knee
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Per-hop latency at zero utilization, in microseconds.
    pub base_us: f64,
    /// Queueing coefficient in microseconds (multiplies `u/(1-u)`).
    pub queue_coeff_us: f64,
    /// Utilization clamp; queueing delay is evaluated at
    /// `min(u, max_utilization)`.
    pub max_utilization: f64,
}

impl Default for LatencyModel {
    /// Calibration matching Fig. 1: ≈139 µs in the flat region and
    /// ≈11.98 ms at 98 % utilization (139 + 241.5 · 0.98/0.02 ≈ 11 973 µs).
    fn default() -> Self {
        LatencyModel {
            base_us: 139.0,
            queue_coeff_us: 241.5,
            max_utilization: 0.98,
        }
    }
}

impl LatencyModel {
    /// Mean per-hop latency in microseconds at utilization `u`.
    pub fn per_hop_mean_us(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, self.max_utilization);
        self.base_us + self.queue_coeff_us * u / (1.0 - u)
    }

    /// Mean one-way path latency in microseconds, summing per-hop means.
    pub fn mean_path_latency_us(&self, utilizations: &[f64]) -> f64 {
        utilizations.iter().map(|&u| self.per_hop_mean_us(u)).sum()
    }

    /// Samples a one-way path latency in microseconds: per hop, the
    /// deterministic base plus an exponential queueing delay whose mean is
    /// the utilization-dependent `coeff · u/(1−u)`.
    pub fn sample_path_latency_us(&self, rng: &mut SimRng, utilizations: &[f64]) -> f64 {
        utilizations
            .iter()
            .map(|&u| {
                let queue_mean = self.per_hop_mean_us(u) - self.base_us;
                if queue_mean <= 0.0 {
                    self.base_us
                } else {
                    self.base_us + rng.exponential(1.0 / queue_mean)
                }
            })
            .sum()
    }

    /// The knee utilization: where queueing delay equals `factor` × base
    /// (the point past which consolidation stops paying off, §II).
    pub fn knee_utilization(&self, factor: f64) -> f64 {
        // coeff * u/(1-u) = factor * base  →  u = fb / (fb + coeff)
        let fb = factor * self.base_us;
        (fb / (fb + self.queue_coeff_us)).min(self.max_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_region_matches_fig1() {
        let m = LatencyModel::default();
        assert!((m.per_hop_mean_us(0.0) - 139.0).abs() < 1e-9);
        // At 20% the paper calls latency "well behaved".
        assert!(m.per_hop_mean_us(0.2) < 200.0);
    }

    #[test]
    fn knee_explodes_like_fig1() {
        let m = LatencyModel::default();
        let high = m.per_hop_mean_us(0.98);
        assert!(
            (high - 11_972.5).abs() < 60.0,
            "98% utilization should be ≈11.97 ms, got {high} µs"
        );
        // Past the clamp it stays put.
        assert_eq!(m.per_hop_mean_us(1.5), high);
    }

    #[test]
    fn monotone_in_utilization() {
        let m = LatencyModel::default();
        let mut prev = 0.0;
        for k in 0..=98 {
            let u = k as f64 / 100.0;
            let lat = m.per_hop_mean_us(u);
            assert!(lat >= prev);
            prev = lat;
        }
    }

    #[test]
    fn path_mean_is_sum_of_hops() {
        let m = LatencyModel::default();
        let utils = [0.1, 0.5, 0.9];
        let expect: f64 = utils.iter().map(|&u| m.per_hop_mean_us(u)).sum();
        assert!((m.mean_path_latency_us(&utils) - expect).abs() < 1e-9);
    }

    #[test]
    fn sampled_latency_matches_mean() {
        let m = LatencyModel::default();
        let mut rng = SimRng::seed_from_u64(7);
        let utils = [0.2, 0.2, 0.2, 0.2];
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_path_latency_us(&mut rng, &utils))
            .sum::<f64>()
            / n as f64;
        let expect = m.mean_path_latency_us(&utils);
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "sampled mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn sampled_latency_has_heavier_tail_at_high_util() {
        let m = LatencyModel::default();
        let mut rng = SimRng::seed_from_u64(8);
        let n = 20_000;
        let p99 = |rng: &mut SimRng, u: f64| {
            let mut v: Vec<f64> = (0..n)
                .map(|_| m.sample_path_latency_us(rng, &[u; 6]))
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(0.99 * n as f64) as usize]
        };
        let low = p99(&mut rng, 0.1);
        let high = p99(&mut rng, 0.9);
        assert!(
            high > 5.0 * low,
            "tail must explode past knee: {low} vs {high}"
        );
    }

    #[test]
    fn knee_utilization_is_sane() {
        let m = LatencyModel::default();
        let knee = m.knee_utilization(10.0);
        assert!(knee > 0.5 && knee < 0.98, "knee at {knee}");
        // By definition, queueing delay at the knee ≈ 10× base.
        let q = m.per_hop_mean_us(knee) - m.base_us;
        assert!((q - 10.0 * m.base_us).abs() / (10.0 * m.base_us) < 0.01);
    }
}
