//! Switch on/off transition overheads (paper §IV-B).
//!
//! "In the current design, we ignore the switch ON/OFF transition
//! overheads because we use a software switch. However, our measurement on
//! a HPE switch show that the power-on time is about 72.52 sec. We can
//! avoid the transition overheads by having 'backup' paths, as described
//! in \[5\] or a novel hardware design with sleep states \[2\]."
//!
//! This module provides the accounting the paper defers: energy spent
//! during power-on ramps (a booting switch burns power but carries no
//! traffic) and the reconfiguration churn between consecutive controller
//! epochs — plus a hysteresis filter that emulates the "backup path"
//! mitigation by suppressing switch flaps whose payoff is too small.

use std::collections::BTreeSet;

/// Transition cost model for one switch.
#[derive(Debug, Clone)]
pub struct TransitionModel {
    /// Seconds a switch takes to become forwarding after power-on
    /// (measured 72.52 s on the HPE E3800).
    pub power_on_s: f64,
    /// Seconds to quiesce and power down.
    pub power_off_s: f64,
    /// Watts drawn while booting (full switch power: the ASIC is up but
    /// not forwarding).
    pub boot_power_w: f64,
}

impl Default for TransitionModel {
    fn default() -> Self {
        TransitionModel {
            power_on_s: 72.52,
            power_off_s: 5.0,
            boot_power_w: 36.0,
        }
    }
}

/// Churn between two consecutive active sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Churn {
    /// Switch indices powered on this epoch.
    pub turned_on: Vec<usize>,
    /// Switch indices powered off this epoch.
    pub turned_off: Vec<usize>,
}

impl Churn {
    /// Computes the churn from the previous to the current active set.
    pub fn between(prev: &[usize], cur: &[usize]) -> Churn {
        let p: BTreeSet<usize> = prev.iter().copied().collect();
        let c: BTreeSet<usize> = cur.iter().copied().collect();
        Churn {
            turned_on: c.difference(&p).copied().collect(),
            turned_off: p.difference(&c).copied().collect(),
        }
    }

    /// Total switches touched.
    pub fn magnitude(&self) -> usize {
        self.turned_on.len() + self.turned_off.len()
    }

    /// `true` iff nothing changed.
    pub fn is_empty(&self) -> bool {
        self.magnitude() == 0
    }
}

impl TransitionModel {
    /// Extra energy (joules) one reconfiguration costs: every switch
    /// turning on burns boot power for the power-on time without serving,
    /// and a switch turning off keeps burning through its quiesce window.
    pub fn transition_energy_j(&self, churn: &Churn) -> f64 {
        churn.turned_on.len() as f64 * self.boot_power_w * self.power_on_s
            + churn.turned_off.len() as f64 * self.boot_power_w * self.power_off_s
    }

    /// Average extra watts a reconfiguration adds when amortized over an
    /// epoch of the given length.
    pub fn amortized_power_w(&self, churn: &Churn, epoch_s: f64) -> f64 {
        if epoch_s <= 0.0 {
            return 0.0;
        }
        self.transition_energy_j(churn) / epoch_s
    }
}

/// The "backup paths" mitigation as a planning filter: keep the previous
/// active set unless the new plan's power saving over the epoch exceeds
/// the transition energy by `margin` (> 1 demands a clear win). Returns
/// `true` if the switch-over should proceed.
pub fn worth_switching(
    model: &TransitionModel,
    churn: &Churn,
    power_saving_w: f64,
    epoch_s: f64,
    margin: f64,
) -> bool {
    if churn.is_empty() {
        return true; // no transition, nothing to pay
    }
    let gain_j = power_saving_w * epoch_s;
    gain_j > margin * model.transition_energy_j(churn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_between_sets() {
        let c = Churn::between(&[1, 2, 3], &[2, 3, 4, 5]);
        assert_eq!(c.turned_on, vec![4, 5]);
        assert_eq!(c.turned_off, vec![1]);
        assert_eq!(c.magnitude(), 3);
        assert!(!c.is_empty());
        assert!(Churn::between(&[1, 2], &[2, 1]).is_empty());
    }

    #[test]
    fn hpe_boot_energy() {
        let m = TransitionModel::default();
        let c = Churn::between(&[], &[0]);
        // One switch booting: 36 W × 72.52 s ≈ 2611 J.
        assert!((m.transition_energy_j(&c) - 36.0 * 72.52).abs() < 1e-9);
    }

    #[test]
    fn amortization_over_epoch() {
        let m = TransitionModel::default();
        let c = Churn::between(&[], &[0]);
        // Amortized over the paper's 10-minute epoch: ≈4.35 W.
        let w = m.amortized_power_w(&c, 600.0);
        assert!((w - 36.0 * 72.52 / 600.0).abs() < 1e-9);
        assert!(
            w < 5.0,
            "booting one switch per epoch is cheap when amortized"
        );
        assert_eq!(m.amortized_power_w(&c, 0.0), 0.0);
    }

    #[test]
    fn worth_switching_thresholds() {
        let m = TransitionModel::default();
        let c = Churn::between(&[1], &[2]); // one on, one off
        let epoch = 600.0;
        // Saving 36 W (one switch's worth) for 10 min = 21.6 kJ; transition
        // costs ≈ 2.8 kJ → clearly worth it.
        assert!(worth_switching(&m, &c, 36.0, epoch, 1.0));
        // Saving 2 W = 1.2 kJ < 2.8 kJ → not worth it.
        assert!(!worth_switching(&m, &c, 2.0, epoch, 1.0));
        // No churn is always fine.
        assert!(worth_switching(
            &m,
            &Churn::between(&[1], &[1]),
            0.0,
            epoch,
            1.0
        ));
    }

    #[test]
    fn margin_raises_the_bar() {
        let m = TransitionModel::default();
        let c = Churn::between(&[], &[7]);
        let epoch = 600.0;
        // 5 W saving: 3 kJ gain vs 2.61 kJ cost — passes margin 1, fails 2.
        assert!(worth_switching(&m, &c, 5.0, epoch, 1.0));
        assert!(!worth_switching(&m, &c, 5.0, epoch, 2.0));
    }
}
