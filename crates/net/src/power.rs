//! Network power accounting.
//!
//! Two models appear in the paper:
//!
//! * the **measured HPE E3800** curve of Fig. 8 — 97.5 W idle, +0.59 W from
//!   0 → 100 % link utilization (≈0.6 % of idle), *independent of the number
//!   of active ports* — which justifies treating switch power as constant
//!   when on;
//! * the **36 W constant-power switch** from reference \[23\], used for the
//!   scaled total-system-power results (Figs. 13 and 15).
//!
//! [`NetworkPowerModel`] is the accounting model (constant power per active
//! switch plus per active link); [`hpe_e3800_power_w`] reproduces the
//! measured curve for Fig. 8.

use eprons_topo::Topology;

use crate::links::NetworkState;

/// Constant-power-when-on network power model.
#[derive(Debug, Clone)]
pub struct NetworkPowerModel {
    /// Watts per active switch (36 W in the paper's scaled results).
    pub switch_w: f64,
    /// Watts per active link — the `l(u,v)` term of objective eq. 2. The
    /// paper folds port power into the switch for its scaled results, so
    /// the default is a small per-link cost that only breaks ties.
    pub link_w: f64,
}

impl Default for NetworkPowerModel {
    fn default() -> Self {
        NetworkPowerModel {
            switch_w: 36.0,
            link_w: 1.0,
        }
    }
}

impl NetworkPowerModel {
    /// Total DCN power for a given active set.
    pub fn power_w(&self, topo: &Topology, state: &NetworkState) -> f64 {
        self.power_w_for_counts(state.active_switch_count(topo), state.active_link_count())
    }

    /// Total DCN power given counts directly.
    pub fn power_w_for_counts(&self, switches: usize, links: usize) -> f64 {
        switches as f64 * self.switch_w + links as f64 * self.link_w
    }

    /// The power of the fully-on network (every switch and link active) —
    /// the "no power management" DCN baseline.
    pub fn full_power_w(&self, topo: &Topology) -> f64 {
        self.power_w_for_counts(topo.switches().len(), topo.num_links())
    }
}

/// The measured HPE E3800 J9574A switch power in watts at a given aggregate
/// link utilization (Fig. 8): 97.5 W idle, rising by only 0.59 W at full
/// load. `ports` (2 or 4 in the paper's measurement) barely matters; a
/// per-port epsilon is included so the duplex/simplex curves of Fig. 8 are
/// distinguishable.
pub fn hpe_e3800_power_w(utilization: f64, active_ports: usize) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    97.5 + 0.59 * u + 0.01 * active_ports as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_topo::{AggregationLevel, FatTree};

    #[test]
    fn full_fat_tree_power() {
        let ft = FatTree::new(4, 1000.0);
        let m = NetworkPowerModel::default();
        // 20 switches * 36 + 48 links * 1 = 768 W
        assert_eq!(m.full_power_w(ft.topology()), 768.0);
    }

    #[test]
    fn aggregation_levels_save_power_monotonically() {
        let ft = FatTree::new(4, 1000.0);
        let m = NetworkPowerModel::default();
        let mut prev = f64::INFINITY;
        for level in AggregationLevel::ALL {
            let st = NetworkState::with_active_switches(ft.topology(), &level.active_switches(&ft));
            let p = m.power_w(ft.topology(), &st);
            assert!(p < prev, "{level:?} must reduce power");
            prev = p;
        }
    }

    #[test]
    fn agg3_power_matches_hand_count() {
        let ft = FatTree::new(4, 1000.0);
        let m = NetworkPowerModel::default();
        let st = NetworkState::with_active_switches(
            ft.topology(),
            &AggregationLevel::Agg3.active_switches(&ft),
        );
        // 13 switches; links: 16 host-edge + 8 edge-agg(1 per edge... each
        // edge connects to the single active agg in its pod: 8) + 4 agg-core
        // (agg0 of each pod to core(0,0)) = 28.
        assert_eq!(st.active_link_count(), 28);
        assert_eq!(m.power_w(ft.topology(), &st), 13.0 * 36.0 + 28.0);
    }

    #[test]
    fn hpe_curve_is_nearly_flat() {
        let idle = hpe_e3800_power_w(0.0, 2);
        let full = hpe_e3800_power_w(1.0, 2);
        assert!((idle - 97.52).abs() < 1e-9);
        assert!((full - idle - 0.59).abs() < 1e-9);
        // The increase is ~0.6% of idle power — the paper's justification
        // for the constant-power model.
        assert!((full - idle) / idle < 0.01);
    }

    #[test]
    fn counts_based_power() {
        let m = NetworkPowerModel {
            switch_w: 36.0,
            link_w: 0.0,
        };
        assert_eq!(m.power_w_for_counts(14, 100), 14.0 * 36.0);
    }
}
