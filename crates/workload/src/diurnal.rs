//! 24-hour diurnal traffic profiles (paper Fig. 14).
//!
//! The Wikipedia trace the paper replays "spans one 24 hour period,
//! indicating that it follows a diurnal pattern": search load swings
//! between roughly 20 % and 100 % of peak, and background traffic between
//! roughly 10 % and 50 % of link bandwidth. We model each as a raised
//! cosine over the day plus bounded deterministic noise, sampled per
//! minute (Fig. 15 reports power at 1-minute granularity).

use eprons_sim::SimRng;

/// Minutes in a day.
pub const MINUTES_PER_DAY: usize = 1440;

/// A diurnal profile: `value(t) = mid + amp·cos(2π (t − peak)/1440)`,
/// clamped to `[floor, ceil]`, with optional noise. The cosine term is
/// **added**, so the profile peaks at `peak_minute` and bottoms out half a
/// day away (`peak_minute ± 720`); see `peak_and_trough_are_where_the_
/// formula_says` for the pinned placement.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Mid-point of the swing.
    pub mid: f64,
    /// Amplitude of the swing.
    pub amplitude: f64,
    /// Minute of day at which the profile peaks.
    pub peak_minute: f64,
    /// Lower clamp.
    pub floor: f64,
    /// Upper clamp.
    pub ceil: f64,
    /// Uniform noise half-width applied when sampling a trace.
    pub noise: f64,
}

impl DiurnalProfile {
    /// The paper's search-load shape (Fig. 14a): 20 %–100 % of peak,
    /// peaking mid-afternoon.
    pub fn search_load() -> Self {
        DiurnalProfile {
            mid: 0.6,
            amplitude: 0.4,
            peak_minute: 820.0,
            floor: 0.05,
            ceil: 1.0,
            noise: 0.04,
        }
    }

    /// The paper's background-traffic shape (Fig. 14b): ≈10 %–50 % of link
    /// bandwidth, peaking in the evening (phase-shifted from search).
    pub fn background_traffic() -> Self {
        DiurnalProfile {
            mid: 0.30,
            amplitude: 0.20,
            peak_minute: 1000.0,
            floor: 0.01,
            ceil: 0.6,
            noise: 0.03,
        }
    }

    /// The noiseless profile value at a minute of day.
    pub fn value_at(&self, minute: f64) -> f64 {
        let phase =
            2.0 * std::f64::consts::PI * (minute - self.peak_minute) / MINUTES_PER_DAY as f64;
        (self.mid + self.amplitude * phase.cos()).clamp(self.floor, self.ceil)
    }

    /// Samples a per-minute 24 h trace with noise (deterministic in the
    /// RNG seed).
    pub fn sample_day(&self, rng: &mut SimRng) -> Vec<f64> {
        (0..MINUTES_PER_DAY)
            .map(|m| {
                let noise = rng.uniform_range(-self.noise, self.noise);
                (self.value_at(m as f64) + noise).clamp(self.floor, self.ceil)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_load_swings_like_fig14a() {
        let p = DiurnalProfile::search_load();
        let values: Vec<f64> = (0..MINUTES_PER_DAY).map(|m| p.value_at(m as f64)).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        assert!((min - 0.2).abs() < 0.02, "trough {min}");
        assert!((max - 1.0).abs() < 0.02, "peak {max}");
        // Peak is where we put it.
        let argmax = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((argmax as f64 - 820.0).abs() < 2.0);
    }

    #[test]
    fn peak_and_trough_are_where_the_formula_says() {
        // Pins the sign of the cosine term: the doc comment and the code
        // both say `mid + amp·cos(2π (t − peak)/1440)`, so the maximum sits
        // exactly at `peak_minute` and the minimum half a day away. A
        // silent sign flip would move the peak to the trough and break the
        // Fig. 14/15 phase alignment.
        let p = DiurnalProfile {
            mid: 0.5,
            amplitude: 0.3,
            peak_minute: 820.0,
            floor: 0.0,
            ceil: 1.0,
            noise: 0.0,
        };
        assert!(
            (p.value_at(820.0) - 0.8).abs() < 1e-12,
            "peak value at peak_minute"
        );
        assert!(
            (p.value_at(820.0 - 720.0) - 0.2).abs() < 1e-12,
            "trough half a day before"
        );
        assert!(
            (p.value_at(820.0 + 720.0) - 0.2).abs() < 1e-12,
            "trough half a day after"
        );
        // No other minute beats the peak or undercuts the trough.
        for m in 0..MINUTES_PER_DAY {
            let v = p.value_at(m as f64);
            assert!((0.2 - 1e-12..=0.8 + 1e-12).contains(&v), "minute {m}: {v}");
        }
    }

    #[test]
    fn background_stays_in_fig14b_range() {
        let p = DiurnalProfile::background_traffic();
        for m in 0..MINUTES_PER_DAY {
            let v = p.value_at(m as f64);
            assert!((0.05..=0.55).contains(&v), "minute {m}: {v}");
        }
    }

    #[test]
    fn sampled_day_is_deterministic_and_clamped() {
        let p = DiurnalProfile::search_load();
        let mut r1 = SimRng::seed_from_u64(7);
        let mut r2 = SimRng::seed_from_u64(7);
        let a = p.sample_day(&mut r1);
        let b = p.sample_day(&mut r2);
        assert_eq!(a, b);
        assert_eq!(a.len(), MINUTES_PER_DAY);
        assert!(a.iter().all(|&v| (p.floor..=p.ceil).contains(&v)));
    }

    #[test]
    fn profile_is_periodic() {
        let p = DiurnalProfile::search_load();
        assert!((p.value_at(0.0) - p.value_at(1440.0)).abs() < 1e-12);
    }

    #[test]
    fn night_is_quiet_day_is_busy() {
        // Fig. 15: maximum saving "occurs during the night, because of the
        // lower workload intensity" — the profile must make nights quiet.
        let p = DiurnalProfile::search_load();
        let night = p.value_at(120.0); // 02:00
        let day = p.value_at(820.0); // 13:40
        assert!(night < 0.4 && day > 0.9, "night {night}, day {day}");
    }
}
