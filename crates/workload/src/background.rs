//! Background (latency-tolerant) elephant-flow generation.
//!
//! The paper's experiments set "the background traffic … to achieve X %
//! network utilization" (§V-B). We realize a target utilization with one
//! elephant per host at `util × capacity` Mbps, destinations forming a
//! locality-biased *perfect matching*: every host sends exactly one
//! elephant and receives exactly one (uplinks sit at exactly the target in
//! both directions, no receive hotspots), with a configurable share of
//! traffic staying rack-local / pod-local — data-center traffic matrices
//! are strongly rack-local, and an all-cross-pod matrix would overload the
//! core far earlier than the paper's measurements show.

use eprons_sim::SimRng;
use eprons_topo::{FatTree, NodeId};

/// A generated background flow (endpoints + demand in Mbps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundFlow {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Demand in Mbps.
    pub demand_mbps: f64,
}

/// Destination-locality mix for the background matrix. The remainder
/// (`1 − same_edge − same_pod`) goes cross-pod.
#[derive(Debug, Clone, Copy)]
pub struct LocalityMix {
    /// Probability a flow targets a host under the same edge switch.
    pub same_edge: f64,
    /// Probability a flow targets another edge of the same pod.
    pub same_pod: f64,
}

impl Default for LocalityMix {
    fn default() -> Self {
        // Rack-heavy, per common DCN traffic studies. The matching
        // constraint dilutes the requested probabilities (a 4-ary tree has
        // a single same-edge partner per host), so these are set above the
        // desired effective fractions.
        LocalityMix {
            same_edge: 0.55,
            same_pod: 0.25,
        }
    }
}

/// [`background_flows_with_mix`] with the default locality mix.
pub fn background_flows(
    ft: &FatTree,
    rng: &mut SimRng,
    util_frac: f64,
    capacity_mbps: f64,
) -> Vec<BackgroundFlow> {
    background_flows_with_mix(ft, rng, util_frac, capacity_mbps, LocalityMix::default())
}

/// One elephant per host at `util_frac × capacity` Mbps; destinations form
/// a perfect matching (each host receives exactly one) biased by `mix`.
///
/// # Panics
/// Panics if `util_frac` is outside `(0, 1]` or the mix probabilities are
/// invalid.
pub fn background_flows_with_mix(
    ft: &FatTree,
    rng: &mut SimRng,
    util_frac: f64,
    capacity_mbps: f64,
    mix: LocalityMix,
) -> Vec<BackgroundFlow> {
    assert!(util_frac > 0.0 && util_frac <= 1.0, "utilization in (0,1]");
    assert!(
        mix.same_edge >= 0.0 && mix.same_pod >= 0.0 && mix.same_edge + mix.same_pod <= 1.0,
        "locality probabilities must be a sub-distribution"
    );
    let hosts = ft.hosts();
    let n = hosts.len();
    let mut taken = vec![false; n];
    let mut dst_of: Vec<Option<usize>> = vec![None; n];

    // Visit sources in random order so late sources aren't systematically
    // starved of local destinations.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        order.swap(i, j);
    }

    for &i in &order {
        let src = hosts[i];
        let src_edge = ft.host_edge(src);
        let src_pod = ft.host_pod(src);
        let r = rng.uniform();
        let preferred = if r < mix.same_edge {
            0
        } else if r < mix.same_edge + mix.same_pod {
            1
        } else {
            2
        };
        // Try the preferred category first, then fall back outward/inward.
        let category_order: [usize; 3] = match preferred {
            0 => [0, 1, 2],
            1 => [1, 2, 0],
            _ => [2, 1, 0],
        };
        let mut chosen = None;
        for cat in category_order {
            let pool: Vec<usize> = (0..n)
                .filter(|&j| {
                    if j == i || taken[j] {
                        return false;
                    }
                    let d = hosts[j];
                    match cat {
                        0 => ft.host_edge(d) == src_edge,
                        1 => ft.host_pod(d) == src_pod && ft.host_edge(d) != src_edge,
                        _ => ft.host_pod(d) != src_pod,
                    }
                })
                .collect();
            if !pool.is_empty() {
                chosen = Some(pool[rng.index(pool.len())]);
                break;
            }
        }
        let j = match chosen {
            Some(j) => j,
            None => {
                // Only the source's own slot remains: steal an earlier
                // assignment's destination and hand that flow `i`'s slot.
                let k = order
                    .iter()
                    .copied()
                    .find(|&k| k != i && dst_of[k].is_some_and(|d| d != i))
                    .expect("some earlier flow can donate its destination");
                let donated = dst_of[k].expect("checked above");
                dst_of[k] = Some(i);
                taken[i] = true;
                donated
            }
        };
        taken[j] = true;
        dst_of[i] = Some(j);
    }

    (0..n)
        .map(|i| BackgroundFlow {
            src: hosts[i],
            dst: hosts[dst_of[i].expect("all assigned")],
            demand_mbps: util_frac * capacity_mbps,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_at_target_demand() {
        let ft = FatTree::new(4, 1000.0);
        let mut rng = SimRng::seed_from_u64(31);
        let flows = background_flows(&ft, &mut rng, 0.2, 1000.0);
        assert_eq!(flows.len(), 16);
        for f in &flows {
            assert_eq!(f.demand_mbps, 200.0);
            assert_ne!(f.src, f.dst);
        }
        // Each host sends exactly once AND receives exactly once.
        let mut srcs: Vec<NodeId> = flows.iter().map(|f| f.src).collect();
        srcs.sort();
        srcs.dedup();
        assert_eq!(srcs.len(), 16);
        let mut dsts: Vec<NodeId> = flows.iter().map(|f| f.dst).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 16, "every host receives exactly one elephant");
    }

    #[test]
    fn matching_holds_across_seeds() {
        let ft = FatTree::new(4, 1000.0);
        for seed in 0..50 {
            let mut rng = SimRng::seed_from_u64(seed);
            let flows = background_flows(&ft, &mut rng, 0.3, 1000.0);
            let mut dsts: Vec<NodeId> = flows.iter().map(|f| f.dst).collect();
            dsts.sort();
            dsts.dedup();
            assert_eq!(dsts.len(), 16, "seed {seed}: not a perfect matching");
            assert!(
                flows.iter().all(|f| f.src != f.dst),
                "seed {seed}: self-flow"
            );
        }
    }

    #[test]
    fn locality_mix_is_respected_on_average() {
        let ft = FatTree::new(4, 1000.0);
        let mut rng = SimRng::seed_from_u64(32);
        let mut same_edge = 0usize;
        let mut same_pod = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            for f in background_flows(&ft, &mut rng, 0.2, 1000.0) {
                total += 1;
                if ft.host_edge(f.src) == ft.host_edge(f.dst) {
                    same_edge += 1;
                } else if ft.host_pod(f.src) == ft.host_pod(f.dst) {
                    same_pod += 1;
                }
            }
        }
        let fe = same_edge as f64 / total as f64;
        let fp = same_pod as f64 / total as f64;
        // The matching constraint dilutes the requested mix; check the
        // effective fractions stay rack-heavy with a real cross-pod share.
        assert!((0.2..0.6).contains(&fe), "same-edge fraction {fe}");
        assert!((0.1..0.45).contains(&fp), "same-pod fraction {fp}");
        assert!(1.0 - fe - fp > 0.15, "cross-pod share vanished");
    }

    #[test]
    fn all_cross_pod_mix_works() {
        let ft = FatTree::new(4, 1000.0);
        let mut rng = SimRng::seed_from_u64(33);
        let flows = background_flows_with_mix(
            &ft,
            &mut rng,
            0.5,
            1000.0,
            LocalityMix {
                same_edge: 0.0,
                same_pod: 0.0,
            },
        );
        let cross = flows
            .iter()
            .filter(|f| ft.host_pod(f.src) != ft.host_pod(f.dst))
            .count();
        assert!(cross >= 14, "should be (almost) all cross-pod: {cross}/16");
    }

    #[test]
    fn deterministic_in_seed() {
        let ft = FatTree::new(4, 1000.0);
        let mut r1 = SimRng::seed_from_u64(34);
        let mut r2 = SimRng::seed_from_u64(34);
        assert_eq!(
            background_flows(&ft, &mut r1, 0.5, 1000.0),
            background_flows(&ft, &mut r2, 0.5, 1000.0)
        );
    }

    #[test]
    #[should_panic(expected = "utilization in (0,1]")]
    fn rejects_bad_utilization() {
        let ft = FatTree::new(4, 1000.0);
        let mut rng = SimRng::seed_from_u64(35);
        background_flows(&ft, &mut rng, 1.5, 1000.0);
    }
}
