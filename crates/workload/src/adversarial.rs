//! Adversarial day traces: flash crowds, step loads, and correlated
//! switch failures during a ramp.
//!
//! The sinusoidal [`crate::diurnal`] profile is the paper's benign
//! regime. An *online* controller earns its keep on the traces that
//! punish epoch-batch re-optimization: a flash crowd whose edges make a
//! batch controller flap switches every epoch, a step load that parks
//! demand exactly on a candidate boundary, and switch failures that
//! arrive correlated with the ramp (operators know this one: the surge
//! is what kills the marginal line card). Everything here is pure data —
//! per-minute demand vectors and failure tuples — deterministic in the
//! RNG seed, so day replays stay bit-reproducible.

use eprons_sim::SimRng;

use crate::diurnal::{DiurnalProfile, MINUTES_PER_DAY};
use crate::replay::ReplayTrace;

/// A flash crowd riding on a diurnal base: demand ramps up linearly over
/// `ramp_minutes`, holds at `base + surge` for `hold_minutes`, and decays
/// linearly back over `decay_minutes`. Values clamp to the base profile's
/// `[floor, ceil]` band so a surge cannot demand more than the plant
/// serves at peak.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// The diurnal profile the crowd rides on.
    pub base: DiurnalProfile,
    /// Minute of day the ramp starts.
    pub start_minute: usize,
    /// Minutes from base level to full surge.
    pub ramp_minutes: usize,
    /// Minutes the surge holds at full amplitude.
    pub hold_minutes: usize,
    /// Minutes from full surge back to base level.
    pub decay_minutes: usize,
    /// Surge amplitude added to the base value at full strength.
    pub surge: f64,
}

impl FlashCrowd {
    /// The reference flash-crowd day used by the fig harness and CI: a
    /// mid-morning surge (minute 540 = 09:00) on the paper's search-load
    /// profile, ramping for 40 min, holding 80 min, decaying 60 min.
    pub fn reference() -> Self {
        FlashCrowd {
            base: DiurnalProfile::search_load(),
            start_minute: 540,
            ramp_minutes: 40,
            hold_minutes: 80,
            decay_minutes: 60,
            surge: 0.45,
        }
    }

    /// The surge envelope in `[0, 1]` at a minute of day: 0 outside the
    /// event, 1 during the hold, linear on the ramp and decay edges.
    pub fn envelope_at(&self, minute: f64) -> f64 {
        let m = minute - self.start_minute as f64;
        let ramp = self.ramp_minutes as f64;
        let hold = self.hold_minutes as f64;
        let decay = self.decay_minutes as f64;
        if m < 0.0 {
            0.0
        } else if m < ramp {
            if ramp > 0.0 {
                m / ramp
            } else {
                1.0
            }
        } else if m < ramp + hold {
            1.0
        } else if m < ramp + hold + decay {
            if decay > 0.0 {
                1.0 - (m - ramp - hold) / decay
            } else {
                0.0
            }
        } else {
            0.0
        }
    }

    /// The minute window `[start, end)` covering the ramp and the hold —
    /// the span during which correlated failures are most damaging.
    pub fn ramp_window(&self) -> (usize, usize) {
        (
            self.start_minute,
            (self.start_minute + self.ramp_minutes + self.hold_minutes).min(MINUTES_PER_DAY),
        )
    }

    /// The noiseless trace value at a minute of day.
    pub fn value_at(&self, minute: f64) -> f64 {
        (self.base.value_at(minute) + self.surge * self.envelope_at(minute))
            .clamp(self.base.floor, self.base.ceil)
    }
}

/// A step load: `low` until `step_minute`, `high` until `end_minute`,
/// then `low` again. The classic boundary-parking adversary — pick
/// `high` on a consolidation-candidate threshold and an epoch-batch
/// controller re-decides the same coin flip every epoch.
#[derive(Debug, Clone)]
pub struct StepLoad {
    /// Demand outside the step window.
    pub low: f64,
    /// Demand inside the step window.
    pub high: f64,
    /// Minute of day the step rises.
    pub step_minute: usize,
    /// Minute of day the step falls (clamped to the end of day).
    pub end_minute: usize,
    /// Uniform noise half-width applied when sampling a trace.
    pub noise: f64,
}

impl StepLoad {
    /// The noiseless trace value at a minute of day.
    pub fn value_at(&self, minute: f64) -> f64 {
        let m = minute;
        if m >= self.step_minute as f64 && m < self.end_minute as f64 {
            self.high
        } else {
            self.low
        }
    }
}

/// A day-long demand trace: the benign diurnal profile or one of the
/// adversarial generators. All variants sample one value per minute,
/// deterministic in the RNG seed, and the `Diurnal` variant reproduces
/// [`DiurnalProfile::sample_day`] bit for bit (the day loop's default
/// traces route through here).
#[derive(Debug, Clone)]
pub enum TraceScenario {
    /// The paper's sinusoidal diurnal profile (Fig. 14).
    Diurnal(DiurnalProfile),
    /// A flash crowd on top of a diurnal base.
    FlashCrowd(FlashCrowd),
    /// A step load.
    Step(StepLoad),
    /// A committed per-minute trace, replayed verbatim (noise-free: the
    /// recorded day already contains whatever noise production had).
    Replay(ReplayTrace),
}

impl TraceScenario {
    /// Short label for banners and journals.
    pub fn name(&self) -> &'static str {
        match self {
            TraceScenario::Diurnal(_) => "diurnal",
            TraceScenario::FlashCrowd(_) => "flash-crowd",
            TraceScenario::Step(_) => "step",
            TraceScenario::Replay(_) => "replay",
        }
    }

    /// The noiseless trace value at a minute of day.
    pub fn value_at(&self, minute: f64) -> f64 {
        match self {
            TraceScenario::Diurnal(p) => p.value_at(minute),
            TraceScenario::FlashCrowd(f) => f.value_at(minute),
            TraceScenario::Step(s) => s.value_at(minute),
            TraceScenario::Replay(t) => t.value_at(minute),
        }
    }

    /// Samples a per-minute 24 h trace with the scenario's noise
    /// (deterministic in the RNG seed).
    pub fn sample_day(&self, rng: &mut SimRng) -> Vec<f64> {
        match self {
            TraceScenario::Diurnal(p) => p.sample_day(rng),
            TraceScenario::FlashCrowd(f) => (0..MINUTES_PER_DAY)
                .map(|m| {
                    let noise = rng.uniform_range(-f.base.noise, f.base.noise);
                    (f.value_at(m as f64) + noise).clamp(f.base.floor, f.base.ceil)
                })
                .collect(),
            TraceScenario::Step(s) => (0..MINUTES_PER_DAY)
                .map(|m| {
                    let noise = rng.uniform_range(-s.noise, s.noise);
                    (s.value_at(m as f64) + noise).clamp(0.0, 1.0)
                })
                .collect(),
            // Verbatim and RNG-free: the recorded day *is* the sample.
            TraceScenario::Replay(t) => t.minutes().to_vec(),
        }
    }
}

/// One correlated failure: a switch goes down at `fail_minute` and comes
/// back `downtime_minutes` later. Plain data — the caller converts these
/// into its failure-schedule representation (this crate stays below the
/// network layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedFailure {
    /// Minute of day the switch fails.
    pub fail_minute: f64,
    /// Node index of the failed switch.
    pub switch: usize,
    /// Minutes until the switch recovers.
    pub downtime_minutes: f64,
}

/// Samples `count` switch failures correlated with a demand ramp: fail
/// times are drawn uniformly inside `[window.0, window.1)` (the surge is
/// when marginal hardware dies), victims uniformly from `switches`
/// without replacement, downtimes uniformly in
/// `[downtime_minutes/2, downtime_minutes·3/2]`. Deterministic in the
/// RNG; returns fewer than `count` failures only when there are fewer
/// candidate switches.
pub fn correlated_failures_during_ramp(
    window: (usize, usize),
    switches: &[usize],
    count: usize,
    downtime_minutes: f64,
    rng: &mut SimRng,
) -> Vec<CorrelatedFailure> {
    assert!(window.1 > window.0, "ramp window must be non-empty");
    assert!(downtime_minutes > 0.0, "downtime must be positive");
    let mut pool: Vec<usize> = switches.to_vec();
    let mut out = Vec::with_capacity(count.min(pool.len()));
    for _ in 0..count {
        if pool.is_empty() {
            break;
        }
        let pick = (rng.uniform_range(0.0, pool.len() as f64) as usize).min(pool.len() - 1);
        let switch = pool.swap_remove(pick);
        let fail_minute = rng.uniform_range(window.0 as f64, window.1 as f64);
        let downtime = rng.uniform_range(downtime_minutes * 0.5, downtime_minutes * 1.5);
        out.push(CorrelatedFailure {
            fail_minute,
            switch,
            downtime_minutes: downtime,
        });
    }
    out.sort_by(|a, b| {
        a.fail_minute
            .partial_cmp(&b.fail_minute)
            .expect("finite minutes")
            .then(a.switch.cmp(&b.switch))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_variant_is_bit_identical_to_the_profile() {
        let p = DiurnalProfile::search_load();
        let mut r1 = SimRng::seed_from_u64(9);
        let mut r2 = SimRng::seed_from_u64(9);
        let direct = p.sample_day(&mut r1);
        let via_scenario = TraceScenario::Diurnal(p).sample_day(&mut r2);
        assert_eq!(direct, via_scenario);
    }

    #[test]
    fn flash_crowd_envelope_shape() {
        let f = FlashCrowd::reference();
        assert_eq!(f.envelope_at(f.start_minute as f64 - 1.0), 0.0);
        assert_eq!(f.envelope_at(f.start_minute as f64 + 20.0), 0.5);
        assert_eq!(f.envelope_at(f.start_minute as f64 + 60.0), 1.0);
        let after = (f.start_minute + f.ramp_minutes + f.hold_minutes + f.decay_minutes) as f64;
        assert_eq!(f.envelope_at(after + 1.0), 0.0);
        // Surge raises demand above the base everywhere inside the hold.
        let hold_m = (f.start_minute + f.ramp_minutes + 10) as f64;
        assert!(f.value_at(hold_m) > f.base.value_at(hold_m));
        // Clamped to the base ceiling.
        for m in 0..MINUTES_PER_DAY {
            assert!(f.value_at(m as f64) <= f.base.ceil + 1e-12);
        }
    }

    #[test]
    fn step_load_rises_and_falls_on_the_minute() {
        let s = StepLoad {
            low: 0.2,
            high: 0.8,
            step_minute: 600,
            end_minute: 700,
            noise: 0.0,
        };
        assert_eq!(s.value_at(599.0), 0.2);
        assert_eq!(s.value_at(600.0), 0.8);
        assert_eq!(s.value_at(699.0), 0.8);
        assert_eq!(s.value_at(700.0), 0.2);
    }

    #[test]
    fn sampled_traces_are_deterministic() {
        let sc = TraceScenario::FlashCrowd(FlashCrowd::reference());
        let a = sc.sample_day(&mut SimRng::seed_from_u64(3));
        let b = sc.sample_day(&mut SimRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_eq!(a.len(), MINUTES_PER_DAY);
    }

    #[test]
    fn correlated_failures_land_in_the_window() {
        let f = FlashCrowd::reference();
        let window = f.ramp_window();
        let switches: Vec<usize> = (16..20).collect();
        let mut rng = SimRng::seed_from_u64(11);
        let fails = correlated_failures_during_ramp(window, &switches, 3, 30.0, &mut rng);
        assert_eq!(fails.len(), 3);
        for cf in &fails {
            assert!(cf.fail_minute >= window.0 as f64 && cf.fail_minute < window.1 as f64);
            assert!(switches.contains(&cf.switch));
            assert!(cf.downtime_minutes >= 15.0 && cf.downtime_minutes <= 45.0);
        }
        // Distinct victims (sampled without replacement).
        let mut ids: Vec<usize> = fails.iter().map(|c| c.switch).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        // Capped by the pool.
        let mut rng2 = SimRng::seed_from_u64(12);
        let few = correlated_failures_during_ramp(window, &[16, 17], 5, 30.0, &mut rng2);
        assert_eq!(few.len(), 2);
    }
}
