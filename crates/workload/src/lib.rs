//! Workload substrate for the EPRONS reproduction.
//!
//! The paper's evaluation drives a 16-server partition–aggregate search
//! cluster with Poisson query arrivals whose intensity follows a Wikipedia
//! 24-hour diurnal trace, a background-traffic trace, and service times
//! logged from Xapian over a Wikipedia index (§V-A, Fig. 14). This crate
//! generates all of those synthetically (see the substitution table in
//! DESIGN.md):
//!
//! * [`arrivals`] — homogeneous and non-homogeneous (thinned) Poisson
//!   arrival processes;
//! * [`diurnal`] — the 24 h search-load and background-traffic profiles
//!   (Fig. 14's shape: diurnal swing with noise);
//! * [`adversarial`] — flash-crowd / step-load day traces and
//!   ramp-correlated switch failures for stressing online controllers;
//! * [`queries`] — partition–aggregate query generation (random
//!   aggregator broadcasting sub-queries to the other 15 ISNs);
//! * [`background`] — latency-tolerant elephant-flow sets targeting a
//!   given link utilization;
//! * [`service_dist`] — the synthetic Xapian-like service-time log
//!   (heavy-tailed mixture) from which servers build their work PMFs;
//! * [`trace`] — persistence for the measurement artifacts (service logs,
//!   query streams) so experiments can replay frozen workloads.

#![warn(missing_docs)]

pub mod adversarial;
pub mod arrivals;
pub mod background;
pub mod diurnal;
pub mod queries;
pub mod replay;
pub mod service_dist;
pub mod trace;

pub use adversarial::{
    correlated_failures_during_ramp, CorrelatedFailure, FlashCrowd, StepLoad, TraceScenario,
};
pub use arrivals::{poisson_times, thinned_poisson_times};
pub use diurnal::DiurnalProfile;
pub use queries::{per_isn_arrivals, Query, QueryGenerator};
pub use replay::ReplayTrace;
pub use service_dist::xapian_like_samples;
