//! Synthetic Xapian-like service-time logs.
//!
//! The paper builds each ISN's service-time distribution by running 100 K
//! random queries against Xapian over the English Wikipedia index and
//! logging processing times (§V-A). The synthetic stand-in is a two-mode
//! log-normal mixture — a fast mode (index hits resolved from memory) and
//! a slower heavy-tailed mode (multi-term queries walking long posting
//! lists) — which preserves what the evaluation actually consumes: a
//! millisecond-scale, heavy-tailed PDF (see DESIGN.md's substitution
//! table).

use eprons_sim::SimRng;

/// Parameters of the two-mode log-normal mixture.
#[derive(Debug, Clone)]
pub struct XapianLikeParams {
    /// Probability of the fast mode.
    pub fast_weight: f64,
    /// Fast-mode median, seconds.
    pub fast_median_s: f64,
    /// Fast-mode log-σ.
    pub fast_sigma: f64,
    /// Slow-mode median, seconds.
    pub slow_median_s: f64,
    /// Slow-mode log-σ.
    pub slow_sigma: f64,
    /// Hard cap on a single service time, seconds.
    pub cap_s: f64,
}

impl Default for XapianLikeParams {
    fn default() -> Self {
        XapianLikeParams {
            fast_weight: 0.7,
            fast_median_s: 3.0e-3,
            fast_sigma: 0.35,
            slow_median_s: 7.0e-3,
            slow_sigma: 0.45,
            cap_s: 60.0e-3,
        }
    }
}

/// Draws `n` service-time samples (seconds, at maximum frequency) from the
/// mixture — the synthetic "100 K query log".
pub fn xapian_like_samples(rng: &mut SimRng, n: usize) -> Vec<f64> {
    xapian_like_samples_with(rng, n, &XapianLikeParams::default())
}

/// As [`xapian_like_samples`] with explicit parameters.
pub fn xapian_like_samples_with(rng: &mut SimRng, n: usize, p: &XapianLikeParams) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let (median, sigma) = if rng.bernoulli(p.fast_weight) {
                (p.fast_median_s, p.fast_sigma)
            } else {
                (p.slow_median_s, p.slow_sigma)
            };
            rng.lognormal(median.ln(), sigma).min(p.cap_s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eprons_num::quantile::percentile;

    #[test]
    fn samples_are_millisecond_scale() {
        let mut rng = SimRng::seed_from_u64(41);
        let s = xapian_like_samples(&mut rng, 50_000);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!(
            (2.0e-3..10.0e-3).contains(&mean),
            "mean service time {mean}"
        );
        assert!(s.iter().all(|&x| x > 0.0 && x <= 60.0e-3));
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let mut rng = SimRng::seed_from_u64(42);
        let s = xapian_like_samples(&mut rng, 50_000);
        let p50 = percentile(&s, 0.5);
        let p95 = percentile(&s, 0.95);
        let p99 = percentile(&s, 0.99);
        assert!(p95 > 2.0 * p50, "p95 {p95} vs p50 {p50}");
        assert!(p99 > p95, "p99 {p99} vs p95 {p95}");
    }

    #[test]
    fn mixture_is_bimodal_in_the_right_places() {
        let mut rng = SimRng::seed_from_u64(43);
        let s = xapian_like_samples(&mut rng, 50_000);
        // Roughly 70% of mass near the fast mode.
        let fast = s.iter().filter(|&&x| x < 5.0e-3).count() as f64 / s.len() as f64;
        assert!((0.5..0.8).contains(&fast), "fast fraction {fast}");
    }

    #[test]
    fn deterministic_in_seed() {
        let mut r1 = SimRng::seed_from_u64(44);
        let mut r2 = SimRng::seed_from_u64(44);
        assert_eq!(
            xapian_like_samples(&mut r1, 100),
            xapian_like_samples(&mut r2, 100)
        );
    }

    #[test]
    fn cap_is_enforced() {
        let mut rng = SimRng::seed_from_u64(45);
        let p = XapianLikeParams {
            cap_s: 5.0e-3,
            ..Default::default()
        };
        let s = xapian_like_samples_with(&mut rng, 10_000, &p);
        assert!(s.iter().all(|&x| x <= 5.0e-3));
    }
}
