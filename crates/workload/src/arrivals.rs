//! Poisson arrival processes.

use eprons_sim::SimRng;

/// Homogeneous Poisson arrival times in `[0, duration)` at `rate` per
/// second.
///
/// # Panics
/// Panics if `rate <= 0` or `duration < 0`.
pub fn poisson_times(rng: &mut SimRng, rate_per_s: f64, duration_s: f64) -> Vec<f64> {
    assert!(rate_per_s > 0.0, "rate must be positive");
    assert!(duration_s >= 0.0, "duration must be non-negative");
    let mut out = Vec::with_capacity((rate_per_s * duration_s) as usize + 16);
    let mut t = 0.0;
    loop {
        t += rng.exponential(rate_per_s);
        if t >= duration_s {
            break;
        }
        out.push(t);
    }
    out
}

/// Non-homogeneous Poisson arrivals by thinning: candidate events at
/// `max_rate` are kept with probability `rate_fn(t) / max_rate`.
///
/// # Panics
/// Panics if `max_rate <= 0`, `duration < 0`, or `rate_fn` exceeds
/// `max_rate` anywhere it is sampled.
pub fn thinned_poisson_times(
    rng: &mut SimRng,
    rate_fn: impl Fn(f64) -> f64,
    max_rate_per_s: f64,
    duration_s: f64,
) -> Vec<f64> {
    assert!(max_rate_per_s > 0.0, "max rate must be positive");
    assert!(duration_s >= 0.0, "duration must be non-negative");
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(max_rate_per_s);
        if t >= duration_s {
            break;
        }
        let r = rate_fn(t);
        assert!(
            r <= max_rate_per_s * (1.0 + 1e-9),
            "rate_fn({t}) = {r} exceeds max_rate {max_rate_per_s}"
        );
        if rng.uniform() < r / max_rate_per_s {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_rate_is_respected() {
        let mut rng = SimRng::seed_from_u64(1);
        let times = poisson_times(&mut rng, 100.0, 100.0);
        let rate = times.len() as f64 / 100.0;
        assert!((rate - 100.0).abs() < 5.0, "observed rate {rate}");
        // Sorted and in range.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (0.0..100.0).contains(&t)));
    }

    #[test]
    fn interarrival_cv_is_one() {
        // Poisson inter-arrivals are exponential: coefficient of variation 1.
        let mut rng = SimRng::seed_from_u64(2);
        let times = poisson_times(&mut rng, 50.0, 1000.0);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "CV was {cv}");
    }

    #[test]
    fn thinning_tracks_rate_function() {
        let mut rng = SimRng::seed_from_u64(3);
        // Rate 100 in the first half, 20 in the second.
        let times = thinned_poisson_times(
            &mut rng,
            |t| if t < 500.0 { 100.0 } else { 20.0 },
            100.0,
            1000.0,
        );
        let first = times.iter().filter(|&&t| t < 500.0).count() as f64 / 500.0;
        let second = times.iter().filter(|&&t| t >= 500.0).count() as f64 / 500.0;
        assert!((first - 100.0).abs() < 6.0, "first-half rate {first}");
        assert!((second - 20.0).abs() < 3.0, "second-half rate {second}");
    }

    #[test]
    fn zero_duration_is_empty() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(poisson_times(&mut rng, 10.0, 0.0).is_empty());
        assert!(thinned_poisson_times(&mut rng, |_| 1.0, 10.0, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds max_rate")]
    fn thinning_rejects_rate_above_bound() {
        let mut rng = SimRng::seed_from_u64(5);
        let _ = thinned_poisson_times(&mut rng, |_| 50.0, 10.0, 100.0);
    }
}
