//! Trace persistence: the measurement artifacts of §V-A as files.
//!
//! The paper builds its server model from a logged artifact — "randomly
//! generate 100K search queries, run and log their processing time on the
//! Index Serving Nodes". This module persists and reloads the equivalent
//! artifacts (service-time logs and query streams) in a simple
//! line-oriented text format, so experiments can be re-run against a
//! frozen workload instead of a generator: one value (or one
//! `time aggregator` pair) per line, `#` comments allowed.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::queries::Query;

/// Writes a service-time log (seconds per line).
pub fn save_service_log(path: &Path, samples: &[f64]) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# eprons service-time log: one seconds value per line")?;
    for s in samples {
        writeln!(w, "{s:.9}")?;
    }
    w.flush()
}

/// Reads a service-time log written by [`save_service_log`].
pub fn load_service_log(path: &Path) -> std::io::Result<Vec<f64>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let v: f64 = t.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        out.push(v);
    }
    Ok(out)
}

/// Writes a query stream (`time_s aggregator` per line).
pub fn save_query_trace(path: &Path, queries: &[Query]) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# eprons query trace: time_s aggregator")?;
    for q in queries {
        writeln!(w, "{:.9} {}", q.time_s, q.aggregator)?;
    }
    w.flush()
}

/// Reads a query stream written by [`save_query_trace`]. Ids are assigned
/// by position.
pub fn load_query_trace(path: &Path) -> std::io::Result<Vec<Query>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let bad = |e: String| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        };
        let time_s: f64 = parts
            .next()
            .ok_or_else(|| bad("missing time".into()))?
            .parse()
            .map_err(|e| bad(format!("{e}")))?;
        let aggregator: usize = parts
            .next()
            .ok_or_else(|| bad("missing aggregator".into()))?
            .parse()
            .map_err(|e| bad(format!("{e}")))?;
        out.push(Query {
            id: out.len() as u64,
            time_s,
            aggregator,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QueryGenerator;
    use crate::service_dist::xapian_like_samples;
    use eprons_sim::SimRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eprons-trace-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn service_log_round_trip() {
        let mut rng = SimRng::seed_from_u64(51);
        let samples = xapian_like_samples(&mut rng, 500);
        let path = tmp("svc.log");
        save_service_log(&path, &samples).unwrap();
        let loaded = load_service_log(&path).unwrap();
        assert_eq!(loaded.len(), samples.len());
        for (a, b) in samples.iter().zip(&loaded) {
            assert!((a - b).abs() < 1e-8);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_trace_round_trip() {
        let mut rng = SimRng::seed_from_u64(52);
        let qs = QueryGenerator::new(16).generate(&mut rng, 100.0, 3.0);
        let path = tmp("queries.log");
        save_query_trace(&path, &qs).unwrap();
        let loaded = load_query_trace(&path).unwrap();
        assert_eq!(loaded.len(), qs.len());
        for (a, b) in qs.iter().zip(&loaded) {
            assert!((a.time_s - b.time_s).abs() < 1e-8);
            assert_eq!(a.aggregator, b.aggregator);
            assert_eq!(a.id, b.id);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let path = tmp("commented.log");
        std::fs::write(&path, "# header\n\n0.001\n# mid comment\n0.002\n").unwrap();
        let v = load_service_log(&path).unwrap();
        assert_eq!(v, vec![0.001, 0.002]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_are_errors() {
        let path = tmp("bad.log");
        std::fs::write(&path, "not-a-number\n").unwrap();
        assert!(load_service_log(&path).is_err());
        std::fs::write(&path, "0.5\n").unwrap();
        assert!(
            load_query_trace(&path).is_err(),
            "missing aggregator column"
        );
        std::fs::remove_file(&path).ok();
    }
}
