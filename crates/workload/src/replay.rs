//! Replay traces: committed per-minute production demand profiles.
//!
//! The diurnal and adversarial scenarios *generate* their day; a replay
//! trace **is** the day — 1440 per-minute values captured once and
//! committed as an artifact, so a production-shaped day (plateaus,
//! bursts, a high-QPS spine) can be fed through the controller
//! bit-reproducibly with no generator or noise in the loop. The text
//! format follows [`crate::trace`]: one value per line, `#` comments
//! allowed.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::diurnal::MINUTES_PER_DAY;

/// A committed per-minute day trace (1440 values in `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTrace {
    minutes: Vec<f64>,
}

impl ReplayTrace {
    /// Wraps a per-minute vector. Panics unless it holds exactly
    /// [`MINUTES_PER_DAY`] finite values in `[0, 1]` — a replay trace is
    /// a day, not a window.
    pub fn new(minutes: Vec<f64>) -> ReplayTrace {
        assert_eq!(
            minutes.len(),
            MINUTES_PER_DAY,
            "a replay trace holds one value per minute of day"
        );
        assert!(
            minutes.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)),
            "replay trace values must be finite fractions in [0, 1]"
        );
        ReplayTrace { minutes }
    }

    /// A constant-demand day (`level` every minute) — the degenerate
    /// trace tests use to pin cache-counter arithmetic.
    pub fn constant(level: f64) -> ReplayTrace {
        ReplayTrace::new(vec![level; MINUTES_PER_DAY])
    }

    /// The trace value at a minute of day (clamped to the last minute).
    pub fn value_at(&self, minute: f64) -> f64 {
        let m = (minute.max(0.0) as usize).min(MINUTES_PER_DAY - 1);
        self.minutes[m]
    }

    /// The full per-minute day, verbatim.
    pub fn minutes(&self) -> &[f64] {
        &self.minutes
    }

    /// Writes the trace (one value per line).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "# eprons replay trace: one per-minute value per line")?;
        for v in &self.minutes {
            writeln!(w, "{v:.6}")?;
        }
        w.flush()
    }

    /// Reads a trace written by [`ReplayTrace::save`].
    ///
    /// # Errors
    /// I/O failures, malformed values, out-of-range values, or a line
    /// count other than [`MINUTES_PER_DAY`].
    pub fn load(path: &Path) -> std::io::Result<ReplayTrace> {
        let r = BufReader::new(std::fs::File::open(path)?);
        let mut minutes = Vec::with_capacity(MINUTES_PER_DAY);
        let bad = |lineno: usize, msg: String| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let v: f64 = t.parse().map_err(|e| bad(lineno, format!("{e}")))?;
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(bad(lineno, format!("value {v} outside [0, 1]")));
            }
            minutes.push(v);
        }
        if minutes.len() != MINUTES_PER_DAY {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "expected {MINUTES_PER_DAY} per-minute values, got {}",
                    minutes.len()
                ),
            ));
        }
        Ok(ReplayTrace { minutes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eprons-replay-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_through_disk() {
        let minutes: Vec<f64> = (0..MINUTES_PER_DAY)
            .map(|m| 0.25 + 0.5 * (m as f64 / MINUTES_PER_DAY as f64))
            .collect();
        let t = ReplayTrace::new(minutes);
        let path = tmp("roundtrip.trace");
        t.save(&path).unwrap();
        let loaded = ReplayTrace::load(&path).unwrap();
        // 6 decimal places of the save format: equal to within 5e-7.
        assert_eq!(loaded.minutes().len(), MINUTES_PER_DAY);
        for (a, b) in t.minutes().iter().zip(loaded.minutes()) {
            assert!((a - b).abs() < 5e-7);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn value_at_clamps_and_indexes_by_minute() {
        let mut minutes = vec![0.5; MINUTES_PER_DAY];
        minutes[0] = 0.1;
        minutes[MINUTES_PER_DAY - 1] = 0.9;
        let t = ReplayTrace::new(minutes);
        assert_eq!(t.value_at(-5.0), 0.1);
        assert_eq!(t.value_at(0.4), 0.1);
        assert_eq!(t.value_at(720.0), 0.5);
        assert_eq!(t.value_at(1e9), 0.9);
    }

    #[test]
    fn load_rejects_bad_traces() {
        let path = tmp("bad.trace");
        std::fs::write(&path, "0.5\n0.5\n").unwrap();
        assert!(ReplayTrace::load(&path).is_err(), "wrong length");
        let long = "1.5\n".repeat(MINUTES_PER_DAY);
        std::fs::write(&path, long).unwrap();
        assert!(ReplayTrace::load(&path).is_err(), "out of range");
        std::fs::remove_file(&path).ok();
    }
}
