//! Partition–aggregate query generation (paper §V-A).
//!
//! "In our simulator, we randomly choose a server to be the aggregator,
//! while the other 15 servers will then be the ISNs for each user query.
//! The aggregator will broadcast sub-queries to all ISNs."

use eprons_sim::SimRng;

use crate::arrivals::poisson_times;

/// One user query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Query id (sequence number).
    pub id: u64,
    /// Absolute issue time, seconds.
    pub time_s: f64,
    /// Index of the server acting as aggregator for this query.
    pub aggregator: usize,
}

/// Generates queries as a Poisson stream with random aggregators.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    /// Number of servers in the cluster (16 in the paper).
    pub num_servers: usize,
}

impl QueryGenerator {
    /// Creates a generator for a cluster of `num_servers`.
    ///
    /// # Panics
    /// Panics if `num_servers < 2` (a query needs at least one ISN).
    pub fn new(num_servers: usize) -> Self {
        assert!(num_servers >= 2, "cluster needs at least 2 servers");
        QueryGenerator { num_servers }
    }

    /// A Poisson query stream over `[0, duration)`.
    pub fn generate(&self, rng: &mut SimRng, rate_per_s: f64, duration_s: f64) -> Vec<Query> {
        poisson_times(rng, rate_per_s, duration_s)
            .into_iter()
            .enumerate()
            .map(|(i, t)| Query {
                id: i as u64,
                time_s: t,
                aggregator: rng.index(self.num_servers),
            })
            .collect()
    }

    /// The ISN indices of a query: everyone but the aggregator.
    pub fn isns_of(&self, q: &Query) -> impl Iterator<Item = usize> + '_ {
        let agg = q.aggregator;
        (0..self.num_servers).filter(move |&s| s != agg)
    }
}

/// Splits a query stream into per-ISN sub-query arrival times: server `s`
/// receives a sub-query for every query it does not aggregate.
pub fn per_isn_arrivals(queries: &[Query], num_servers: usize) -> Vec<Vec<f64>> {
    let mut per = vec![Vec::new(); num_servers];
    for q in queries {
        for (s, arr) in per.iter_mut().enumerate() {
            if s != q.aggregator {
                arr.push(q.time_s);
            }
        }
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_poisson_stream_with_aggregators() {
        let mut rng = SimRng::seed_from_u64(21);
        let g = QueryGenerator::new(16);
        let qs = g.generate(&mut rng, 100.0, 50.0);
        let rate = qs.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() < 10.0);
        assert!(qs.iter().all(|q| q.aggregator < 16));
        // Ids are sequential, times sorted.
        assert!(qs.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert_eq!(qs.last().unwrap().id as usize, qs.len() - 1);
    }

    #[test]
    fn aggregators_are_spread_uniformly() {
        let mut rng = SimRng::seed_from_u64(22);
        let g = QueryGenerator::new(16);
        let qs = g.generate(&mut rng, 500.0, 60.0);
        let mut counts = [0usize; 16];
        for q in &qs {
            counts[q.aggregator] += 1;
        }
        let expect = qs.len() as f64 / 16.0;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.25 * expect,
                "server {s} aggregated {c}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn isns_exclude_the_aggregator() {
        let g = QueryGenerator::new(16);
        let q = Query {
            id: 0,
            time_s: 0.0,
            aggregator: 5,
        };
        let isns: Vec<usize> = g.isns_of(&q).collect();
        assert_eq!(isns.len(), 15);
        assert!(!isns.contains(&5));
    }

    #[test]
    fn per_isn_arrival_counts() {
        let mut rng = SimRng::seed_from_u64(23);
        let g = QueryGenerator::new(4);
        let qs = g.generate(&mut rng, 50.0, 20.0);
        let per = per_isn_arrivals(&qs, 4);
        // Each server receives a sub-query for every query it didn't
        // aggregate.
        for (s, arr) in per.iter().enumerate() {
            let aggregated = qs.iter().filter(|q| q.aggregator == s).count();
            assert_eq!(arr.len(), qs.len() - aggregated);
            assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_server_cluster_rejected() {
        QueryGenerator::new(1);
    }
}
