//! Energy-ledger cross-check plus the adversarial online-day audit.
//!
//! Phase A pins the day-energy accounting identity on a journaled
//! failure day: [`day_total_energy_j`] (the Fig. 15 currency, computed
//! from the returned records) must equal the integral of the journal's
//! `PowerSegment` tiling plus the `RepairOutcome` boot charges. The two
//! sides are computed by independent code paths — the controller's
//! accumulators vs. the telemetry stream — so drift in either shows up
//! here before it corrupts a published figure.
//!
//! Phase B replays a flash-crowd day with ramp-correlated switch
//! failures through the online controller (hysteresis + deferral) and
//! requires `obsctl audit` to pass clean — including the deferral
//! conservation check (every megabit-minute enqueued is drained or
//! dropped) — on the resulting journal.
//!
//! One `#[test]` because the telemetry sinks are process-wide globals.

use eprons_bench::obsctl;
use eprons_core::controller::{
    day_total_energy_j, simulate_day_with_failures, DayConfig, DayStrategy,
};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::{
    ClusterConfig, FailureEvent, FailureEventKind, FailureSchedule, FlashCrowd, OnlineConfig,
    TraceScenario,
};
use eprons_obs::Event;
use eprons_sim::SimRng;
use eprons_topo::FatTree;
use eprons_workload::correlated_failures_during_ramp;

/// Sums the journal's two energy ledgers: the `PowerSegment` tiling
/// integrated over its windows, and the `RepairOutcome` boot charges.
fn journal_energy_j(entries: &[eprons_obs::JournalEntry]) -> (f64, f64) {
    let mut segment_j = 0.0;
    let mut boot_j = 0.0;
    for e in entries {
        match &e.event {
            Event::PowerSegment {
                from_min,
                to_min,
                server_w,
                network_w,
                ..
            } => segment_j += (server_w + network_w) * (to_min - from_min) * 60.0,
            Event::RepairOutcome { boot_energy_j, .. } => boot_j += boot_energy_j,
            _ => {}
        }
    }
    (segment_j, boot_j)
}

#[test]
fn day_energy_matches_the_journal_and_adversarial_days_audit_clean() {
    eprons_obs::set_enabled(true);
    eprons_obs::reset();

    // --- Phase A: the failure-day energy identity. ---
    let cfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: 240, // 6 epochs, for test speed
        sim_seconds: 2.0,
        peak_utilization: 0.5,
        seed: 2018,
        warm_start: true,
        ..DayConfig::default()
    };
    let strategy = DayStrategy::Eprons {
        candidates: aggregation_candidates(),
    };
    // Core (0,0) is active in every aggregation preset: fail at 12:10,
    // recover at 12:50 — both inside epoch 3 ([720, 960)).
    let core = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps)
        .core(0, 0)
        .0;
    let schedule = FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 730.0,
            switch: core,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 770.0,
            switch: core,
            kind: FailureEventKind::Recover,
        },
    ]);
    let records = simulate_day_with_failures(&cfg, &strategy, &day, &schedule);
    let from_records_j = day_total_energy_j(&records, &day);

    let entries = eprons_obs::journal().snapshot();
    let (segment_j, boot_j) = journal_energy_j(&entries);
    assert!(
        boot_j > 0.0,
        "the repair + recovery must charge boot energy"
    );
    let from_journal_j = segment_j + boot_j;
    assert!(
        (from_records_j - from_journal_j).abs() <= 1.0e-6 * from_records_j,
        "day_total_energy_j {from_records_j:.6} J ≠ journal tiling \
         {segment_j:.6} J + boot {boot_j:.6} J"
    );
    // And the journal's own DayEnergy roll-up agrees with both.
    let rolled = entries
        .iter()
        .find_map(|e| match &e.event {
            Event::DayEnergy { energy_j, .. } => Some(*energy_j),
            _ => None,
        })
        .expect("DayEnergy present");
    assert!(
        (rolled - from_records_j).abs() <= 1.0e-6 * from_records_j,
        "DayEnergy {rolled:.6} J ≠ day_total_energy_j {from_records_j:.6} J"
    );

    // --- Phase B: flash-crowd day, ramp-correlated failures, online
    // controller — the audit must pass with the deferral books closed. ---
    eprons_obs::reset();
    let crowd = FlashCrowd::reference();
    let window = crowd.ramp_window();
    let topo = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps);
    let cores: Vec<usize> = topo.core_switches().iter().map(|n| n.0).collect();
    let failures =
        correlated_failures_during_ramp(window, &cores, 1, 40.0, &mut SimRng::seed_from_u64(7));
    let events: Vec<FailureEvent> = failures
        .iter()
        .flat_map(|f| {
            [
                FailureEvent {
                    minute: f.fail_minute,
                    switch: f.switch,
                    kind: FailureEventKind::Fail,
                },
                FailureEvent {
                    minute: f.fail_minute + f.downtime_minutes,
                    switch: f.switch,
                    kind: FailureEventKind::Recover,
                },
            ]
        })
        .collect();
    let online_day = DayConfig {
        epoch_minutes: 60, // fine enough that the 40-min ramp is visible
        sim_seconds: 1.0,
        search_trace: TraceScenario::FlashCrowd(crowd),
        online: Some(OnlineConfig::enabled()),
        ..day
    };
    let online_records = simulate_day_with_failures(
        &cfg,
        &strategy,
        &online_day,
        &FailureSchedule::scripted(events),
    );
    assert_eq!(online_records.len(), 24);
    assert!(
        online_records.iter().any(|r| r.deferred_mbps_min > 0.0),
        "the evening background peak must defer demand"
    );

    let entries = eprons_obs::journal().snapshot();
    assert!(
        entries
            .iter()
            .any(|e| matches!(e.event, Event::DeferralEnqueued { .. })),
        "deferral activity must journal"
    );
    let report = obsctl::audit(&entries, 1.0e-9);
    assert!(
        report.is_clean(),
        "adversarial online day must audit clean:\n{}",
        report.render()
    );
    assert!(
        report.deferred_mbps_min > 0.0,
        "the deferral conservation check must have run over real slabs"
    );
    let summary = obsctl::summarize(&entries);
    assert!(summary.contains("online controller"));

    eprons_obs::reset();
    eprons_obs::set_enabled(false);
}
