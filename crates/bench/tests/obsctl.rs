//! End-to-end `obsctl` test over a real fault-injected day journal.
//!
//! Runs `simulate_day_with_failures` (the failure-day scenario: core
//! switch dies mid-epoch, recovers 40 minutes later) with telemetry on,
//! dumps the journal, and drives every obsctl engine over it:
//!
//! * `audit` reports **zero** violations at 1e-9 relative tolerance —
//!   power segments integrate to snapshot energy, repair boot energy
//!   reconciles against `RepairOutcome` events, snapshots sum to the
//!   `DayEnergy` roll-up, winners are unique per epoch;
//! * `flame` attributes ≥ 95 % of day wall-time to leaf spans;
//! * `diff` of two identical-seed runs finds no differences;
//! * `summarize` renders without panicking on the real journal.
//!
//! One `#[test]` because the telemetry sinks are process-wide globals.

use eprons_bench::obsctl;
use eprons_core::controller::{simulate_day_with_failures, DayConfig, DayStrategy};
use eprons_core::optimizer::aggregation_candidates;
use eprons_core::{ClusterConfig, FailureEvent, FailureEventKind, FailureSchedule};
use eprons_obs::Event;
use eprons_topo::FatTree;

#[test]
fn obsctl_audits_a_fault_injected_day_clean() {
    eprons_obs::set_enabled(true);
    eprons_obs::reset();

    let cfg = ClusterConfig::default();
    let day = DayConfig {
        epoch_minutes: 240, // 6 epochs, for test speed
        sim_seconds: 2.0,
        peak_utilization: 0.5,
        seed: 2018,
        warm_start: true,
        ..DayConfig::default()
    };
    let strategy = DayStrategy::Eprons {
        candidates: aggregation_candidates(),
    };
    // Core (0,0) is active in every aggregation preset: fail at 12:10,
    // recover at 12:50 — both inside epoch 3 ([720, 960)).
    let core = FatTree::new(cfg.fat_tree_k, cfg.link_capacity_mbps)
        .core(0, 0)
        .0;
    let schedule = FailureSchedule::scripted(vec![
        FailureEvent {
            minute: 730.0,
            switch: core,
            kind: FailureEventKind::Fail,
        },
        FailureEvent {
            minute: 770.0,
            switch: core,
            kind: FailureEventKind::Recover,
        },
    ]);

    let records = simulate_day_with_failures(&cfg, &strategy, &day, &schedule);
    assert_eq!(records.len(), 6);
    let boot_j: f64 = records.iter().map(|r| r.boot_energy_j).sum();
    assert!(
        boot_j > 0.0,
        "the repair + recovery must charge boot energy"
    );

    // Dump and reload through the real file path (what CI does).
    let journal = eprons_obs::journal();
    assert_eq!(journal.dropped(), 0, "nothing may fall off the journal");
    let mut path = std::env::temp_dir();
    path.push(format!("eprons-obsctl-{}.jsonl", std::process::id()));
    journal.write_jsonl(&path).expect("journal writes");
    let entries = obsctl::load(&path).expect("journal reloads");
    std::fs::remove_file(&path).ok();
    assert_eq!(entries.len(), journal.len());

    // --- audit: zero violations at 1e-9 relative tolerance. ---
    let report = obsctl::audit(&entries, 1.0e-9);
    assert!(
        report.is_clean(),
        "conservation violations on a real day journal:\n{}",
        report.render()
    );
    assert_eq!(report.days, 1);
    assert_eq!(report.epochs, 6);
    // 5 clean epochs × 1 segment + the failure epoch split at minutes
    // 730 and 770 into 3 segments.
    assert_eq!(report.segments, 8, "{}", report.render());

    // --- span forest: structurally sound, hierarchy as documented. ---
    let forest = obsctl::span_forest(&entries);
    assert!(forest.errors.is_empty(), "span damage: {:?}", forest.errors);
    let count = |name: &str| forest.spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("day"), 1);
    assert_eq!(count("epoch"), 6);
    assert!(count("optimizer.search") >= 6);
    assert!(count("stage.server_eval") > 0);
    assert!(count("server_shard") > 0);
    assert!(count("net.repair") >= 1, "the mid-epoch repair must span");
    // Every epoch span hangs off the day span, shards off their eval.
    let day_span = forest
        .spans
        .iter()
        .find(|s| s.name == "day")
        .expect("day span");
    for s in forest.spans.iter().filter(|s| s.name == "epoch") {
        assert_eq!(s.parent, day_span.id, "epoch spans attach to the day");
    }

    // --- flame: ≥ 95 % of day wall-time lands on leaf spans. ---
    let coverage = obsctl::flame_leaf_coverage(&entries).expect("day span present");
    assert!(
        coverage >= 0.95,
        "flame attributes only {:.1}% of the day to leaf spans",
        coverage * 100.0
    );
    let collapsed = obsctl::flame(&entries);
    assert!(
        collapsed.lines().any(|l| l.starts_with("day;epoch;")),
        "collapsed stacks must be rooted at the day span:\n{collapsed}"
    );

    // --- summarize renders every section on the real journal. ---
    let summary = obsctl::summarize(&entries);
    assert!(summary.contains("journal events"));
    assert!(summary.contains("span wall-time by stage"));
    assert!(summary.contains("day energy (eprons)"));

    // --- diff: an identical-seed rerun is indistinguishable. ---
    eprons_obs::reset();
    let records2 = simulate_day_with_failures(&cfg, &strategy, &day, &schedule);
    assert_eq!(records.len(), records2.len());
    let entries2 = eprons_obs::journal().snapshot();
    let diffs = obsctl::diff(&entries, &entries2, &obsctl::DiffOptions::default());
    assert!(
        diffs.is_empty(),
        "identical-seed runs must journal identically:\n{}",
        diffs.join("\n")
    );
    // ... and a genuine change is caught: drop a RepairOutcome that
    // carries boot energy (some rungs, e.g. repair-failed, charge none).
    let mut tampered = entries2.clone();
    let idx = tampered
        .iter()
        .position(|e| {
            matches!(&e.event, Event::RepairOutcome { boot_energy_j, .. } if *boot_energy_j > 0.0)
        })
        .expect("an energy-carrying repair outcome is present");
    tampered.remove(idx);
    assert!(
        !obsctl::diff(&entries, &tampered, &obsctl::DiffOptions::default()).is_empty(),
        "a missing event must register as a difference"
    );
    assert!(
        !obsctl::audit(&tampered, 1.0e-9).is_clean(),
        "removing a RepairOutcome must break boot-energy reconciliation"
    );

    eprons_obs::reset();
    eprons_obs::set_enabled(false);
}
