//! In-repo wall-clock benchmark harness.
//!
//! The workspace builds with zero external crates, so the old `criterion`
//! benches and the `perfbench` binary both run on this: warm up, run until
//! a time target (or an iteration floor) is hit, and report mean/min/max
//! per-iteration wall time. Results accumulate in a [`Runner`] and can be
//! exported as a [`Json`] object (the `BENCH_cluster.json` schema).

use std::time::Instant;

use eprons_obs::Json;

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name, `group/case` style.
    pub name: String,
    /// Timed iterations (after one warm-up iteration).
    pub iters: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest iteration, seconds.
    pub min_s: f64,
    /// Slowest iteration, seconds.
    pub max_s: f64,
}

impl Sample {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("iters".into(), Json::Num(self.iters as f64)),
            ("mean_s".into(), Json::Num(self.mean_s)),
            ("min_s".into(), Json::Num(self.min_s)),
            ("max_s".into(), Json::Num(self.max_s)),
        ];
        // A one-shot measurement has no spread: mean == min == max by
        // construction. Flag it so consumers (the CI smoke check) don't
        // treat the degenerate ordering as suspicious.
        if self.iters == 1 {
            fields.push(("single_sample".into(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }
}

/// Runs benchmarks and collects their [`Sample`]s.
pub struct Runner {
    target_s: f64,
    min_iters: u64,
    max_iters: u64,
    /// All results in execution order.
    pub samples: Vec<Sample>,
}

impl Runner {
    /// A runner that times each benchmark for roughly `target_s` seconds,
    /// but always at least `min_iters` iterations.
    pub fn new(target_s: f64, min_iters: u64) -> Self {
        Runner {
            target_s,
            min_iters: min_iters.max(1),
            max_iters: 1_000_000,
            samples: Vec::new(),
        }
    }

    /// The default config honoring `--quick` / `EPRONS_QUICK` (tiny
    /// durations for CI smoke runs).
    pub fn from_env() -> Self {
        if crate::quick() {
            Runner::new(0.05, 2)
        } else {
            Runner::new(1.0, 5)
        }
    }

    /// Times `f`, prints one summary line, and records the sample. The
    /// closure's return value is passed through [`std::hint::black_box`]
    /// so the optimizer cannot elide the work.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &Sample {
        // One untimed warm-up: fills caches (and, for the cluster suites,
        // the shared convolution prefix) exactly like a steady-state run.
        std::hint::black_box(f());
        let started = Instant::now();
        let mut iters = 0u64;
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        while (iters < self.min_iters || started.elapsed().as_secs_f64() < self.target_s)
            && iters < self.max_iters
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            iters += 1;
        }
        let sample = Sample {
            name: name.to_string(),
            iters,
            mean_s: total / iters as f64,
            min_s: min,
            max_s: max,
        };
        println!(
            "{:<44} {:>8} iters  mean {:>12}  min {:>12}  max {:>12}",
            sample.name,
            sample.iters,
            format_secs(sample.mean_s),
            format_secs(sample.min_s),
            format_secs(sample.max_s),
        );
        self.samples.push(sample);
        self.samples.last().expect("just pushed")
    }

    /// The mean of the most recent sample named `name`.
    pub fn mean_of(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .rev()
            .find(|s| s.name == name)
            .map(|s| s.mean_s)
    }

    /// The fastest iteration of the most recent sample named `name` —
    /// the statistic ratio gates compare (means absorb scheduler noise,
    /// minima track the work itself).
    pub fn min_of(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .rev()
            .find(|s| s.name == name)
            .map(|s| s.min_s)
    }

    /// All samples as a JSON array (the `suites` field of
    /// `BENCH_cluster.json`).
    pub fn to_json(&self) -> Json {
        Json::Arr(self.samples.iter().map(Sample::to_json).collect())
    }
}

/// Human-friendly seconds (`1.23 s`, `45.6 ms`, `789 µs`, `12 ns`).
pub fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1.0e-3 {
        format!("{:.3} ms", s * 1.0e3)
    } else if s >= 1.0e-6 {
        format!("{:.3} µs", s * 1.0e6)
    } else {
        format!("{:.1} ns", s * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_times() {
        let mut r = Runner::new(0.0, 3);
        r.bench("noop", || 1 + 1);
        let s = &r.samples[0];
        assert_eq!(s.iters, 3);
        assert!(s.min_s <= s.mean_s && s.mean_s <= s.max_s);
    }

    #[test]
    fn json_round_trips() {
        let mut r = Runner::new(0.0, 2);
        r.bench("a", || ());
        r.bench("b", || ());
        let j = r.to_json();
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("a"));
        assert!(arr[1].get("mean_s").unwrap().as_f64().is_some());
    }

    #[test]
    fn single_sample_flag_marks_one_shot_runs() {
        let mut r = Runner::new(0.0, 1);
        r.bench("one-shot", || ());
        let j = r.to_json();
        let s = &j.as_arr().unwrap()[0];
        assert_eq!(s.get("single_sample").unwrap().as_bool(), Some(true));

        let mut r = Runner::new(0.0, 2);
        r.bench("multi", || ());
        let j = r.to_json();
        assert!(j.as_arr().unwrap()[0].get("single_sample").is_none());
    }

    #[test]
    fn format_secs_units() {
        assert!(format_secs(2.0).ends_with(" s"));
        assert!(format_secs(2.0e-3).ends_with(" ms"));
        assert!(format_secs(2.0e-6).ends_with(" µs"));
        assert!(format_secs(2.0e-9).ends_with(" ns"));
    }
}
